# Developer entry points for the EXION reproduction.
#
#   make test         tier-1 test suite (the CI gate)
#   make bench-smoke  serving-throughput bench + one figure bench
#   make docs-check   docstring + __all__ export lint
#   make check        all of the above

PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench-smoke docs-check check

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/bench_serve_throughput.py \
		benchmarks/bench_fig06_ffn_reuse.py \
		--import-mode=importlib -s -q

docs-check:
	$(PYTHON) tools/docs_check.py

check: test docs-check bench-smoke
