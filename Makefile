# Developer entry points for the EXION reproduction.
#
#   make test           tier-1 test suite (the CI gate)
#   make lint           ruff check (pyflakes + pycodestyle errors)
#   make bench          full structured bench run -> bench_results/
#   make bench-smoke    fast subset (tag:smoke) of the structured benches
#   make bench-compare  diff bench_results/ against the committed baseline
#   make cluster-smoke  fleet-simulation scaling bench + CLI demo run
#   make explore-smoke  design-space Pareto bench + CLI demo run
#   make docs-check     docstring + __all__ export lint
#   make check          test + docs-check + bench-smoke + cluster-smoke
#                       + explore-smoke

PYTHON ?= python
PYTHONPATH := src
BENCH_OUT ?= bench_results
BASELINE ?= benchmarks/baseline/BENCH_repro.json
# Wall-clock slack of the perf gate (per-metric tolerances live on the
# metrics themselves and are not affected by these knobs).
LATENCY_TOL ?= 0.10
LATENCY_MIN_ABS ?= 0.25

.PHONY: test lint bench bench-smoke bench-compare cluster-smoke \
	explore-smoke docs-check check

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m ruff check .

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench --run all \
		--out $(BENCH_OUT) --verbose

bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench --run tag:smoke \
		--out $(BENCH_OUT)

bench-compare:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/bench_compare.py \
		--latency-tol $(LATENCY_TOL) \
		--latency-min-abs $(LATENCY_MIN_ABS) \
		$(BASELINE) $(BENCH_OUT)/BENCH_repro.json

cluster-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench \
		--run cluster_scaling --out $(BENCH_OUT)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro cluster \
		--replicas 4 --requests 48 --rate 300 --router jsq \
		--slo-target 1.0

explore-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench \
		--run explore_pareto --out $(BENCH_OUT)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro explore \
		--strategy random --budget 8 --iterations 8 --workers 2

docs-check:
	$(PYTHON) tools/docs_check.py

check: test docs-check bench-smoke cluster-smoke explore-smoke
