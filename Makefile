# Developer entry points for the EXION reproduction.
# Run `make help` for the annotated target list.

PYTHON ?= python
PYTHONPATH := src
BENCH_OUT ?= bench_results
BASELINE ?= benchmarks/baseline/BENCH_repro.json
# Wall-clock slack of the perf gate (per-metric tolerances live on the
# metrics themselves and are not affected by these knobs).
LATENCY_TOL ?= 0.10
LATENCY_MIN_ABS ?= 0.25

# Coverage floor (percent) enforced on the numerically-critical packages.
COV_FLOOR ?= 75
COV_PKGS := --cov=repro.core --cov=repro.program --cov=repro.exec \
	--cov=repro.serve --cov=repro.cluster --cov=repro.obs \
	--cov=repro.obs.analyze

.PHONY: help test lint coverage bench bench-smoke bench-compare \
	cache-smoke cluster-smoke serve-smoke explore-smoke program-smoke \
	trace-smoke obs-analyze-smoke smoke docs-check check

help:  ## list targets with their descriptions
	@awk -F':.*## ' '/^[a-zA-Z][a-zA-Z0-9_-]*:.*## / \
		{printf "  %-16s %s\n", $$1, $$2}' $(MAKEFILE_LIST)

test:  ## tier-1 test suite (the CI gate)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

lint:  ## ruff check (pyflakes + pycodestyle errors)
	$(PYTHON) -m ruff check .

coverage:  ## tier-1 tests with the coverage floor on core+program+exec
	@$(PYTHON) -c "import pytest_cov" 2>/dev/null || \
		{ echo "pytest-cov is not installed; run: pip install pytest-cov"; \
		  exit 1; }
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q $(COV_PKGS) \
		--cov-report=term-missing:skip-covered \
		--cov-fail-under=$(COV_FLOOR)

bench:  ## full structured bench run -> bench_results/
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench --run all \
		--out $(BENCH_OUT) --verbose

bench-smoke:  ## fast subset (tag:smoke) of the structured benches
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench --run tag:smoke \
		--out $(BENCH_OUT)

bench-compare:  ## diff bench_results/ against the committed baseline
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/bench_compare.py \
		--latency-tol $(LATENCY_TOL) \
		--latency-min-abs $(LATENCY_MIN_ABS) \
		$(BASELINE) $(BENCH_OUT)/BENCH_repro.json

serve-smoke:  ## continuous-batching goodput bench + CLI demo run
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench \
		--run serve_continuous --out $(BENCH_OUT)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro serve --continuous \
		--requests 6 --batch-size 4 --iterations 6 \
		--tenants alice=2,bob=1 --quantum 1.0

cluster-smoke:  ## fleet-simulation scaling bench + CLI demo run
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench \
		--run cluster_scaling --out $(BENCH_OUT)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro cluster \
		--replicas 4 --requests 48 --rate 300 --router jsq \
		--slo-target 1.0

explore-smoke:  ## design-space Pareto bench + CLI demo run
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench \
		--run explore_pareto --out $(BENCH_OUT)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro explore \
		--strategy random --budget 8 --iterations 8 --workers 2

cache-smoke:  ## plan-cache amortization gate bench + parity tests
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench \
		--run plan_cache --out $(BENCH_OUT)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q \
		tests/program/test_plan_cache.py tests/exec/test_arena.py

program-smoke:  ## lowering-pipeline parity bench + CLI plan inspection
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench \
		--run program_lowering --out $(BENCH_OUT)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro program --model dit

trace-smoke:  ## observability gate bench + deterministic Perfetto trace
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench \
		--run obs_overhead --out $(BENCH_OUT)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro trace --model dit \
		--continuous --iterations 12 --out $(BENCH_OUT)/trace.json

obs-analyze-smoke:  ## trace-analytics gate bench + CLI analyze/diff run
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench \
		--run obs_analysis --out $(BENCH_OUT)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro obs analyze --continuous \
		--iterations 12 --out $(BENCH_OUT)/analysis.json \
		--html $(BENCH_OUT)/analysis.html
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro obs diff \
		$(BENCH_OUT)/analysis.json $(BENCH_OUT)/analysis.json

smoke: bench-smoke cache-smoke serve-smoke cluster-smoke explore-smoke \
	program-smoke trace-smoke obs-analyze-smoke  ## all *-smoke targets

docs-check:  ## docstring + __all__ export lint
	$(PYTHON) tools/docs_check.py

check: test docs-check smoke  ## test + docs-check + smoke
