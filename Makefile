# Developer entry points for the EXION reproduction.
#
#   make test           tier-1 test suite (the CI gate)
#   make lint           ruff check (pyflakes + pycodestyle errors)
#   make bench          full structured bench run -> bench_results/
#   make bench-smoke    fast subset (tag:smoke) of the structured benches
#   make bench-compare  diff bench_results/ against the committed baseline
#   make docs-check     docstring + __all__ export lint
#   make check          test + docs-check + bench-smoke

PYTHON ?= python
PYTHONPATH := src
BENCH_OUT ?= bench_results
BASELINE ?= benchmarks/baseline/BENCH_repro.json

.PHONY: test lint bench bench-smoke bench-compare docs-check check

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m ruff check .

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench --run all \
		--out $(BENCH_OUT) --verbose

bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench --run tag:smoke \
		--out $(BENCH_OUT)

bench-compare:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/bench_compare.py \
		$(BASELINE) $(BENCH_OUT)/BENCH_repro.json

docs-check:
	$(PYTHON) tools/docs_check.py

check: test docs-check bench-smoke
