#!/usr/bin/env python
"""Perf-regression gate: diff two bench result sets.

Compares a *current* bench result set against a *baseline* (each a
``BENCH_repro.json`` aggregate, a single ``BENCH_<name>.json``, or a
directory of them) and exits non-zero when any metric or wall-clock
timing regressed beyond tolerance. Metric direction and tolerance come
from the baseline's per-metric contract; latency shares one global
relative tolerance (default 10%).

Run from the repository root::

    python tools/bench_compare.py benchmarks/baseline/BENCH_repro.json \
        bench_results/BENCH_repro.json

CI wires this in as a non-blocking step after ``make bench``; locally it
is ``make bench-compare``. An identical re-run always exits zero; an
injected 20% latency regression always exits one.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.compare import (  # noqa: E402
    DEFAULT_LATENCY_MIN_ABS_S,
    DEFAULT_LATENCY_TOLERANCE,
    compare_results,
    format_report,
    load_results,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two bench result sets and flag regressions"
    )
    parser.add_argument("baseline", help="baseline results (file or dir)")
    parser.add_argument("current", help="current results (file or dir)")
    parser.add_argument("--latency-tol", type=float,
                        default=DEFAULT_LATENCY_TOLERANCE,
                        help="relative wall-clock tolerance (default 0.10)")
    parser.add_argument("--latency-min-abs", type=float,
                        default=DEFAULT_LATENCY_MIN_ABS_S,
                        help="absolute wall-clock slack in seconds that "
                             "must also be exceeded (default 0.25)")
    parser.add_argument("--strict", action="store_true",
                        help="missing benches/metrics count as regressions")
    args = parser.parse_args(argv)

    report = compare_results(
        load_results(args.baseline),
        load_results(args.current),
        latency_tolerance=args.latency_tol,
        latency_min_abs_s=args.latency_min_abs,
        strict=args.strict,
    )
    print(format_report(report))
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
