#!/usr/bin/env python
"""Documentation lint for the repro package.

Two checks, both hard failures:

1. **Docstrings** — every public module under ``src/repro`` (any module
   whose dotted path has no ``_``-prefixed component) must carry a
   non-trivial module docstring.
2. **Exports** — every ``__all__`` entry must resolve to an attribute of
   its module, contain no duplicates, and be sorted, so the package
   ``__init__`` files never advertise stale names.

Run from the repository root::

    python tools/docs_check.py

Exit status is non-zero on any finding; the Makefile ``docs-check``
target and CI wire this in.
"""

from __future__ import annotations

import importlib
import pkgutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
MIN_DOCSTRING_CHARS = 20


def iter_public_modules() -> list[str]:
    """Dotted names of all public modules under ``src/repro``."""
    names = ["repro"]
    package_dir = str(SRC / "repro")
    for info in pkgutil.walk_packages([package_dir], prefix="repro."):
        parts = info.name.split(".")
        if any(part.startswith("_") for part in parts[1:]):
            continue
        names.append(info.name)
    return sorted(names)


def check_module(name: str) -> list[str]:
    problems = []
    try:
        module = importlib.import_module(name)
    except Exception as exc:  # pragma: no cover - import bugs are findings
        return [f"{name}: import failed: {exc!r}"]

    doc = (module.__doc__ or "").strip()
    if len(doc) < MIN_DOCSTRING_CHARS:
        problems.append(
            f"{name}: missing or trivial module docstring "
            f"({len(doc)} chars, need >= {MIN_DOCSTRING_CHARS})"
        )

    exported = getattr(module, "__all__", None)
    if exported is not None:
        for entry in exported:
            if not hasattr(module, entry):
                problems.append(
                    f"{name}: __all__ entry {entry!r} does not resolve"
                )
        if len(set(exported)) != len(exported):
            dupes = sorted(
                {e for e in exported if list(exported).count(e) > 1}
            )
            problems.append(f"{name}: duplicate __all__ entries {dupes}")
        if list(exported) != sorted(exported):
            problems.append(f"{name}: __all__ is not sorted")
    return problems


def main() -> int:
    sys.path.insert(0, str(SRC))
    modules = iter_public_modules()
    findings: list[str] = []
    for name in modules:
        findings.extend(check_module(name))

    if findings:
        print(f"docs-check: {len(findings)} problem(s) in "
              f"{len(modules)} modules")
        for finding in findings:
            print(f"  - {finding}")
        return 1
    print(f"docs-check: {len(modules)} public modules documented, "
          f"all __all__ exports resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
