"""The observability hard gate: inert when off, cheap when on.

:mod:`repro.obs` instruments the serving/cluster hot paths behind a
nil-by-default ``Observer``. This bench enforces the two promises that
make that acceptable in a reproduction whose outputs must stay
byte-stable:

- **inert when disabled** — a run without an observer produces
  byte-identical generation outputs and identical report summaries to
  the pre-obs code path (every hook site is one ``is not None`` branch);
- **cheap when enabled** — full instrumentation (metrics + tracing) adds
  less than 10% wall-clock overhead to the DiT single-stream serving
  loop;
- **deterministic artifacts** — same-seed ``repro trace`` scenarios
  export byte-identical Chrome trace JSON and metrics snapshots.

Overhead is measured min-of-3 on the real (numeric) continuous server so
the denominator is genuine generation work, not accounting; the loose
metric tolerance absorbs machine noise while the pytest wrapper asserts
the strict <10% bar.

Run with::

    pytest benchmarks/bench_obs_overhead.py --import-mode=importlib -s
"""

import time

import numpy as np

from repro.bench import BenchResult, register_bench
from repro.obs import Observer, chrome_trace_json, run_trace_scenario
from repro.serve import ContinuousPolicy, ContinuousServer

from .conftest import emit_result

MODEL = "dit"
ITERATIONS = 12
REQUESTS = 6
MAX_BATCH = 2
TIMING_REPS = 3
SCENARIO_REQUESTS = 8


def _serve(observer):
    """One real continuous-serving run; returns (results, report, wall)."""
    server = ContinuousServer(
        MODEL,
        policy=ContinuousPolicy(max_batch_size=MAX_BATCH),
        total_iterations=ITERATIONS,
        observer=observer,
    )
    for i in range(REQUESTS):
        server.submit(seed=i)
    start = time.perf_counter()
    results = server.run_until_drained()
    wall = time.perf_counter() - start
    return results, server.report(), wall


def _identical_outputs(plain, observed):
    """Whether two result lists carry byte-identical samples and stats."""
    if len(plain) != len(observed):
        return False
    for a, b in zip(plain, observed):
        if not np.array_equal(a.result.sample, b.result.sample):
            return False
        if a.result.stats.summary() != b.result.stats.summary():
            return False
    return True


def _scenario_artifacts():
    obs = Observer()
    run_trace_scenario(
        model=MODEL, continuous=True, requests=SCENARIO_REQUESTS,
        iterations=ITERATIONS, observer=obs,
    )
    return chrome_trace_json(obs.tracer), obs.metrics.to_json()


@register_bench("obs_overhead", tags=("obs", "serve", "smoke"))
def build_obs_overhead(ctx):
    # Inertness: identical outputs and (timing aside) identical reports.
    plain, plain_report, _ = _serve(None)
    observed, obs_report, _ = _serve(Observer())
    identical = _identical_outputs(plain, observed)
    skip = (
        "busy_s", "queue_wait_s", "mean_wait_s", "samples_per_s",
        "latency_p50_s", "latency_p95_s", "latency_p99_s",
    )
    summaries_match = all(
        plain_report.summary()[k] == obs_report.summary()[k]
        for k in plain_report.summary()
        if k not in skip  # wall-clock fields: nondeterministic by nature
    )

    # Overhead: min-of-3 wall clock, observer off vs fully on.
    base_s = min(_serve(None)[2] for _ in range(TIMING_REPS))
    obs_s = min(_serve(Observer())[2] for _ in range(TIMING_REPS))
    overhead = obs_s / base_s - 1.0

    # Artifact determinism: same-seed trace scenario, byte-compared.
    trace1, metrics1 = _scenario_artifacts()
    trace2, metrics2 = _scenario_artifacts()
    artifacts_deterministic = trace1 == trace2 and metrics1 == metrics2

    result = BenchResult("obs_overhead", model=MODEL)
    result.add_series(
        f"Observer cost ({REQUESTS} requests, {ITERATIONS} iterations, "
        f"batch {MAX_BATCH}, min of {TIMING_REPS})",
        ["configuration", "wall s", "outputs"],
        [
            ["observer off", f"{base_s:.3f}", "baseline"],
            ["observer on", f"{obs_s:.3f}",
             "identical" if identical else "DIVERGED"],
        ],
    )
    result.add_metric(
        "outputs_identical_when_disabled", 1.0 if identical else 0.0,
        direction="higher_better", tolerance=0.0,
    )
    result.add_metric(
        "reports_identical_when_disabled",
        1.0 if summaries_match else 0.0,
        direction="higher_better", tolerance=0.0,
    )
    result.add_metric(
        "artifacts_deterministic",
        1.0 if artifacts_deterministic else 0.0,
        direction="higher_better", tolerance=0.0,
    )
    # The factor form keeps the relative comparison meaningful: baseline
    # ~1.0x, so the compare gate's tolerance bounds the overhead itself.
    # Slightly looser than the strict 10% bar (asserted by the pytest
    # wrapper below) to absorb shared-machine timing noise.
    result.add_metric(
        "enabled_overhead_factor", max(1.0, 1.0 + overhead),
        unit="x", direction="lower_better", tolerance=0.15,
    )
    result.add_note(
        "Instrumentation is nil-by-default: with no observer installed "
        "every hook site is a single `is not None` branch, so disabled "
        "runs are byte-identical to the pre-obs code path. Enabled "
        "overhead is metrics + tracing on every tick/membership edit."
    )
    return result


def test_obs_overhead(bench_ctx):
    result = build_obs_overhead(bench_ctx)
    emit_result(result)

    assert result.value("outputs_identical_when_disabled") == 1.0
    assert result.value("reports_identical_when_disabled") == 1.0
    assert result.value("artifacts_deterministic") == 1.0
    factor = result.value("enabled_overhead_factor")
    assert factor < 1.10, (
        f"observer adds {(factor - 1.0) * 100:.1f}% to the serving hot loop"
    )
