"""Table I — model accuracy evaluation across optimization levels.

For every benchmark model, runs vanilla / FFN-Reuse / FFN-Reuse+EP /
FFN-Reuse+EP+Quant at the Table I configuration and reports:

- PSNR versus the vanilla run (the paper's exact metric),
- a Frechet-distance proxy between vanilla and optimized sample batches
  (stands in for FID/FAD; see DESIGN.md substitutions),
- the measured inter- and intra-iteration sparsity levels.

The claim under test is the paper's: optimization-induced degradation is
small at the Table I sparsity levels, and each additional optimization
costs a little more accuracy.
"""

import numpy as np
import pytest

from repro.analysis.report import percent
from repro.bench import BenchResult, register_bench
from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.models.zoo import build_model
from repro.workloads.metrics import fid_proxy, psnr
from repro.workloads.specs import BENCHMARK_ORDER, get_spec

from .conftest import emit_result

N_SAMPLES = 6
ITERATIONS = 15

METHOD_KEYS = {
    "FFN-Reuse": "ffnr",
    "FFN-Reuse+EP": "ffnr_ep",
    "FFN-Reuse+EP+Quant": "ffnr_ep_quant",
}


def generate_batch(pipeline, method, seeds):
    samples = []
    stats = None
    for seed in seeds:
        if method == "vanilla":
            result = pipeline.generate_vanilla(seed=seed, prompt="bench")
        else:
            result = pipeline.generate(seed=seed, prompt="bench")
        samples.append(result.sample)
        stats = result.stats
    return np.stack(samples), stats


def evaluate_model(name):
    model = build_model(name, seed=0, total_iterations=ITERATIONS)
    seeds = list(range(N_SAMPLES))
    rows = []

    vanilla_pipe = ExionPipeline(model, ExionConfig.for_model(name))
    vanilla, _ = generate_batch(vanilla_pipe, "vanilla", seeds)

    configs = {
        "FFN-Reuse": ExionPipeline(
            model, ExionConfig.for_model(name, enable_eager_prediction=False)
        ),
        "FFN-Reuse+EP": ExionPipeline(model, ExionConfig.for_model(name)),
        "FFN-Reuse+EP+Quant": ExionPipeline(
            model, ExionConfig.for_model(name), activation_bits=12
        ),
    }
    for label, pipeline in configs.items():
        batch, stats = generate_batch(pipeline, label, seeds)
        psnrs = [psnr(v, s) for v, s in zip(vanilla, batch)]
        rows.append(
            {
                "method": label,
                "psnr": float(np.mean(psnrs)),
                "fid_proxy": fid_proxy(vanilla, batch),
                "inter": stats.ffn_output_sparsity,
                "intra": stats.attention_output_sparsity,
            }
        )
    return rows


@register_bench("table1_accuracy", tags=("table", "core"))
def build_table1(ctx):
    result = BenchResult("table1_accuracy", model="all")
    printable = []
    for name in BENCHMARK_ORDER:
        spec = get_spec(name)
        rows = evaluate_model(name)
        for row in rows:
            method = METHOD_KEYS[row["method"]]
            result.add_metric(
                f"{name}.{method}.psnr_db", row["psnr"], unit="dB",
                direction="higher_better", tolerance=0.15,
            )
            result.add_metric(
                f"{name}.{method}.fid_proxy", row["fid_proxy"],
                direction="lower_better", tolerance=0.25,
            )
            result.add_metric(
                f"{name}.{method}.inter_sparsity", row["inter"],
                paper=spec.target_inter_sparsity, direction="two_sided",
                tolerance=0.10,
            )
            printable.append(
                [
                    spec.display_name,
                    row["method"],
                    f"{row['psnr']:.2f} dB",
                    f"{row['fid_proxy']:.3f}",
                    percent(row["inter"]),
                    percent(row["intra"]),
                ]
            )
    result.add_series(
        (
            "Table I — accuracy under EXION optimizations "
            "(paper PSNR ~10-33 dB; metric deltas small vs vanilla)"
        ),
        ["model", "method", "PSNR vs vanilla", "FID proxy",
         "inter-iter sparsity", "intra-iter sparsity"],
        printable,
    )
    return result


def test_table1_accuracy(benchmark, bench_ctx):
    result = build_table1(bench_ctx)
    emit_result(result)

    for name in BENCHMARK_ORDER:
        spec = get_spec(name)
        # FFN-Reuse sparsity lands on the Table I target.
        assert result.value(f"{name}.ffnr.inter_sparsity") == pytest.approx(
            spec.target_inter_sparsity, abs=0.05
        ), name
        # Outputs remain correlated with vanilla in the paper's PSNR band.
        for method in METHOD_KEYS.values():
            assert result.value(f"{name}.{method}.psnr_db") > 4.0, (
                name, method,
            )

    benchmark(evaluate_model, "mld")
