"""Plan-cache amortization: fleets and sweeps stop paying cold compiles.

The perf claim of :mod:`repro.program.cache`: every construction site
(executors, serving, cluster replicas, explore objectives) lowers,
compiles, profiles and prices through one process-wide content-addressed
:class:`~repro.program.cache.PlanCache`, so

- a **fleet** of N replicas over M models runs exactly M sparsity-profile
  syntheses and one lowering+pricing per distinct (model, ablation,
  batch) point between them, and re-priming against a warm cache is at
  least **2× faster** than the cold pass;
- a repeated-config **explore-style sweep** (fleet knobs vary, the
  (spec, config) key does not) hits the in-process tiers on every lookup
  of the second pass — a **100% hit rate** — and also re-runs ≥2× faster;
- everything stays **byte-identical**: cached pricing equals a cold
  ``simulate_plan`` on a cold ``lower_plan`` for every model priced.

Run with::

    pytest benchmarks/bench_plan_cache.py --import-mode=importlib -s
"""

import time

from repro.bench import BenchResult, register_bench
from repro.core.config import ExionConfig
from repro.cluster.replica import ServiceTimeModel
from repro.hw.accelerator import ExionAccelerator
from repro.program import lower_plan, plan_json
from repro.program.cache import fresh_plan_cache, get_plan_cache
from repro.workloads.specs import get_spec

FLEET_REPLICAS = 4
FLEET_MODELS = ("dit", "mld", "mdm")
FLEET_ABLATIONS = ("base", "all")
FLEET_BATCHES = (1, 4)
SWEEP_POINTS = 24  # explore-style: fleet knobs vary, plan keys repeat


def _prime_fleet() -> None:
    """Construct one fleet's service-time models: the hw-priced part of
    replica setup (profile synthesis + lowering + pricing per point)."""
    for _ in range(FLEET_REPLICAS):
        stm = ServiceTimeModel("exion24")
        for model in FLEET_MODELS:
            for ablation in FLEET_ABLATIONS:
                for batch in FLEET_BATCHES:
                    stm.latency_s(model, ablation, batch)


def _run_sweep() -> None:
    """Price an explore-style sweep: every point re-asks for the same
    (spec, config) plans — only fleet knobs differ between points."""
    cache = get_plan_cache()
    accelerator = ExionAccelerator.exion24()
    for model in FLEET_MODELS:
        spec = get_spec(model)
        config = ExionConfig.for_model(model)
        profile = cache.profile(spec)
        for _ in range(SWEEP_POINTS):
            plan = cache.plan(spec, config=config)
            cache.price(accelerator, plan, profile)


def _pass_hit_rate(before: dict, after: dict) -> float:
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    total = hits + misses
    return hits / total if total else 0.0


@register_bench("plan_cache", tags=("program", "perf", "smoke"))
def build_plan_cache(ctx):
    # ------------------------------------------------------------------
    # fleet construction: cold pass, then re-prime against the warm cache
    # ------------------------------------------------------------------
    with fresh_plan_cache() as cache:
        start = time.perf_counter()
        _prime_fleet()
        fleet_cold_s = time.perf_counter() - start

        start = time.perf_counter()
        _prime_fleet()
        fleet_warm_s = time.perf_counter() - start
        fleet_speedup = fleet_cold_s / fleet_warm_s

        # profile tier: M models, not N x M replica-profiles
        profiles_synthesized = cache.tier_misses["profile"]

    # ------------------------------------------------------------------
    # explore-style sweep: repeated keys, second pass must be all hits
    # (its own fresh cache, so the cold pass really is cold)
    # ------------------------------------------------------------------
    with fresh_plan_cache() as cache:
        start = time.perf_counter()
        _run_sweep()
        sweep_cold_s = time.perf_counter() - start

        before = cache.stats()
        start = time.perf_counter()
        _run_sweep()
        sweep_warm_s = time.perf_counter() - start
        hit_rate = _pass_hit_rate(before, cache.stats())
        sweep_speedup = sweep_cold_s / sweep_warm_s

        # ------------------------------------------------------------------
        # byte identity: cached pricing == cold simulate on a cold lowering
        # ------------------------------------------------------------------
        accelerator = ExionAccelerator.exion24()
        identical = True
        for model in FLEET_MODELS:
            spec = get_spec(model)
            config = ExionConfig.for_model(model)
            cold_plan = lower_plan(spec, config=config)
            warm_plan = cache.plan(spec, config=config)
            profile = cache.profile(spec)
            cold_report = accelerator.simulate_plan(cold_plan, profile)
            warm_report = cache.price(accelerator, warm_plan, profile)
            identical &= plan_json(warm_plan) == plan_json(cold_plan)
            identical &= warm_report == cold_report

    result = BenchResult("plan_cache", model="+".join(FLEET_MODELS))
    result.add_series(
        f"{FLEET_REPLICAS}-replica fleet over {len(FLEET_MODELS)} models, "
        f"{len(FLEET_MODELS) * SWEEP_POINTS}-point sweep",
        ["scenario", "cold s", "warm s", "speedup"],
        [
            ["fleet construction", f"{fleet_cold_s:.3f}",
             f"{fleet_warm_s:.4f}", f"{fleet_speedup:.0f}x"],
            ["explore sweep", f"{sweep_cold_s:.3f}",
             f"{sweep_warm_s:.4f}", f"{sweep_speedup:.0f}x"],
        ],
    )
    result.add_note(
        f"profile syntheses: {profiles_synthesized} "
        f"(= {len(FLEET_MODELS)} models, not "
        f"{FLEET_REPLICAS * len(FLEET_MODELS)} replica-profiles); "
        f"warm-pass hit rate {hit_rate:.3f}"
    )
    # Hard gates: parity and full interning are all-or-nothing.
    result.add_metric("byte_identity", 1.0 if identical else 0.0,
                      direction="higher_better", tolerance=0.0)
    result.add_metric("warm_pass_hit_rate", hit_rate,
                      direction="higher_better", tolerance=0.0)
    result.add_metric("profiles_per_model",
                      profiles_synthesized / len(FLEET_MODELS),
                      direction="lower_better", tolerance=0.0)
    # Wall-clock ratios cancel machine class; floors get wide tolerances.
    result.add_metric("fleet_warm_speedup", fleet_speedup, unit="x",
                      direction="higher_better", tolerance=0.9)
    result.add_metric("sweep_warm_speedup", sweep_speedup, unit="x",
                      direction="higher_better", tolerance=0.9)
    result.add_metric("fleet_cold_s", fleet_cold_s, unit="s",
                      direction="lower_better", tolerance=0.9)
    return result


def test_plan_cache(bench_ctx):
    from .conftest import emit_result

    result = build_plan_cache(bench_ctx)
    emit_result(result)

    assert result.value("byte_identity") == 1.0
    assert result.value("warm_pass_hit_rate") == 1.0
    assert result.value("profiles_per_model") == 1.0

    # The acceptance bar: warm-cache fleet construction and repeated
    # sweeps are at least 2x the cold pass.
    fleet = result.value("fleet_warm_speedup")
    sweep = result.value("sweep_warm_speedup")
    assert fleet >= 2.0, f"fleet re-prime only {fleet:.2f}x cold setup"
    assert sweep >= 2.0, f"warm sweep only {sweep:.2f}x cold sweep"
