"""Single-stream generation speed: compiled executor vs interpreted.

The perf claim of :mod:`repro.exec`: compiling the phase plan once
(log-domain weight operands, timestep/adaLN tables, phase schedule,
bitmask→gather index sets) makes each iteration a pure gather/scatter
replay, and that buys at least **2× single-stream samples/sec** on the
DiT benchmark model at the paper's Table I EXION configuration — while
staying bit-identical to the interpreted oracle.

The equivalence metric is the quality gate at tolerance 0.0 (parity is
all-or-nothing); the ratio metric cancels machine dependence and is the
ratcheted perf gate; the absolute samples/sec floors get wide tolerances
because they track the runner's machine class.

Run with::

    pytest benchmarks/bench_pipeline_speed.py --import-mode=importlib -s
"""

import time
from functools import lru_cache

import numpy as np

from repro.bench import BenchResult, register_bench
from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.models.zoo import build_model

from .conftest import emit_result

ITERATIONS = 50
CLASS_LABEL = 207
SEED = 0


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@lru_cache(maxsize=1)
def _dit_model():
    """One 50-iteration model build shared by builder and pytest kernel."""
    return build_model("dit", seed=0, total_iterations=ITERATIONS)


@register_bench("pipeline_speed", tags=("exec", "core", "smoke"))
def build_pipeline_speed(ctx):
    model = _dit_model()
    config = ExionConfig.for_model("dit")
    interpreted = ExionPipeline(model, config)
    compiled = ExionPipeline(model, config, compiled=True)

    # ------------------------------------------------------------------
    # equivalence: the compiled path replays the oracle bit for bit
    # ------------------------------------------------------------------
    want = interpreted.generate(seed=SEED, class_label=CLASS_LABEL)
    got = compiled.generate(seed=SEED, class_label=CLASS_LABEL)
    parity_ok = (
        np.array_equal(got.sample, want.sample)
        and got.stats.summary() == want.stats.summary()
        and got.stats.ffn_sparsities == want.stats.ffn_sparsities
        and got.stats.attention_sparsities == want.stats.attention_sparsities
    )

    # ------------------------------------------------------------------
    # speed: one generation, interpreted vs compiled (warm executor)
    # ------------------------------------------------------------------
    interpreted_s = _best_of(
        lambda: interpreted.generate(seed=SEED, class_label=CLASS_LABEL)
    )
    compiled_s = _best_of(
        lambda: compiled.generate(seed=SEED, class_label=CLASS_LABEL)
    )
    interpreted_rate = 1.0 / interpreted_s
    compiled_rate = 1.0 / compiled_s
    ratio = compiled_rate / interpreted_rate

    result = BenchResult("pipeline_speed", model="dit")
    result.add_series(
        f"DiT single-stream generation ({ITERATIONS} iterations)",
        ["path", "s/sample", "samples/s", "vs interpreted"],
        [
            ["interpreted", f"{interpreted_s:.3f}",
             f"{interpreted_rate:.2f}", "1.00x"],
            ["compiled", f"{compiled_s:.3f}",
             f"{compiled_rate:.2f}", f"{ratio:.2f}x"],
        ],
    )
    result.add_metric("equivalence", 1.0 if parity_ok else 0.0,
                      direction="higher_better", tolerance=0.0)
    # Wall-clock floors vary with the machine class; the ratio cancels
    # most of that and carries the ratcheted >= 2x contract. The pytest
    # wrapper repeats the assertion same-machine, same-run.
    result.add_metric("interpreted_samples_per_s", interpreted_rate,
                      unit="samples/s", direction="higher_better",
                      tolerance=0.75)
    result.add_metric("compiled_samples_per_s", compiled_rate,
                      unit="samples/s", direction="higher_better",
                      tolerance=0.75)
    result.add_metric("compiled_speedup", ratio, unit="x",
                      direction="higher_better", tolerance=0.35)
    return result


def test_pipeline_speed(benchmark, bench_ctx):
    result = build_pipeline_speed(bench_ctx)
    emit_result(result)

    assert result.value("equivalence") == 1.0

    # The acceptance bar of the compiled executor: >= 2x single-stream.
    ratio = result.value("compiled_speedup")
    assert ratio >= 2.0, (
        f"compiled executor reached only {ratio:.2f}x interpreted speed"
    )

    compiled = ExionPipeline(_dit_model(), ExionConfig.for_model("dit"),
                             compiled=True)
    benchmark(compiled.generate, seed=SEED, class_label=CLASS_LABEL)
