"""Table III — power and area breakdown of one DSC.

The constants reproduce the paper's synthesis results exactly (they seed
the energy model); the bench also reports the *activity-weighted* energy
shares a real DiT run produces, verifying the paper's observation that the
sparsity-handling units (EPRE + CAU) stay below ~18.6% of power.
"""

import pytest

from repro.analysis.report import format_table, percent
from repro.hw.accelerator import ExionAccelerator
from repro.hw.energy import (
    DSC_AREA_MM2,
    DSC_POWER_MW,
    TOTAL_DSC_AREA_MM2,
    TOTAL_DSC_POWER_MW,
)
from repro.workloads.specs import get_spec

from .conftest import emit


def test_table3_power_area(benchmark, profiles):
    rows = [
        [component, f"{DSC_AREA_MM2[component]:.2f}",
         f"{DSC_POWER_MW[component]:.2f}"]
        for component in DSC_POWER_MW
    ]
    rows.append(["TOTAL", f"{TOTAL_DSC_AREA_MM2:.2f}",
                 f"{TOTAL_DSC_POWER_MW:.2f}"])
    emit(format_table(
        ["component", "area [mm^2]", "power [mW] @800MHz, 0.8V"],
        rows,
        title="Table III — single-DSC breakdown (paper synthesis values)",
    ))

    # Activity-weighted energy shares from a simulated DiT run.
    report = ExionAccelerator.exion24().simulate(
        get_spec("dit"), profiles["dit"]
    )
    breakdown = report.energy_breakdown_j
    on_chip = sum(v for k, v in breakdown.items() if k != "dram")
    shares = [
        [k, percent(v / on_chip)] for k, v in breakdown.items() if k != "dram"
    ]
    emit(format_table(
        ["component", "energy share (DiT run, on-chip)"],
        shares,
        title="Activity-weighted on-chip energy (simulated)",
    ))

    assert TOTAL_DSC_AREA_MM2 == pytest.approx(4.37, abs=0.01)
    assert TOTAL_DSC_POWER_MW == pytest.approx(1511.43, abs=0.1)
    # Sparsity-handling units' static share (paper V-D: up to 18.6%).
    static_share = (DSC_POWER_MW["epre"] + DSC_POWER_MW["cau"]) / sum(
        DSC_POWER_MW.values()
    )
    assert static_share == pytest.approx(0.186, abs=0.01)
    # CAU is 0.94% of DSC area (paper IV-C).
    assert DSC_AREA_MM2["cau"] / TOTAL_DSC_AREA_MM2 == pytest.approx(
        0.0094, abs=0.002
    )
    # EXION24 total area below the server GPU die (152.28 vs 609 mm^2).
    exion24_area = 24 * TOTAL_DSC_AREA_MM2
    assert exion24_area < 609 / 2

    benchmark(
        ExionAccelerator.exion24().simulate, get_spec("dit"), profiles["dit"]
    )
