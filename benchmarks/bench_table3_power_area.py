"""Table III — power and area breakdown of one DSC.

The constants reproduce the paper's synthesis results exactly (they seed
the energy model); the bench also reports the *activity-weighted* energy
shares a real DiT run produces, verifying the paper's observation that the
sparsity-handling units (EPRE + CAU) stay below ~18.6% of power.
"""

import pytest

from repro.analysis.report import percent
from repro.bench import BenchResult, register_bench
from repro.hw.accelerator import ExionAccelerator
from repro.hw.energy import (
    DSC_AREA_MM2,
    DSC_POWER_MW,
    TOTAL_DSC_AREA_MM2,
    TOTAL_DSC_POWER_MW,
)
from repro.workloads.specs import get_spec

from .conftest import emit_result


@register_bench("table3_power_area", tags=("table", "hw", "smoke"))
def build_table3(ctx):
    result = BenchResult("table3_power_area", model="dit")
    rows = [
        [component, f"{DSC_AREA_MM2[component]:.2f}",
         f"{DSC_POWER_MW[component]:.2f}"]
        for component in DSC_POWER_MW
    ]
    rows.append(["TOTAL", f"{TOTAL_DSC_AREA_MM2:.2f}",
                 f"{TOTAL_DSC_POWER_MW:.2f}"])
    result.add_series(
        "Table III — single-DSC breakdown (paper synthesis values)",
        ["component", "area [mm^2]", "power [mW] @800MHz, 0.8V"],
        rows,
    )

    # Activity-weighted energy shares from a simulated DiT run.
    report = ExionAccelerator.exion24().simulate(
        get_spec("dit"), ctx.profiles["dit"]
    )
    breakdown = report.energy_breakdown_j
    on_chip = sum(v for k, v in breakdown.items() if k != "dram")
    result.add_series(
        "Activity-weighted on-chip energy (simulated)",
        ["component", "energy share (DiT run, on-chip)"],
        [
            [k, percent(v / on_chip)]
            for k, v in breakdown.items() if k != "dram"
        ],
    )

    result.add_metric("total_dsc_area_mm2", TOTAL_DSC_AREA_MM2, unit="mm^2",
                      paper=4.37, direction="two_sided", tolerance=0.01)
    result.add_metric("total_dsc_power_mw", TOTAL_DSC_POWER_MW, unit="mW",
                      paper=1511.43, direction="two_sided", tolerance=0.01)
    static_share = (DSC_POWER_MW["epre"] + DSC_POWER_MW["cau"]) / sum(
        DSC_POWER_MW.values()
    )
    result.add_metric("sparsity_units_power_share", static_share,
                      paper=0.186, direction="two_sided", tolerance=0.06)
    result.add_metric(
        "cau_area_share", DSC_AREA_MM2["cau"] / TOTAL_DSC_AREA_MM2,
        paper=0.0094, direction="two_sided", tolerance=0.25,
    )
    result.add_metric("exion24_area_mm2", 24 * TOTAL_DSC_AREA_MM2,
                      unit="mm^2", direction="lower_better", tolerance=0.01)
    return result


def test_table3_power_area(benchmark, bench_ctx):
    result = build_table3(bench_ctx)
    emit_result(result)

    assert result.value("total_dsc_area_mm2") == pytest.approx(4.37, abs=0.01)
    assert result.value("total_dsc_power_mw") == pytest.approx(
        1511.43, abs=0.1
    )
    # Sparsity-handling units' static share (paper V-D: up to 18.6%).
    assert result.value("sparsity_units_power_share") == pytest.approx(
        0.186, abs=0.01
    )
    # CAU is 0.94% of DSC area (paper IV-C).
    assert result.value("cau_area_share") == pytest.approx(0.0094, abs=0.002)
    # EXION24 total area below the server GPU die (152.28 vs 609 mm^2).
    assert result.value("exion24_area_mm2") < 609 / 2

    benchmark(
        ExionAccelerator.exion24().simulate, get_spec("dit"),
        bench_ctx.profiles["dit"],
    )
