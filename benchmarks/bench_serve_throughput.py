"""Batched serving throughput versus sequential generation.

The serving claim of ``repro.serve``: coalescing concurrent requests into
one vectorized denoising loop multiplies samples/sec without changing any
request's output. This bench measures both halves of that claim on the
DiT benchmark model at the paper's Table I EXION configuration:

- **equivalence** — a batch of one (and each request of a batch of
  eight) reproduces the sequential ``ExionPipeline.generate()`` sample
  and statistics bit for bit;
- **throughput** — batch-8 serving reaches at least twice the
  samples/sec of a sequential request loop.

Run with::

    pytest benchmarks/bench_serve_throughput.py --import-mode=importlib -s
"""

import time
from functools import lru_cache

import numpy as np

from repro.bench import BenchResult, register_bench
from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.models.zoo import build_model
from repro.serve import BatchedPipeline

from .conftest import emit_result

ITERATIONS = 50
BATCH = 8
CLASS_LABEL = 207


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@lru_cache(maxsize=1)
def _dit_model():
    """One 50-iteration model build shared by builder and pytest kernel."""
    return build_model("dit", seed=0, total_iterations=ITERATIONS)


@register_bench("serve_throughput", tags=("serve",))
def build_serve_throughput(ctx):
    model = _dit_model()
    config = ExionConfig.for_model("dit")
    sequential = ExionPipeline(model, config)
    batched = BatchedPipeline(model, config)
    seeds = list(range(BATCH))

    # ------------------------------------------------------------------
    # equivalence: per-request results match sequential runs bit for bit
    # ------------------------------------------------------------------
    reference = [
        sequential.generate(seed=s, class_label=CLASS_LABEL) for s in seeds
    ]
    single = batched.generate(seed=seeds[0], class_label=CLASS_LABEL)
    single_ok = (
        np.array_equal(single.sample, reference[0].sample)
        and single.stats.summary() == reference[0].stats.summary()
        and single.stats.ffn_sparsities == reference[0].stats.ffn_sparsities
    )

    _, batch_results = batched.generate_batch(seeds, class_label=CLASS_LABEL)
    batch_ok = all(
        np.array_equal(got.sample, want.sample)
        and got.stats.summary() == want.stats.summary()
        for got, want in zip(batch_results, reference)
    )

    # ------------------------------------------------------------------
    # throughput: batch-8 serving vs a sequential request loop
    # ------------------------------------------------------------------
    def run_sequential():
        for s in seeds:
            sequential.generate(seed=s, class_label=CLASS_LABEL)

    def run_batched():
        batched.generate_batch(seeds, class_label=CLASS_LABEL)

    sequential_s = _best_of(run_sequential)
    batched_s = _best_of(run_batched)
    sequential_rate = BATCH / sequential_s
    batched_rate = BATCH / batched_s
    speedup = batched_rate / sequential_rate

    scaling_rows = []
    for size in (1, 2, 4, BATCH):
        elapsed = _best_of(
            lambda: batched.generate_batch(seeds[:size],
                                           class_label=CLASS_LABEL),
            repeats=1,
        )
        scaling_rows.append([size, f"{size / elapsed:.2f}",
                             f"{(size / elapsed) / sequential_rate:.2f}x"])

    result = BenchResult("serve_throughput", model="dit")
    result.add_series(
        f"DiT serving throughput ({ITERATIONS} iterations)",
        ["batch size", "samples/s", "vs sequential"],
        [[f"sequential x{BATCH}", f"{sequential_rate:.2f}", "1.00x"]]
        + scaling_rows,
    )
    result.add_metric("equivalence_single", 1.0 if single_ok else 0.0,
                      direction="higher_better", tolerance=0.0)
    result.add_metric("equivalence_batch", 1.0 if batch_ok else 0.0,
                      direction="higher_better", tolerance=0.0)
    # The absolute rates come from time.perf_counter() and vary with the
    # machine class and its load, so their compare tolerances are wide —
    # the pytest wrapper's >= 2x speedup assertion (same-machine, same
    # run) is the real quality gate. The speedup ratio cancels most
    # machine dependence and gets a tighter band.
    result.add_metric("sequential_samples_per_s", sequential_rate,
                      unit="samples/s", direction="higher_better",
                      tolerance=0.75)
    result.add_metric("batched_samples_per_s", batched_rate,
                      unit="samples/s", direction="higher_better",
                      tolerance=0.75)
    result.add_metric("speedup_batch8", speedup, unit="x",
                      direction="higher_better", tolerance=0.35)
    return result


def test_batched_serving_throughput(benchmark, bench_ctx):
    result = build_serve_throughput(bench_ctx)
    emit_result(result)

    assert result.value("equivalence_single") == 1.0
    assert result.value("equivalence_batch") == 1.0

    # The acceptance bar of the serving layer: >= 2x at batch 8.
    speedup = result.value("speedup_batch8")
    assert speedup >= 2.0, (
        f"batched serving reached only {speedup:.2f}x sequential throughput"
    )

    batched = BatchedPipeline(_dit_model(), ExionConfig.for_model("dit"))
    benchmark(batched.generate_batch, list(range(4)),
              class_label=CLASS_LABEL)
