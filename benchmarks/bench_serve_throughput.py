"""Batched serving throughput versus sequential generation.

The serving claim of ``repro.serve``: coalescing concurrent requests into
one vectorized denoising loop multiplies samples/sec without changing any
request's output. This bench measures both halves of that claim on the
DiT benchmark model at the paper's Table I EXION configuration:

- **equivalence** — a batch of one (and each request of a batch of
  eight) reproduces the sequential ``ExionPipeline.generate()`` sample
  and statistics bit for bit;
- **throughput** — batch-8 serving reaches at least twice the
  samples/sec of a sequential request loop.

Run with::

    pytest benchmarks/bench_serve_throughput.py --import-mode=importlib -s
"""

import time

import numpy as np

from repro.analysis.report import format_table
from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.models.zoo import build_model
from repro.serve import BatchedPipeline

from .conftest import emit

ITERATIONS = 50
BATCH = 8
CLASS_LABEL = 207


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_serving_throughput(benchmark):
    model = build_model("dit", seed=0, total_iterations=ITERATIONS)
    config = ExionConfig.for_model("dit")
    sequential = ExionPipeline(model, config)
    batched = BatchedPipeline(model, config)
    seeds = list(range(BATCH))

    # ------------------------------------------------------------------
    # equivalence: per-request results match sequential runs bit for bit
    # ------------------------------------------------------------------
    reference = [
        sequential.generate(seed=s, class_label=CLASS_LABEL) for s in seeds
    ]
    single = batched.generate(seed=seeds[0], class_label=CLASS_LABEL)
    assert np.array_equal(single.sample, reference[0].sample)
    assert single.stats.summary() == reference[0].stats.summary()
    assert single.stats.ffn_sparsities == reference[0].stats.ffn_sparsities

    _, batch_results = batched.generate_batch(seeds, class_label=CLASS_LABEL)
    for got, want in zip(batch_results, reference):
        assert np.array_equal(got.sample, want.sample)
        assert got.stats.summary() == want.stats.summary()

    # ------------------------------------------------------------------
    # throughput: batch-8 serving vs a sequential request loop
    # ------------------------------------------------------------------
    def run_sequential():
        for s in seeds:
            sequential.generate(seed=s, class_label=CLASS_LABEL)

    def run_batched():
        batched.generate_batch(seeds, class_label=CLASS_LABEL)

    sequential_s = _best_of(run_sequential)
    batched_s = _best_of(run_batched)
    sequential_rate = BATCH / sequential_s
    batched_rate = BATCH / batched_s
    speedup = batched_rate / sequential_rate

    scaling_rows = []
    for size in (1, 2, 4, BATCH):
        elapsed = _best_of(
            lambda: batched.generate_batch(seeds[:size],
                                           class_label=CLASS_LABEL),
            repeats=1,
        )
        scaling_rows.append([size, f"{size / elapsed:.2f}",
                             f"{(size / elapsed) / sequential_rate:.2f}x"])

    emit(format_table(
        ["batch size", "samples/s", "vs sequential"],
        [[f"sequential x{BATCH}", f"{sequential_rate:.2f}", "1.00x"]]
        + scaling_rows,
        title=f"DiT serving throughput ({ITERATIONS} iterations)",
    ))

    # The acceptance bar of the serving layer: >= 2x at batch 8.
    assert speedup >= 2.0, (
        f"batched serving reached only {speedup:.2f}x sequential throughput"
    )

    benchmark(batched.generate_batch, seeds[:4], class_label=CLASS_LABEL)
