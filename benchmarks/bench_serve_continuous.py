"""Continuous batching vs drain-and-refill under bursty, deadline traffic.

The serving claim of :mod:`repro.serve.continuous`: on a bursty MMPP
trace whose requests carry completion deadlines, iteration-level
continuous batching (join at dense-phase boundaries, leave any tick,
SLA-aware admission) beats the drain-and-refill server on the metrics an
operator is paged for:

- **goodput** — deadline-met completions per simulated second is at
  least 1.3x drain-and-refill. Both systems are work-conserving with
  identical hw tick pricing, so raw saturation throughput ties; the gap
  is structural: drain's queue waits are lumpy (multiples of a full
  generation — a request landing just after a dispatch waits the whole
  run), so deadline traffic expires in its queue or finishes late, while
  the continuous scheduler seats requests at the next dense boundary and
  refuses at admission the ones that could never make it;
- **tail wait** — p99 queue wait of served requests is *strictly* lower;
- **equivalence** — the continuous executor's per-request outputs are
  byte-identical to solo sequential generation (spot-checked here at
  bench scale; the exhaustive differential and property suites live in
  ``tests/serve/``);
- **determinism** — same-seed reruns produce byte-identical
  :class:`~repro.cluster.report.ClusterReport` JSON.

All fleet numbers are simulated time from the EXION4 latency model
(:meth:`~repro.cluster.replica.ServiceTimeModel.tick_latency_s` prices
each denoising iteration by differencing plan lowerings), so the
determinism metric is exact; rate/latency metrics carry a 10% tolerance
for cross-version NumPy RNG stream drift.

Run with::

    pytest benchmarks/bench_serve_continuous.py --import-mode=importlib -s
"""

import numpy as np

from repro.bench import BenchResult, register_bench
from repro.cluster import (
    MMPPProcess,
    ServiceTimeModel,
    SLOPolicy,
    WorkloadMix,
    build_replicas,
    make_router,
    simulate_cluster,
    synthesize_trace,
)
from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.serve import BatchingPolicy, ContinuousPolicy, ContinuousServer

from .conftest import emit_result

MODEL = "dit"
ABLATION = "all"
ACCELERATOR = "exion4"  # sublinear batch pricing: the regime batching pays
REQUESTS = 60
RATE_LOW_RPS = 0.8
RATE_HIGH_RPS = 4.0
DWELL_S = 5.0
DEADLINE_S = 7.0  # relative completion deadline on every request
SEED = 0
MAX_BATCH = 8

# Real-mode equivalence spot check (wall-clock, kept tiny).
EQUIV_ITERATIONS = 12
EQUIV_REQUESTS = 4


def _trace():
    return synthesize_trace(
        MMPPProcess(RATE_LOW_RPS, RATE_HIGH_RPS, DWELL_S),
        REQUESTS,
        mix=WorkloadMix(models=(MODEL,), ablation=ABLATION),
        rng=SEED,
        deadline_s=DEADLINE_S,
    )


def _run_fleet(service_model, continuous):
    if continuous:
        policy = ContinuousPolicy(
            max_batch_size=MAX_BATCH,
            # SLA admission floor: the full-occupancy generation price.
            min_service_s=service_model.latency_s(MODEL, ABLATION, MAX_BATCH),
        )
    else:
        policy = BatchingPolicy(max_batch_size=MAX_BATCH, max_wait_s=0.0)
    return simulate_cluster(
        _trace(),
        replicas=build_replicas(
            1, policy=policy, service_model=service_model,
            continuous=continuous,
        ),
        router=make_router("round_robin"),
        slo=SLOPolicy(latency_target_s=DEADLINE_S),
        scenario={"seed": SEED, "deadline_s": DEADLINE_S},
    )


def _goodput_rps(report):
    """Deadline-met completions per simulated second.

    ``slo_attainment`` already counts drops as misses (denominator is
    served + dropped = submitted), so attainment x submitted is the
    on-time completion count.
    """
    return (report.slo_attainment or 0.0) * report.submitted / report.makespan_s


def _equivalence():
    """Continuous executor outputs == solo sequential generation (1.0/0.0)."""
    config = ExionConfig.for_model(MODEL).ablation(ABLATION)
    server = ContinuousServer(
        MODEL, config=config,
        policy=ContinuousPolicy(max_batch_size=EQUIV_REQUESTS),
        total_iterations=EQUIV_ITERATIONS,
    )
    for i in range(EQUIV_REQUESTS - 1):
        server.submit(seed=i, class_label=207)
    server.step()  # start the early batch so the last request joins late
    server.submit(seed=99, class_label=207)
    results = server.run_until_drained()

    model = server.cache.model(MODEL, 0, EQUIV_ITERATIONS, None)
    pipeline = ExionPipeline(model, config)
    for record in results:
        solo = pipeline.generate(
            seed=record.request.seed, class_label=record.request.class_label
        )
        if not np.array_equal(solo.sample, record.result.sample):
            return 0.0
        if solo.stats.summary() != record.result.stats.summary():
            return 0.0
    return 1.0


@register_bench("serve_continuous", tags=("serve", "cluster", "smoke"))
def build_serve_continuous(ctx):
    service_model = ServiceTimeModel(ACCELERATOR)
    continuous = _run_fleet(service_model, continuous=True)
    drain = _run_fleet(service_model, continuous=False)
    rerun = _run_fleet(ServiceTimeModel(ACCELERATOR), continuous=True)
    deterministic = continuous.to_json() == rerun.to_json()
    equivalence = _equivalence()

    rows = []
    for label, report in (("continuous", continuous), ("drain", drain)):
        lat = report.latency
        usage = report.replicas[0]
        rows.append([
            label,
            report.served,
            report.admission_drops + report.timeout_drops,
            f"{(report.slo_attainment or 0.0) * 100:.1f}%",
            f"{_goodput_rps(report):.3f}",
            f"{lat['wait_p99_s'] * 1e3:.0f}",
            f"{usage.get('mean_occupancy', usage['mean_batch_size']):.2f}",
        ])

    goodput_c = _goodput_rps(continuous)
    goodput_d = _goodput_rps(drain)

    result = BenchResult("serve_continuous", model=MODEL)
    result.add_series(
        f"Continuous vs drain ({REQUESTS} MMPP arrivals "
        f"{RATE_LOW_RPS}/{RATE_HIGH_RPS} rps, deadline {DEADLINE_S:.0f}s, "
        f"1x {ACCELERATOR.upper()})",
        ["mode", "served", "dropped", "attainment", "goodput/s",
         "p99 wait ms", "mean occupancy"],
        rows,
    )
    result.add_metric(
        "goodput_continuous_rps", goodput_c,
        unit="req/s", direction="higher_better", tolerance=0.10,
    )
    result.add_metric(
        "goodput_drain_rps", goodput_d,
        unit="req/s", direction="higher_better", tolerance=0.10,
    )
    result.add_metric(
        "goodput_ratio", goodput_c / goodput_d,
        unit="x", direction="higher_better", tolerance=0.10,
    )
    result.add_metric(
        "wait_p99_continuous_s", continuous.latency["wait_p99_s"],
        unit="s", direction="lower_better", tolerance=0.10,
    )
    result.add_metric(
        "wait_p99_drain_s", drain.latency["wait_p99_s"],
        unit="s", direction="lower_better", tolerance=0.10,
    )
    result.add_metric(
        "mean_occupancy_continuous",
        continuous.replicas[0]["mean_occupancy"],
        direction="higher_better", tolerance=0.10,
    )
    result.add_metric(
        "deterministic_report", 1.0 if deterministic else 0.0,
        direction="higher_better", tolerance=0.0,
    )
    result.add_metric(
        "equivalence_continuous", equivalence,
        direction="higher_better", tolerance=0.0,
    )
    result.add_note(
        "Goodput counts deadline-met completions only (attainment x "
        "submitted / makespan); drain serves more requests but most "
        "finish past their deadline. Fleet numbers are simulated EXION4 "
        "time; the equivalence metric runs the real numerics."
    )
    return result


def test_serve_continuous(bench_ctx):
    result = build_serve_continuous(bench_ctx)
    emit_result(result)

    # The acceptance bar: continuous batching's goodput is >= 1.3x the
    # drain-and-refill server on the bursty deadline trace, with a
    # strictly lower p99 queue wait.
    ratio = result.value("goodput_ratio")
    assert ratio >= 1.3, f"continuous goodput only {ratio:.2f}x drain"
    assert (
        result.value("wait_p99_continuous_s")
        < result.value("wait_p99_drain_s")
    )
    assert result.value("equivalence_continuous") == 1.0
    assert result.value("deterministic_report") == 1.0
