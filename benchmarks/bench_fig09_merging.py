"""Fig. 9 — merging rescues models condensing cannot help.

The paper's Stable Diffusion case: 77.4% of columns remain after
condensing on the full matrix, but tiled ConMerge (per-16-row condensing
plus two-round merging under conflict-vector constraints) compacts it to
single digits (8.4% in the paper).
"""

import numpy as np

from repro.analysis.report import percent
from repro.bench import BenchResult, register_bench
from repro.core.conmerge.condense import condense
from repro.core.conmerge.cvg import conmerge_tiled
from repro.workloads.generator import ffn_output_bitmask
from repro.workloads.specs import get_spec

from .conftest import emit_result


def sd_mask(rows=256, cols=1024, seed=0):
    spec = get_spec("stable_diffusion")
    return ffn_output_bitmask(
        rows, cols, spec.target_inter_sparsity,
        dead_col_fraction=0.25, rng=np.random.default_rng(seed),
    )


@register_bench("fig09_merging", tags=("figure", "conmerge", "smoke"))
def build_fig09(ctx):
    mask = sd_mask()
    whole_matrix_condense = condense(mask).remaining_ratio
    merged = conmerge_tiled(mask)

    result = BenchResult("fig09_merging", model="stable_diffusion")
    result.add_series(
        "Fig. 9 — Stable Diffusion remaining columns through ConMerge",
        ["stage", "remaining columns", "paper"],
        [
            ["condensing (whole matrix)", percent(whole_matrix_condense),
             "77.4%"],
            ["condensing (per 16-row tile)", percent(merged.condense_ratio),
             "-"],
            ["+ merging (ConMerge)", percent(merged.remaining_column_ratio),
             "8.4%"],
        ],
    )
    result.add_metric(
        "whole_matrix_condense_ratio", whole_matrix_condense,
        paper=0.774, direction="two_sided", tolerance=0.15,
    )
    result.add_metric(
        "tile_condense_ratio", merged.condense_ratio,
        direction="lower_better", tolerance=0.15,
    )
    result.add_metric(
        "conmerge_remaining_ratio", merged.remaining_column_ratio,
        paper=0.084, direction="lower_better", tolerance=0.15,
    )
    result.add_metric(
        "utilization", merged.utilization,
        direction="higher_better", tolerance=0.15,
    )
    return result


def test_fig09_merging(benchmark, bench_ctx):
    result = build_fig09(bench_ctx)
    emit_result(result)

    # Shape: condensing alone leaves most columns; ConMerge collapses them.
    whole = result.value("whole_matrix_condense_ratio")
    remaining = result.value("conmerge_remaining_ratio")
    assert whole > 0.6
    assert remaining < 0.45
    assert remaining < whole / 2
    # Merged blocks execute at decent utilization.
    assert result.value("utilization") > 0.2

    benchmark(conmerge_tiled, sd_mask())
