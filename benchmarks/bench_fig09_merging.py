"""Fig. 9 — merging rescues models condensing cannot help.

The paper's Stable Diffusion case: 77.4% of columns remain after
condensing on the full matrix, but tiled ConMerge (per-16-row condensing
plus two-round merging under conflict-vector constraints) compacts it to
single digits (8.4% in the paper).
"""

import numpy as np
import pytest

from repro.analysis.report import format_table, percent
from repro.core.conmerge.condense import condense
from repro.core.conmerge.cvg import conmerge_tiled
from repro.workloads.generator import ffn_output_bitmask
from repro.workloads.specs import get_spec

from .conftest import emit


def sd_mask(rows=256, cols=1024, seed=0):
    spec = get_spec("stable_diffusion")
    return ffn_output_bitmask(
        rows, cols, spec.target_inter_sparsity,
        dead_col_fraction=0.25, rng=np.random.default_rng(seed),
    )


def test_fig09_merging(benchmark):
    mask = sd_mask()
    whole_matrix_condense = condense(mask).remaining_ratio
    result = benchmark(conmerge_tiled, mask)

    table = format_table(
        ["stage", "remaining columns", "paper"],
        [
            ["condensing (whole matrix)", percent(whole_matrix_condense),
             "77.4%"],
            ["condensing (per 16-row tile)", percent(result.condense_ratio),
             "-"],
            ["+ merging (ConMerge)", percent(result.remaining_column_ratio),
             "8.4%"],
        ],
        title="Fig. 9 — Stable Diffusion remaining columns through ConMerge",
    )
    emit(table)

    # Shape: condensing alone leaves most columns; ConMerge collapses them.
    assert whole_matrix_condense > 0.6
    assert result.remaining_column_ratio < 0.45
    assert result.remaining_column_ratio < whole_matrix_condense / 2
    # Merged blocks execute at decent utilization.
    assert result.utilization > 0.2
