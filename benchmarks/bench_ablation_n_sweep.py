"""Ablation — sweeping the FFN-Reuse period N on DiT.

The paper fixes N per model (Table I) after empirical search. This sweep
shows the trade-off that search navigates: larger N skips more FFN work
but drifts further from the vanilla output.

The sweep runs through the design-space exploration engine
(:mod:`repro.explore`): the N axis is a one-dimensional
:class:`~repro.explore.space.SearchSpace` walked by
:class:`~repro.explore.GridSearch`, with metrics/baseline values
unchanged from the pre-engine hand-rolled loop. N=0 reproduces vanilla
exactly (infinite PSNR); because engine objectives must stay finite for
the canonical report, the evaluator clamps PSNR at
:data:`repro.explore.objectives.PSNR_CAP_DB` and carries exactness as
its own objective.
"""

import math
from dataclasses import replace
from functools import lru_cache

from repro.analysis.report import percent
from repro.bench import BenchResult, register_bench
from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.explore import (
    Categorical,
    ExploreRunner,
    GridSearch,
    Objective,
    SearchSpace,
)
from repro.explore.objectives import PSNR_CAP_DB
from repro.models.zoo import build_model
from repro.workloads.metrics import psnr

from .conftest import emit_result

SWEEP_N = (0, 1, 2, 4, 8)

SWEEP_SPACE = SearchSpace([Categorical("n", SWEEP_N)])

SWEEP_OBJECTIVES = (
    Objective("ops_reduction", "higher_better"),
    Objective("psnr_db", "higher_better", "dB"),
    Objective("exact", "higher_better"),
)


@lru_cache(maxsize=1)
def _model_and_vanilla():
    """One model build + vanilla reference, shared by builder and the
    pytest kernel timing (the model is read-only across pipelines)."""
    model = build_model("dit", seed=0, total_iterations=24)
    vanilla = ExionPipeline(
        model, ExionConfig.for_model("dit")
    ).generate_vanilla(seed=1, class_label=5)
    return model, vanilla


def sweep_point(model, vanilla, n):
    cfg = ExionConfig.for_model("dit", enable_eager_prediction=False)
    cfg = replace(cfg, sparse_iters_n=n)
    result = ExionPipeline(model, cfg).generate(seed=1, class_label=5)
    return {
        "n": n,
        "psnr": psnr(vanilla.sample, result.sample),
        "ops_reduction": result.stats.ffn_ops_reduction,
    }


def evaluate_n_point(point, fidelity=None):
    """Engine evaluator: one N value to its (finite) objective values."""
    model, vanilla = _model_and_vanilla()
    cell = sweep_point(model, vanilla, point["n"])
    exact = not math.isfinite(cell["psnr"])
    return {
        "ops_reduction": cell["ops_reduction"],
        "psnr_db": PSNR_CAP_DB if exact else cell["psnr"],
        "exact": 1.0 if exact else 0.0,
    }


@register_bench("ablation_n_sweep", tags=("ablation", "core"))
def build_n_sweep(ctx):
    runner = ExploreRunner(
        SWEEP_SPACE,
        GridSearch(),
        evaluate_n_point,
        objectives=SWEEP_OBJECTIVES,
        seed=0,
    )
    points = [
        {
            "n": e["point"]["n"],
            "ops_reduction": e["objectives"]["ops_reduction"],
            "psnr": (
                float("inf") if e["objectives"]["exact"]
                else e["objectives"]["psnr_db"]
            ),
        }
        for e in runner.run().evaluations
    ]
    result = BenchResult("ablation_n_sweep", model="dit")
    result.add_series(
        "Ablation — FFN-Reuse period N on DiT (paper uses N=2)",
        ["N (sparse iters)", "FFN ops reduction", "PSNR vs vanilla"],
        [
            [p["n"], percent(p["ops_reduction"]), f"{p['psnr']:.2f} dB"]
            for p in points
        ],
    )
    for p in points:
        result.add_metric(
            f"n{p['n']}.ops_reduction", p["ops_reduction"],
            direction="higher_better", tolerance=0.10,
        )
        # N=0 reproduces vanilla exactly: PSNR is infinite, which the
        # schema (finite metrics only) records as an exactness flag.
        if math.isfinite(p["psnr"]):
            result.add_metric(
                f"n{p['n']}.psnr_db", p["psnr"], unit="dB",
                direction="higher_better", tolerance=0.15,
            )
    result.add_metric(
        "n0_exact", 1.0 if math.isinf(points[0]["psnr"]) else 0.0,
        direction="higher_better", tolerance=0.0,
    )
    return result


def test_ablation_n_sweep(benchmark, bench_ctx):
    result = build_n_sweep(bench_ctx)
    emit_result(result)

    # N=0 is exact (all iterations dense).
    assert result.value("n0.ops_reduction") == 0.0
    assert result.value("n0_exact") == 1.0
    # Ops reduction grows monotonically with N.
    reductions = [result.value(f"n{n}.ops_reduction") for n in SWEEP_N]
    assert reductions == sorted(reductions)
    # Accuracy degrades as N grows (weak monotonicity with tolerance).
    assert result.value(f"n{SWEEP_N[-1]}.psnr_db") <= (
        result.value("n1.psnr_db") + 1.0
    )

    model, vanilla = _model_and_vanilla()
    benchmark(sweep_point, model, vanilla, 2)
