"""Ablation — sweeping the FFN-Reuse period N on DiT.

The paper fixes N per model (Table I) after empirical search. This sweep
shows the trade-off that search navigates: larger N skips more FFN work
but drifts further from the vanilla output.
"""

import pytest

from repro.analysis.report import format_table, percent
from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.models.zoo import build_model
from repro.workloads.metrics import psnr

from .conftest import emit


def sweep_point(model, vanilla, n):
    cfg = ExionConfig.for_model("dit", enable_eager_prediction=False)
    from dataclasses import replace

    cfg = replace(cfg, sparse_iters_n=n)
    result = ExionPipeline(model, cfg).generate(seed=1, class_label=5)
    return {
        "n": n,
        "psnr": psnr(vanilla.sample, result.sample),
        "ops_reduction": result.stats.ffn_ops_reduction,
    }


def test_ablation_n_sweep(benchmark):
    model = build_model("dit", seed=0, total_iterations=24)
    vanilla = ExionPipeline(
        model, ExionConfig.for_model("dit")
    ).generate_vanilla(seed=1, class_label=5)

    points = [sweep_point(model, vanilla, n) for n in (0, 1, 2, 4, 8)]
    emit(format_table(
        ["N (sparse iters)", "FFN ops reduction", "PSNR vs vanilla"],
        [
            [p["n"], percent(p["ops_reduction"]), f"{p['psnr']:.2f} dB"]
            for p in points
        ],
        title="Ablation — FFN-Reuse period N on DiT (paper uses N=2)",
    ))

    # N=0 is exact (all iterations dense).
    assert points[0]["ops_reduction"] == 0.0
    assert points[0]["psnr"] == float("inf")
    # Ops reduction grows monotonically with N.
    reductions = [p["ops_reduction"] for p in points]
    assert reductions == sorted(reductions)
    # Accuracy degrades as N grows (weak monotonicity with tolerance).
    assert points[-1]["psnr"] <= points[1]["psnr"] + 1.0

    benchmark(sweep_point, model, vanilla, 2)
