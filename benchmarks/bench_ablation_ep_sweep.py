"""Ablation — eager-prediction (top-k, q_th) sweep on DiT.

Table I fixes (q_th, k) per model empirically. This sweep exposes the
trade-off: smaller k (keep less) and smaller q_th (collapse more rows)
increase intra-iteration sparsity at an accuracy cost.

The sweep itself runs through the design-space exploration engine
(:mod:`repro.explore`): the (top-k, q_th) grid is a
:class:`~repro.explore.space.SearchSpace`, the hand-rolled point loop is
:class:`~repro.explore.GridSearch` + :class:`~repro.explore.ExploreRunner`
with a bench-local evaluator, and the metrics/baseline values are
unchanged from the pre-engine sweep.
"""

from dataclasses import replace
from functools import lru_cache

from repro.analysis.report import percent
from repro.bench import BenchResult, register_bench
from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.explore import (
    Categorical,
    ExploreRunner,
    GridSearch,
    Objective,
    SearchSpace,
)
from repro.models.zoo import build_model
from repro.workloads.metrics import psnr

from .conftest import emit_result

SWEEP_TOP_K = (0.8, 0.4, 0.1)
SWEEP_Q_TH = (1e9, 0.5)

#: Grid order is declaration-order-major: top_k outer, q_th inner —
#: the same nesting the original hand-rolled loop used.
SWEEP_SPACE = SearchSpace([
    Categorical("top_k", SWEEP_TOP_K),
    Categorical("q_th", SWEEP_Q_TH),
])

SWEEP_OBJECTIVES = (
    Objective("attn_sparsity", "higher_better"),
    Objective("psnr_db", "higher_better", "dB"),
    Objective("kv_skip_rate", "higher_better"),
)


def _point_key(top_k, q_th):
    q_label = "inf" if q_th > 1e6 else f"{q_th:g}"
    return f"k{top_k:g}_q{q_label}"


@lru_cache(maxsize=1)
def _model_and_vanilla():
    """Shared by the builder and the pytest kernel timing: the model is
    deterministic and read-only across pipelines, so one build + one
    vanilla reference serve both."""
    model = build_model("dit", seed=0, total_iterations=18)
    vanilla = ExionPipeline(
        model, ExionConfig.for_model("dit")
    ).generate_vanilla(seed=1, class_label=5)
    return model, vanilla


def run_point(model, vanilla, top_k, q_th):
    cfg = replace(
        ExionConfig.for_model("dit", enable_ffn_reuse=False),
        top_k_ratio=top_k,
        q_threshold=q_th,
    )
    result = ExionPipeline(model, cfg).generate(seed=1, class_label=5)
    return {
        "top_k": top_k,
        "q_th": q_th,
        "sparsity": result.stats.attention_output_sparsity,
        "psnr": psnr(vanilla.sample, result.sample),
        "kv_skip": result.stats.kv_projection_skip_rate,
    }


def evaluate_ep_point(point, fidelity=None):
    """Engine evaluator: one grid cell to its objective values."""
    model, vanilla = _model_and_vanilla()
    cell = run_point(model, vanilla, point["top_k"], point["q_th"])
    return {
        "attn_sparsity": cell["sparsity"],
        "psnr_db": cell["psnr"],
        "kv_skip_rate": cell["kv_skip"],
    }


@register_bench("ablation_ep_sweep", tags=("ablation", "core"))
def build_ep_sweep(ctx):
    runner = ExploreRunner(
        SWEEP_SPACE,
        GridSearch(),
        evaluate_ep_point,
        objectives=SWEEP_OBJECTIVES,
        seed=0,
    )
    points = [
        {
            "top_k": e["point"]["top_k"],
            "q_th": e["point"]["q_th"],
            "sparsity": e["objectives"]["attn_sparsity"],
            "psnr": e["objectives"]["psnr_db"],
            "kv_skip": e["objectives"]["kv_skip_rate"],
        }
        for e in runner.run().evaluations
    ]
    result = BenchResult("ablation_ep_sweep", model="dit")
    result.add_series(
        "Ablation — EP (top-k, q_th) sweep on DiT",
        ["top-k", "q_th", "attn sparsity", "KV-proj skip", "PSNR"],
        [
            [
                p["top_k"],
                "inf" if p["q_th"] > 1e6 else p["q_th"],
                percent(p["sparsity"]),
                percent(p["kv_skip"]),
                f"{p['psnr']:.2f} dB",
            ]
            for p in points
        ],
    )
    for p in points:
        key = _point_key(p["top_k"], p["q_th"])
        result.add_metric(f"{key}.attn_sparsity", p["sparsity"],
                          direction="higher_better", tolerance=0.10)
        result.add_metric(f"{key}.psnr_db", p["psnr"], unit="dB",
                          direction="higher_better", tolerance=0.15)
        result.add_metric(f"{key}.kv_skip_rate", p["kv_skip"],
                          direction="higher_better", tolerance=0.15)
    return result


def test_ablation_ep_sweep(benchmark, bench_ctx):
    result = build_ep_sweep(bench_ctx)
    emit_result(result)

    # Smaller k -> more sparsity (paper II-B: 20-95% across configs).
    no_dominance = [
        (result.value(f"{_point_key(k, 1e9)}.attn_sparsity"),
         result.value(f"{_point_key(k, 1e9)}.psnr_db"))
        for k in SWEEP_TOP_K
    ]
    sparsities = [s for s, _ in no_dominance]
    assert sparsities == sorted(sparsities)
    # Keeping more yields better accuracy.
    assert no_dominance[0][1] >= no_dominance[-1][1] - 0.5
    # Enabling dominance skipping adds sparsity at fixed k.
    for k in SWEEP_TOP_K:
        with_dom = result.value(f"{_point_key(k, 0.5)}.attn_sparsity")
        without = result.value(f"{_point_key(k, 1e9)}.attn_sparsity")
        assert with_dom >= without - 1e-9

    model, vanilla = _model_and_vanilla()
    benchmark(run_point, model, vanilla, 0.4, 0.5)
