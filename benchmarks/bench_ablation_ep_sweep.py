"""Ablation — eager-prediction (top-k, q_th) sweep on DiT.

Table I fixes (q_th, k) per model empirically. This sweep exposes the
trade-off: smaller k (keep less) and smaller q_th (collapse more rows)
increase intra-iteration sparsity at an accuracy cost.
"""

from dataclasses import replace

from repro.analysis.report import format_table, percent
from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.models.zoo import build_model
from repro.workloads.metrics import psnr

from .conftest import emit


def run_point(model, vanilla, top_k, q_th):
    cfg = replace(
        ExionConfig.for_model("dit", enable_ffn_reuse=False),
        top_k_ratio=top_k,
        q_threshold=q_th,
    )
    result = ExionPipeline(model, cfg).generate(seed=1, class_label=5)
    return {
        "top_k": top_k,
        "q_th": q_th,
        "sparsity": result.stats.attention_output_sparsity,
        "psnr": psnr(vanilla.sample, result.sample),
        "kv_skip": result.stats.kv_projection_skip_rate,
    }


def test_ablation_ep_sweep(benchmark):
    model = build_model("dit", seed=0, total_iterations=18)
    vanilla = ExionPipeline(
        model, ExionConfig.for_model("dit")
    ).generate_vanilla(seed=1, class_label=5)

    points = [
        run_point(model, vanilla, top_k, q_th)
        for top_k in (0.8, 0.4, 0.1)
        for q_th in (1e9, 0.5)
    ]
    emit(format_table(
        ["top-k", "q_th", "attn sparsity", "KV-proj skip", "PSNR"],
        [
            [
                p["top_k"],
                "inf" if p["q_th"] > 1e6 else p["q_th"],
                percent(p["sparsity"]),
                percent(p["kv_skip"]),
                f"{p['psnr']:.2f} dB",
            ]
            for p in points
        ],
        title="Ablation — EP (top-k, q_th) sweep on DiT",
    ))

    # Smaller k -> more sparsity (paper II-B: 20-95% across configs).
    no_dominance = [p for p in points if p["q_th"] > 1e6]
    sparsities = [p["sparsity"] for p in no_dominance]
    assert sparsities == sorted(sparsities)
    # Keeping more yields better accuracy.
    assert no_dominance[0]["psnr"] >= no_dominance[-1]["psnr"] - 0.5
    # Enabling dominance skipping adds sparsity at fixed k.
    for i in range(0, len(points), 2):
        assert points[i + 1]["sparsity"] >= points[i]["sparsity"] - 1e-9

    benchmark(run_point, model, vanilla, 0.4, 0.5)
