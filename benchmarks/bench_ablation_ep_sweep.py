"""Ablation — eager-prediction (top-k, q_th) sweep on DiT.

Table I fixes (q_th, k) per model empirically. This sweep exposes the
trade-off: smaller k (keep less) and smaller q_th (collapse more rows)
increase intra-iteration sparsity at an accuracy cost.
"""

from dataclasses import replace
from functools import lru_cache

from repro.analysis.report import percent
from repro.bench import BenchResult, register_bench
from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.models.zoo import build_model
from repro.workloads.metrics import psnr

from .conftest import emit_result

SWEEP_TOP_K = (0.8, 0.4, 0.1)
SWEEP_Q_TH = (1e9, 0.5)


def _point_key(top_k, q_th):
    q_label = "inf" if q_th > 1e6 else f"{q_th:g}"
    return f"k{top_k:g}_q{q_label}"


@lru_cache(maxsize=1)
def _model_and_vanilla():
    """Shared by the builder and the pytest kernel timing: the model is
    deterministic and read-only across pipelines, so one build + one
    vanilla reference serve both."""
    model = build_model("dit", seed=0, total_iterations=18)
    vanilla = ExionPipeline(
        model, ExionConfig.for_model("dit")
    ).generate_vanilla(seed=1, class_label=5)
    return model, vanilla


def run_point(model, vanilla, top_k, q_th):
    cfg = replace(
        ExionConfig.for_model("dit", enable_ffn_reuse=False),
        top_k_ratio=top_k,
        q_threshold=q_th,
    )
    result = ExionPipeline(model, cfg).generate(seed=1, class_label=5)
    return {
        "top_k": top_k,
        "q_th": q_th,
        "sparsity": result.stats.attention_output_sparsity,
        "psnr": psnr(vanilla.sample, result.sample),
        "kv_skip": result.stats.kv_projection_skip_rate,
    }


@register_bench("ablation_ep_sweep", tags=("ablation", "core"))
def build_ep_sweep(ctx):
    model, vanilla = _model_and_vanilla()

    points = [
        run_point(model, vanilla, top_k, q_th)
        for top_k in SWEEP_TOP_K
        for q_th in SWEEP_Q_TH
    ]
    result = BenchResult("ablation_ep_sweep", model="dit")
    result.add_series(
        "Ablation — EP (top-k, q_th) sweep on DiT",
        ["top-k", "q_th", "attn sparsity", "KV-proj skip", "PSNR"],
        [
            [
                p["top_k"],
                "inf" if p["q_th"] > 1e6 else p["q_th"],
                percent(p["sparsity"]),
                percent(p["kv_skip"]),
                f"{p['psnr']:.2f} dB",
            ]
            for p in points
        ],
    )
    for p in points:
        key = _point_key(p["top_k"], p["q_th"])
        result.add_metric(f"{key}.attn_sparsity", p["sparsity"],
                          direction="higher_better", tolerance=0.10)
        result.add_metric(f"{key}.psnr_db", p["psnr"], unit="dB",
                          direction="higher_better", tolerance=0.15)
        result.add_metric(f"{key}.kv_skip_rate", p["kv_skip"],
                          direction="higher_better", tolerance=0.15)
    return result


def test_ablation_ep_sweep(benchmark, bench_ctx):
    result = build_ep_sweep(bench_ctx)
    emit_result(result)

    # Smaller k -> more sparsity (paper II-B: 20-95% across configs).
    no_dominance = [
        (result.value(f"{_point_key(k, 1e9)}.attn_sparsity"),
         result.value(f"{_point_key(k, 1e9)}.psnr_db"))
        for k in SWEEP_TOP_K
    ]
    sparsities = [s for s, _ in no_dominance]
    assert sparsities == sorted(sparsities)
    # Keeping more yields better accuracy.
    assert no_dominance[0][1] >= no_dominance[-1][1] - 0.5
    # Enabling dominance skipping adds sparsity at fixed k.
    for k in SWEEP_TOP_K:
        with_dom = result.value(f"{_point_key(k, 0.5)}.attn_sparsity")
        without = result.value(f"{_point_key(k, 1e9)}.attn_sparsity")
        assert with_dom >= without - 1e-9

    model, vanilla = _model_and_vanilla()
    benchmark(run_point, model, vanilla, 0.4, 0.5)
