"""Fig. 4 — operation-count breakdown per benchmark model.

Regenerates the per-iteration operation totals and category shares (QKV
projection / attention / FFN / etc.) for all seven models, alongside the
paper's reported totals and transformer shares.
"""

from repro.analysis.opcount import operation_breakdown_table
from repro.analysis.report import percent
from repro.bench import BenchResult, register_bench
from repro.workloads.specs import BENCHMARK_ORDER

from .conftest import emit_result


@register_bench("fig04_opcount", tags=("figure", "analysis", "smoke"))
def build_fig04(ctx):
    rows = operation_breakdown_table()
    result = BenchResult("fig04_opcount", model="all")
    result.add_series(
        "Fig. 4 — number-of-operations breakdown (per iteration)",
        ["model", "total ops/iter", "paper", "qkv", "attn", "ffn", "etc",
         "transformer", "paper tx"],
        [
            [
                r["model"],
                f"{r['total_ops']:.2e}",
                f"{r['paper_total_ops']:.1e}",
                percent(r["qkv_share"]),
                percent(r["attention_share"]),
                percent(r["ffn_share"]),
                percent(r["etc_share"]),
                percent(r["transformer_share"]),
                percent(r["paper_transformer_share"]),
            ]
            for r in rows
        ],
    )
    # Rows come back in BENCHMARK_ORDER; key metrics by the spec name,
    # not the display name the table prints.
    for name, r in zip(BENCHMARK_ORDER, rows):
        result.add_metric(
            f"{name}.transformer_share", r["transformer_share"],
            paper=r["paper_transformer_share"], direction="two_sided",
            tolerance=0.05,
        )
        result.add_metric(
            f"{name}.ffn_share_of_transformer", r["ffn_share_of_transformer"],
            direction="higher_better", tolerance=0.10,
        )
        result.add_metric(
            f"{name}.total_ops", r["total_ops"], unit="ops/iter",
            paper=r["paper_total_ops"], direction="two_sided", tolerance=0.05,
        )
    return result


def test_fig04_operation_breakdown(benchmark, bench_ctx):
    result = build_fig04(bench_ctx)
    emit_result(result)

    # Shape assertions: transformer shares match the paper's figure and
    # FFN is the dominant transformer category everywhere.
    for name in BENCHMARK_ORDER:
        metric = result.metric(f"{name}.transformer_share")
        assert abs(metric.value - metric.paper) < 0.03
        assert result.value(f"{name}.ffn_share_of_transformer") >= 0.4

    benchmark(operation_breakdown_table)
