"""Fig. 4 — operation-count breakdown per benchmark model.

Regenerates the per-iteration operation totals and category shares (QKV
projection / attention / FFN / etc.) for all seven models, alongside the
paper's reported totals and transformer shares.
"""

from repro.analysis.opcount import operation_breakdown_table
from repro.analysis.report import format_table, percent

from .conftest import emit


def test_fig04_operation_breakdown(benchmark):
    rows = benchmark(operation_breakdown_table)
    table = format_table(
        ["model", "total ops/iter", "paper", "qkv", "attn", "ffn", "etc",
         "transformer", "paper tx"],
        [
            [
                r["model"],
                f"{r['total_ops']:.2e}",
                f"{r['paper_total_ops']:.1e}",
                percent(r["qkv_share"]),
                percent(r["attention_share"]),
                percent(r["ffn_share"]),
                percent(r["etc_share"]),
                percent(r["transformer_share"]),
                percent(r["paper_transformer_share"]),
            ]
            for r in rows
        ],
        title="Fig. 4 — number-of-operations breakdown (per iteration)",
    )
    emit(table)

    # Shape assertions: transformer shares match the paper's figure and
    # FFN is the dominant transformer category everywhere.
    for r in rows:
        assert abs(r["transformer_share"] - r["paper_transformer_share"]) < 0.03
        assert r["ffn_share_of_transformer"] >= 0.4
