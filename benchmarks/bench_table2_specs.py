"""Table II — hardware specifications of the GPUs and EXION instances."""

import pytest

from repro.analysis.report import format_table
from repro.baselines.specs import EDGE_GPU, SERVER_GPU
from repro.hw.accelerator import DSC_PEAK_TOPS, ExionAccelerator

from .conftest import emit


def test_table2_specifications(benchmark):
    ex4 = ExionAccelerator.exion4()
    ex24 = ExionAccelerator.exion24()

    rows = [
        ["Jetson Orin Nano (edge GPU)", "40.0 TOPS", "68 GB/s", "~15 W"],
        ["RTX 6000 Ada (server GPU)", "91.1 TFLOPS", "960 GB/s", "~300 W"],
        [
            "EXION4 (4 DSCs)",
            f"{ex4.peak_tops:.1f} TOPS",
            f"{ex4.dram.bandwidth_gbps:.0f} GB/s",
            f"~{ex4.peak_power_w:.2f} W",
        ],
        [
            "EXION24 (24 DSCs)",
            f"{ex24.peak_tops:.1f} TOPS",
            f"{ex24.dram.bandwidth_gbps:.0f} GB/s",
            f"~{ex24.peak_power_w:.2f} W",
        ],
    ]
    emit(format_table(
        ["device", "throughput", "memory bandwidth", "power"],
        rows,
        title="Table II — hardware specifications",
    ))

    # Paper values: EXION4 39.2 TOPS / 51 GB/s / ~3.18 W;
    # EXION24 235.2 TOPS / 819 GB/s / ~20.40 W.
    assert ex4.peak_tops == pytest.approx(39.2)
    assert ex24.peak_tops == pytest.approx(235.2)
    assert ex4.dram.bandwidth_gbps == 51.0
    assert ex24.dram.bandwidth_gbps == 819.0
    assert ex4.peak_power_w == pytest.approx(3.18, abs=3.0)
    assert ex24.peak_power_w == pytest.approx(20.40, abs=16.0)
    assert DSC_PEAK_TOPS == pytest.approx(9.8)

    benchmark(ExionAccelerator.exion24)
