"""Table II — hardware specifications of the GPUs and EXION instances."""

import pytest

from repro.bench import BenchResult, register_bench
from repro.hw.accelerator import DSC_PEAK_TOPS, ExionAccelerator

from .conftest import emit_result


@register_bench("table2_specs", tags=("table", "hw", "smoke"))
def build_table2(ctx):
    ex4 = ExionAccelerator.exion4()
    ex24 = ExionAccelerator.exion24()

    result = BenchResult("table2_specs", model="")
    result.add_series(
        "Table II — hardware specifications",
        ["device", "throughput", "memory bandwidth", "power"],
        [
            ["Jetson Orin Nano (edge GPU)", "40.0 TOPS", "68 GB/s", "~15 W"],
            ["RTX 6000 Ada (server GPU)", "91.1 TFLOPS", "960 GB/s",
             "~300 W"],
            [
                "EXION4 (4 DSCs)",
                f"{ex4.peak_tops:.1f} TOPS",
                f"{ex4.dram.bandwidth_gbps:.0f} GB/s",
                f"~{ex4.peak_power_w:.2f} W",
            ],
            [
                "EXION24 (24 DSCs)",
                f"{ex24.peak_tops:.1f} TOPS",
                f"{ex24.dram.bandwidth_gbps:.0f} GB/s",
                f"~{ex24.peak_power_w:.2f} W",
            ],
        ],
    )
    # Paper values: EXION4 39.2 TOPS / 51 GB/s / ~3.18 W;
    # EXION24 235.2 TOPS / 819 GB/s / ~20.40 W.
    result.add_metric("exion4.peak_tops", ex4.peak_tops, unit="TOPS",
                      paper=39.2, direction="two_sided", tolerance=0.01)
    result.add_metric("exion24.peak_tops", ex24.peak_tops, unit="TOPS",
                      paper=235.2, direction="two_sided", tolerance=0.01)
    result.add_metric("exion4.bandwidth_gbps", ex4.dram.bandwidth_gbps,
                      unit="GB/s", paper=51.0, direction="two_sided",
                      tolerance=0.01)
    result.add_metric("exion24.bandwidth_gbps", ex24.dram.bandwidth_gbps,
                      unit="GB/s", paper=819.0, direction="two_sided",
                      tolerance=0.01)
    result.add_metric("exion4.peak_power_w", ex4.peak_power_w, unit="W",
                      paper=3.18, direction="two_sided", tolerance=1.0)
    result.add_metric("exion24.peak_power_w", ex24.peak_power_w, unit="W",
                      paper=20.40, direction="two_sided", tolerance=1.0)
    result.add_metric("dsc_peak_tops", DSC_PEAK_TOPS, unit="TOPS",
                      paper=9.8, direction="two_sided", tolerance=0.01)
    return result


def test_table2_specifications(benchmark, bench_ctx):
    result = build_table2(bench_ctx)
    emit_result(result)

    assert result.value("exion4.peak_tops") == pytest.approx(39.2)
    assert result.value("exion24.peak_tops") == pytest.approx(235.2)
    assert result.value("exion4.bandwidth_gbps") == 51.0
    assert result.value("exion24.bandwidth_gbps") == 819.0
    assert result.value("exion4.peak_power_w") == pytest.approx(3.18, abs=3.0)
    assert result.value("exion24.peak_power_w") == pytest.approx(
        20.40, abs=16.0
    )
    assert result.value("dsc_peak_tops") == pytest.approx(9.8)

    benchmark(ExionAccelerator.exion24)
