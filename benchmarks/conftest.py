"""Shared fixtures for the benchmark harness.

Every table and figure of the paper's evaluation has one ``bench_*.py``
module here. Run with::

    pytest benchmarks/ --benchmark-only -s

Each bench prints the rows/series the paper reports (with the paper's own
numbers alongside for comparison) and times a representative kernel through
pytest-benchmark.
"""

import numpy as np
import pytest

from repro.hw.profile import estimate_profile
from repro.workloads.specs import BENCHMARK_ORDER, get_spec


@pytest.fixture(scope="session")
def profiles():
    """Paper-scale sparsity profiles for all benchmark models."""
    return {
        name: estimate_profile(get_spec(name), seed=0)
        for name in BENCHMARK_ORDER
    }


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(2025)


def emit(text):
    """Print a bench table with surrounding whitespace (shown with -s)."""
    print("\n" + text + "\n")
