"""Shared fixtures for the benchmark harness.

Every table and figure of the paper's evaluation has one ``bench_*.py``
module here. Each module registers its builder(s) with
``@repro.bench.register_bench`` and keeps a pytest wrapper that renders
the structured :class:`~repro.bench.BenchResult` (same printed tables as
always) and asserts on its metrics. Run under pytest with::

    pytest benchmarks/ --benchmark-only -s

or through the structured runner, which writes ``BENCH_<name>.json``
files instead of asserting::

    python -m repro bench --run all
"""

import pytest

from repro.bench import BenchContext


@pytest.fixture(scope="session")
def bench_ctx():
    """Shared bench context (caches paper-scale sparsity profiles)."""
    return BenchContext()


def emit(text):
    """Print a bench table with surrounding whitespace (shown with -s)."""
    print("\n" + text + "\n")


def emit_result(result):
    """Print every table and note of a BenchResult, one emit() each."""
    for block in result.render_blocks():
        emit(block)
