"""Fig. 19 (a) — end-to-end latency versus edge and server GPUs.

Paper speedups for the All configuration: EXION4 43.7-1060.6x over the
edge GPU and EXION24 3.3-365.6x over the server GPU at batch one
(42.6-1090.9x and 3.2-379.3x at batch eight).
"""

from repro.analysis.report import format_table
from repro.baselines.gpu import GPUModel
from repro.baselines.specs import EDGE_GPU, SERVER_GPU
from repro.hw.accelerator import ExionAccelerator
from repro.workloads.specs import BENCHMARK_ORDER, get_spec

from .conftest import emit

EDGE_MODELS = ("mld", "mdm", "edge", "make_an_audio")


def latency_rows(accelerator, gpu_model, models, profiles, batch):
    rows = []
    speedups = {}
    for name in models:
        spec = get_spec(name)
        gpu = gpu_model.simulate(spec, batch=batch)
        report = accelerator.simulate(spec, profiles[name], batch=batch)
        speedup = gpu.latency_s / report.latency_s
        speedups[name] = speedup
        rows.append(
            [
                spec.display_name,
                f"{gpu.latency_s * 1e3:.1f} ms",
                f"{report.latency_s * 1e3:.3f} ms",
                f"{speedup:.1f}x",
            ]
        )
    return rows, speedups


def test_fig19a_latency_edge(benchmark, profiles):
    ex4 = ExionAccelerator.exion4()
    gpu = GPUModel(EDGE_GPU)
    for batch in (1, 8):
        rows, speedups = latency_rows(ex4, gpu, EDGE_MODELS, profiles, batch)
        emit(format_table(
            ["model", "edge GPU", "EXION4_All", "speedup"],
            rows,
            title=(f"Fig. 19 (a) — latency vs edge GPU, batch={batch} "
                   f"(paper 43.7-1060.6x @ b1)"),
        ))
        assert all(s > 1.0 for s in speedups.values())
        if batch == 1:
            assert max(speedups.values()) > 100.0  # MLD-class blowout
            assert speedups["mld"] == max(speedups.values())

    benchmark(gpu.simulate, get_spec("mld"))


def test_fig19a_latency_server(benchmark, profiles):
    ex24 = ExionAccelerator.exion24()
    gpu = GPUModel(SERVER_GPU)
    for batch in (1, 8):
        rows, speedups = latency_rows(
            ex24, gpu, BENCHMARK_ORDER, profiles, batch
        )
        emit(format_table(
            ["model", "server GPU", "EXION24_All", "speedup"],
            rows,
            title=(f"Fig. 19 (a) — latency vs server GPU, batch={batch} "
                   f"(paper 3.3-365.6x @ b1)"),
        ))
        assert all(s > 1.0 for s in speedups.values())
        # Large conv-free/conv-heavy split: SD & VC2 gain least.
        small = min(speedups["stable_diffusion"], speedups["videocrafter2"])
        assert small == min(speedups.values())

    benchmark(gpu.simulate, get_spec("dit"))
