"""Fig. 19 (a) — end-to-end latency versus edge and server GPUs.

Paper speedups for the All configuration: EXION4 43.7-1060.6x over the
edge GPU and EXION24 3.3-365.6x over the server GPU at batch one
(42.6-1090.9x and 3.2-379.3x at batch eight).
"""

from repro.baselines.gpu import GPUModel
from repro.baselines.specs import EDGE_GPU, SERVER_GPU
from repro.bench import BenchResult, register_bench
from repro.hw.accelerator import ExionAccelerator
from repro.workloads.specs import BENCHMARK_ORDER, get_spec

from .conftest import emit_result

EDGE_MODELS = ("mld", "mdm", "edge", "make_an_audio")


def latency_rows(accelerator, gpu_model, models, profiles, batch):
    rows = []
    speedups = {}
    for name in models:
        spec = get_spec(name)
        gpu = gpu_model.simulate(spec, batch=batch)
        report = accelerator.simulate(spec, profiles[name], batch=batch)
        speedup = gpu.latency_s / report.latency_s
        speedups[name] = speedup
        rows.append(
            [
                spec.display_name,
                f"{gpu.latency_s * 1e3:.1f} ms",
                f"{report.latency_s * 1e3:.3f} ms",
                f"{speedup:.1f}x",
            ]
        )
    return rows, speedups


def _build_panel(result, accelerator, gpu, gpu_label, acc_label, models,
                 profiles, title_fmt):
    for batch in (1, 8):
        rows, speedups = latency_rows(accelerator, gpu, models, profiles,
                                      batch)
        result.add_series(
            title_fmt.format(batch=batch),
            ["model", gpu_label, acc_label, "speedup"],
            rows,
        )
        for name, speedup in speedups.items():
            result.add_metric(
                f"b{batch}.{name}.speedup", speedup, unit="x",
                direction="higher_better", tolerance=0.15,
            )
    return result


@register_bench("fig19a_latency_edge", tags=("figure", "hw"))
def build_fig19a_edge(ctx):
    result = BenchResult("fig19a_latency_edge", model="edge-set")
    return _build_panel(
        result, ExionAccelerator.exion4(), GPUModel(EDGE_GPU),
        "edge GPU", "EXION4_All", EDGE_MODELS, ctx.profiles,
        ("Fig. 19 (a) — latency vs edge GPU, batch={batch} "
         "(paper 43.7-1060.6x @ b1)"),
    )


@register_bench("fig19a_latency_server", tags=("figure", "hw"))
def build_fig19a_server(ctx):
    result = BenchResult("fig19a_latency_server", model="all")
    return _build_panel(
        result, ExionAccelerator.exion24(), GPUModel(SERVER_GPU),
        "server GPU", "EXION24_All", BENCHMARK_ORDER, ctx.profiles,
        ("Fig. 19 (a) — latency vs server GPU, batch={batch} "
         "(paper 3.3-365.6x @ b1)"),
    )


def test_fig19a_latency_edge(benchmark, bench_ctx):
    result = build_fig19a_edge(bench_ctx)
    emit_result(result)
    for batch in (1, 8):
        speedups = {
            name: result.value(f"b{batch}.{name}.speedup")
            for name in EDGE_MODELS
        }
        assert all(s > 1.0 for s in speedups.values())
        if batch == 1:
            assert max(speedups.values()) > 100.0  # MLD-class blowout
            assert speedups["mld"] == max(speedups.values())

    benchmark(GPUModel(EDGE_GPU).simulate, get_spec("mld"))


def test_fig19a_latency_server(benchmark, bench_ctx):
    result = build_fig19a_server(bench_ctx)
    emit_result(result)
    for batch in (1, 8):
        speedups = {
            name: result.value(f"b{batch}.{name}.speedup")
            for name in BENCHMARK_ORDER
        }
        assert all(s > 1.0 for s in speedups.values())
        # Large conv-free/conv-heavy split: SD & VC2 gain least.
        small = min(speedups["stable_diffusion"], speedups["videocrafter2"])
        assert small == min(speedups.values())

    benchmark(GPUModel(SERVER_GPU).simulate, get_spec("dit"))
