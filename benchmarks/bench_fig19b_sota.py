"""Fig. 19 (b) — EXION42 versus Cambricon-D over an A100.

Paper: on Stable Diffusion (conv-heavy) Cambricon-D's differential
acceleration wins slightly (7.9x vs 7.0x); on DiT (transformer-only)
EXION's output-sparsity exploitation wins clearly (5.2x vs 3.3x).
"""

from repro.baselines.cambricon_d import CambriconDModel
from repro.baselines.gpu import GPUModel
from repro.baselines.specs import A100
from repro.bench import BenchResult, register_bench
from repro.hw.accelerator import ExionAccelerator
from repro.workloads.specs import get_spec

from .conftest import emit_result

PAPER = {
    "stable_diffusion": {"cambricon_d": 7.9, "exion42": 7.0},
    "dit": {"cambricon_d": 3.3, "exion42": 5.2},
}


@register_bench("fig19b_sota", tags=("figure", "hw", "baselines"))
def build_fig19b(ctx):
    gpu = GPUModel(A100)
    cd = CambriconDModel()
    ex42 = ExionAccelerator.exion42()

    result = BenchResult("fig19b_sota", model="stable_diffusion,dit")
    rows = []
    for name, paper in PAPER.items():
        spec = get_spec(name)
        gpu_latency = gpu.simulate(spec).latency_s
        cd_speedup = cd.simulate(spec).speedup_vs_gpu
        ex_speedup = gpu_latency / ex42.simulate(
            spec, ctx.profiles[name]
        ).latency_s
        result.add_metric(
            f"{name}.cambricon_d_speedup", cd_speedup, unit="x",
            paper=paper["cambricon_d"], direction="higher_better",
            tolerance=0.15,
        )
        result.add_metric(
            f"{name}.exion42_speedup", ex_speedup, unit="x",
            paper=paper["exion42"], direction="higher_better",
            tolerance=0.15,
        )
        rows.append(
            [
                spec.display_name,
                "1.0x",
                f"{cd_speedup:.1f}x (paper {paper['cambricon_d']}x)",
                f"{ex_speedup:.1f}x (paper {paper['exion42']}x)",
            ]
        )
    result.add_series(
        "Fig. 19 (b) — speedup over NVIDIA A100, batch=1",
        ["model", "A100", "Cambricon-D", "EXION42_All"],
        rows,
    )
    return result


def test_fig19b_sota_comparison(benchmark, bench_ctx):
    result = build_fig19b(bench_ctx)
    emit_result(result)

    # Shape: the crossover. Cambricon-D leads on SD, EXION leads on DiT.
    assert result.value("stable_diffusion.cambricon_d_speedup") > (
        result.value("stable_diffusion.exion42_speedup")
    )
    assert result.value("dit.exion42_speedup") > (
        result.value("dit.cambricon_d_speedup")
    )

    benchmark(CambriconDModel().simulate, get_spec("stable_diffusion"))
