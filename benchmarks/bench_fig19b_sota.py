"""Fig. 19 (b) — EXION42 versus Cambricon-D over an A100.

Paper: on Stable Diffusion (conv-heavy) Cambricon-D's differential
acceleration wins slightly (7.9x vs 7.0x); on DiT (transformer-only)
EXION's output-sparsity exploitation wins clearly (5.2x vs 3.3x).
"""

from repro.analysis.report import format_table
from repro.baselines.cambricon_d import CambriconDModel
from repro.baselines.gpu import GPUModel
from repro.baselines.specs import A100
from repro.hw.accelerator import ExionAccelerator
from repro.workloads.specs import get_spec

from .conftest import emit

PAPER = {
    "stable_diffusion": {"cambricon_d": 7.9, "exion42": 7.0},
    "dit": {"cambricon_d": 3.3, "exion42": 5.2},
}


def test_fig19b_sota_comparison(benchmark, profiles):
    gpu = GPUModel(A100)
    cd = CambriconDModel()
    ex42 = ExionAccelerator.exion42()

    rows = []
    speedups = {}
    for name, paper in PAPER.items():
        spec = get_spec(name)
        gpu_latency = gpu.simulate(spec).latency_s
        cd_speedup = cd.simulate(spec).speedup_vs_gpu
        ex_speedup = gpu_latency / ex42.simulate(spec, profiles[name]).latency_s
        speedups[name] = (cd_speedup, ex_speedup)
        rows.append(
            [
                spec.display_name,
                "1.0x",
                f"{cd_speedup:.1f}x (paper {paper['cambricon_d']}x)",
                f"{ex_speedup:.1f}x (paper {paper['exion42']}x)",
            ]
        )

    emit(format_table(
        ["model", "A100", "Cambricon-D", "EXION42_All"],
        rows,
        title="Fig. 19 (b) — speedup over NVIDIA A100, batch=1",
    ))

    # Shape: the crossover. Cambricon-D leads on SD, EXION leads on DiT.
    cd_sd, ex_sd = speedups["stable_diffusion"]
    cd_dit, ex_dit = speedups["dit"]
    assert cd_sd > ex_sd
    assert ex_dit > cd_dit

    benchmark(cd.simulate, get_spec("stable_diffusion"))
