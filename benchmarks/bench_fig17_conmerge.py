"""Fig. 17 — ConMerge efficiency across all seven models.

For the 1st FFN layer and the attention score of every model, reports the
remaining-column percentage after condensing and after merging. Paper
averages: FFN 60.3% (condense) -> 16.2% (merge); attention 80.0% -> 50.0%.
"""

import numpy as np

from repro.analysis.report import percent
from repro.bench import BenchResult, register_bench
from repro.hw.profile import estimate_profile
from repro.workloads.specs import BENCHMARK_ORDER, get_spec

from .conftest import emit_result

PAPER_AVG = {"ffn_condense": 0.603, "ffn_remaining": 0.162,
             "attn_condense": 0.800, "attn_remaining": 0.500}


@register_bench("fig17_conmerge", tags=("figure", "conmerge"))
def build_fig17(ctx):
    profiles = ctx.profiles
    result = BenchResult("fig17_conmerge", model="all")
    rows = []
    for name in BENCHMARK_ORDER:
        spec = get_spec(name)
        p = profiles[name]
        rows.append(
            [
                spec.display_name,
                percent(p.ffn_condense_ratio),
                percent(p.ffn_remaining_ratio),
                percent(p.attn_condense_ratio),
                percent(p.attn_remaining_ratio),
            ]
        )
        for field in ("ffn_condense_ratio", "ffn_remaining_ratio",
                      "attn_condense_ratio", "attn_remaining_ratio"):
            result.add_metric(
                f"{name}.{field}", getattr(p, field),
                direction="lower_better", tolerance=0.15,
            )
    averages = {
        "ffn_condense": np.mean(
            [profiles[n].ffn_condense_ratio for n in BENCHMARK_ORDER]),
        "ffn_remaining": np.mean(
            [profiles[n].ffn_remaining_ratio for n in BENCHMARK_ORDER]),
        "attn_condense": np.mean(
            [profiles[n].attn_condense_ratio for n in BENCHMARK_ORDER]),
        "attn_remaining": np.mean(
            [profiles[n].attn_remaining_ratio for n in BENCHMARK_ORDER]),
    }
    rows.append(
        ["AVERAGE", percent(averages["ffn_condense"]),
         percent(averages["ffn_remaining"]),
         percent(averages["attn_condense"]),
         percent(averages["attn_remaining"])]
    )
    rows.append(["paper avg", "60.3%", "16.2%", "80.0%", "50.0%"])
    result.add_series(
        "Fig. 17 — remaining columns after condensing / merging",
        ["model", "FFN condense", "FFN +merge", "attn condense",
         "attn +merge"],
        rows,
    )
    for key, value in averages.items():
        result.add_metric(
            f"avg.{key}", float(value), paper=PAPER_AVG[key],
            direction="lower_better", tolerance=0.15,
        )
    return result


def test_fig17_conmerge_efficiency(benchmark, bench_ctx):
    result = build_fig17(bench_ctx)
    emit_result(result)

    # Shape: merging always improves on condensing; FFN compacts further
    # than attention (paper's averages 16.2% vs 50.0%).
    for name in BENCHMARK_ORDER:
        assert result.value(f"{name}.ffn_remaining_ratio") <= (
            result.value(f"{name}.ffn_condense_ratio") + 1e-9
        )
        assert result.value(f"{name}.attn_remaining_ratio") <= (
            result.value(f"{name}.attn_condense_ratio") + 1e-9
        )
    assert result.value("avg.ffn_remaining") < result.value("avg.attn_remaining")

    benchmark(estimate_profile, get_spec("dit"), 1)
