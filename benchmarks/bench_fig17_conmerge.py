"""Fig. 17 — ConMerge efficiency across all seven models.

For the 1st FFN layer and the attention score of every model, reports the
remaining-column percentage after condensing and after merging. Paper
averages: FFN 60.3% (condense) -> 16.2% (merge); attention 80.0% -> 50.0%.
"""

import numpy as np

from repro.analysis.report import format_table, percent
from repro.workloads.specs import BENCHMARK_ORDER, get_spec

from .conftest import emit


def test_fig17_conmerge_efficiency(benchmark, profiles):
    rows = []
    for name in BENCHMARK_ORDER:
        spec = get_spec(name)
        p = profiles[name]
        rows.append(
            [
                spec.display_name,
                percent(p.ffn_condense_ratio),
                percent(p.ffn_remaining_ratio),
                percent(p.attn_condense_ratio),
                percent(p.attn_remaining_ratio),
            ]
        )
    ffn_cond = np.mean([profiles[n].ffn_condense_ratio for n in BENCHMARK_ORDER])
    ffn_rem = np.mean([profiles[n].ffn_remaining_ratio for n in BENCHMARK_ORDER])
    attn_cond = np.mean([profiles[n].attn_condense_ratio for n in BENCHMARK_ORDER])
    attn_rem = np.mean([profiles[n].attn_remaining_ratio for n in BENCHMARK_ORDER])
    rows.append(
        ["AVERAGE", percent(ffn_cond), percent(ffn_rem),
         percent(attn_cond), percent(attn_rem)]
    )
    rows.append(["paper avg", "60.3%", "16.2%", "80.0%", "50.0%"])

    table = format_table(
        ["model", "FFN condense", "FFN +merge", "attn condense",
         "attn +merge"],
        rows,
        title="Fig. 17 — remaining columns after condensing / merging",
    )
    emit(table)

    # Shape: merging always improves on condensing; FFN compacts further
    # than attention (paper's averages 16.2% vs 50.0%).
    for name in BENCHMARK_ORDER:
        p = profiles[name]
        assert p.ffn_remaining_ratio <= p.ffn_condense_ratio + 1e-9
        assert p.attn_remaining_ratio <= p.attn_condense_ratio + 1e-9
    assert ffn_rem < attn_rem

    from repro.hw.profile import estimate_profile

    benchmark(estimate_profile, get_spec("dit"), 1)
