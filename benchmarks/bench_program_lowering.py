"""Lowering-pipeline gate: byte-stable plans, accelerator-vs-IR parity.

Two contracts of :mod:`repro.program`, locked into the perf baseline:

- **byte stability** — the canonical JSON of every model's lowered
  :class:`~repro.program.ir.PhasePlan` must not change silently. The
  plan's byte length and its SHA-256 digest (first 48 bits, an exact
  float) are gated with zero tolerance; any structural change to the
  lowering shows up as a digest drift that must be re-baselined
  deliberately.
- **single-lowering parity** — pricing a spec through the spec-level
  wrapper (:meth:`~repro.hw.accelerator.ExionAccelerator.simulate`) and
  through an explicitly lowered plan
  (:meth:`~repro.hw.accelerator.ExionAccelerator.simulate_plan`) must
  agree *exactly*: same latency, same dense-equivalent ops. Tolerance is
  0 — there is only one lowering, so there is nothing to drift.

The gate covers the Table I models and the extended lowering-pipeline
scenarios (video DiT with temporal attention, SDXL-class UNet).
"""

from repro.bench import BenchResult, register_bench
from repro.hw.accelerator import ExionAccelerator
from repro.hw.profile import estimate_profile
from repro.program import lower_plan, plan_digest, plan_json
from repro.workloads.specs import ALL_MODEL_ORDER, get_spec

from .conftest import emit_result


def _profile_for(ctx, name):
    if name in ctx.profiles:
        return ctx.profiles[name]
    return estimate_profile(get_spec(name), seed=0)


@register_bench("program_lowering", tags=("program", "smoke"))
def build_program_lowering(ctx):
    result = BenchResult("program_lowering", model="all")
    acc = ExionAccelerator.exion24()
    rows = []
    for name in ALL_MODEL_ORDER:
        spec = get_spec(name)
        profile = _profile_for(ctx, name)
        plan = lower_plan(spec)
        blob = plan_json(plan)
        digest = plan_digest(plan)

        spec_report = acc.simulate(spec, profile)
        plan_report = acc.simulate_plan(plan, profile)
        latency_parity = abs(
            plan_report.latency_s - spec_report.latency_s
        ) / spec_report.latency_s
        macs_parity = abs(
            plan_report.dense_equivalent_ops
            - 2 * plan.dense_equivalent_macs
        ) / (2 * plan.dense_equivalent_macs)

        result.add_metric(f"{name}.plan_bytes", len(blob),
                          unit="B", tolerance=0.0)
        # First 48 bits of the digest: exactly representable as a float,
        # so the whole canonical encoding is pinned bit-for-bit.
        result.add_metric(f"{name}.plan_digest48", int(digest[:12], 16),
                          tolerance=0.0)
        result.add_metric(f"{name}.latency_parity_rel", latency_parity,
                          direction="lower_better", tolerance=0.0)
        result.add_metric(f"{name}.macs_parity_rel", macs_parity,
                          direction="lower_better", tolerance=0.0)
        rows.append([
            name,
            len(plan.program.ops),
            f"{plan.program.total_macs:.3e}",
            f"{plan.program.weight_bytes / 1e6:.1f} MB",
            f"{plan.iterations} ({plan.dense_iterations}d)",
            digest[:12],
        ])
    result.add_series(
        "Lowering pipeline — spec -> IterationProgram -> PhasePlan",
        ["model", "ops", "MACs/iter", "weights/iter", "iters (dense)",
         "plan digest"],
        rows,
    )
    return result


def test_program_lowering(benchmark, bench_ctx):
    result = build_program_lowering(bench_ctx)
    emit_result(result)
    for name in ALL_MODEL_ORDER:
        assert result.value(f"{name}.latency_parity_rel") == 0.0
        assert result.value(f"{name}.macs_parity_rel") == 0.0
        assert result.value(f"{name}.plan_bytes") > 0

    benchmark(lambda: plan_json(lower_plan(get_spec("dit"))))
