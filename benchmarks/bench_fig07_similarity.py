"""Fig. 7 — inter-iteration cosine similarity and adjacent differences.

Reproduces the DiT study: (a) the cosine-similarity heatmap of the second
block's GELU output across iterations, and (b) the observation that
adjacent-iteration differences are heavy-tailed with recurring positions.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.similarity import (
    adjacent_differences,
    cosine_similarity_matrix,
    difference_position_overlap,
    gelu_outputs_by_iteration,
)
from repro.models.zoo import build_model

from .conftest import emit


def collect(iterations=24):
    model = build_model("dit", seed=0, total_iterations=iterations)
    return gelu_outputs_by_iteration(model, block=1, seed=3, class_label=2)


def test_fig07_cosine_similarity(benchmark):
    outputs = collect()
    matrix = benchmark(cosine_similarity_matrix, outputs)

    # Coarse heatmap summary: mean similarity by iteration distance.
    n = len(outputs)
    by_distance = []
    for d in (1, 2, 4, 8, n - 1):
        vals = np.diag(matrix, k=d)
        by_distance.append([f"|i-j| = {d}", f"{vals.mean():.3f}"])
    table = format_table(
        ["iteration distance", "mean cosine similarity"],
        by_distance,
        title="Fig. 7 (a) — GELU-output similarity across DiT iterations",
    )
    emit(table)

    diffs = adjacent_differences(outputs)
    stacked = np.concatenate([d.ravel() for d in diffs])
    overlap = difference_position_overlap(outputs, quantile=0.9)
    table_b = format_table(
        ["statistic", "value"],
        [
            ["mean |delta|", f"{stacked.mean():.4f}"],
            ["p99 |delta|", f"{np.quantile(stacked, 0.99):.4f}"],
            ["p99 / mean (heavy tail)", f"{np.quantile(stacked, 0.99) / stacked.mean():.1f}x"],
            ["top-10% position recurrence (Jaccard)", f"{overlap:.3f}"],
        ],
        title="Fig. 7 (b) — adjacent-iteration difference structure",
    )
    emit(table_b)

    adjacent = np.diag(matrix, k=1)
    assert adjacent.mean() > 0.75  # high temporal redundancy
    assert np.quantile(stacked, 0.99) > 3 * stacked.mean()  # spiky diffs
    assert overlap > 0.1  # recurring positions
