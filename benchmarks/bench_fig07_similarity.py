"""Fig. 7 — inter-iteration cosine similarity and adjacent differences.

Reproduces the DiT study: (a) the cosine-similarity heatmap of the second
block's GELU output across iterations, and (b) the observation that
adjacent-iteration differences are heavy-tailed with recurring positions.
"""

from functools import lru_cache

import numpy as np

from repro.analysis.similarity import (
    adjacent_differences,
    cosine_similarity_matrix,
    difference_position_overlap,
    gelu_outputs_by_iteration,
)
from repro.bench import BenchResult, register_bench
from repro.models.zoo import build_model

from .conftest import emit_result


@lru_cache(maxsize=1)
def collect(iterations=24):
    model = build_model("dit", seed=0, total_iterations=iterations)
    return gelu_outputs_by_iteration(model, block=1, seed=3, class_label=2)


@register_bench("fig07_similarity", tags=("figure", "analysis"))
def build_fig07(ctx):
    outputs = collect()
    matrix = cosine_similarity_matrix(outputs)

    result = BenchResult("fig07_similarity", model="dit")

    # Coarse heatmap summary: mean similarity by iteration distance.
    n = len(outputs)
    by_distance = []
    for d in (1, 2, 4, 8, n - 1):
        vals = np.diag(matrix, k=d)
        by_distance.append([f"|i-j| = {d}", f"{vals.mean():.3f}"])
    result.add_series(
        "Fig. 7 (a) — GELU-output similarity across DiT iterations",
        ["iteration distance", "mean cosine similarity"],
        by_distance,
    )

    diffs = adjacent_differences(outputs)
    stacked = np.concatenate([d.ravel() for d in diffs])
    overlap = difference_position_overlap(outputs, quantile=0.9)
    p99 = np.quantile(stacked, 0.99)
    result.add_series(
        "Fig. 7 (b) — adjacent-iteration difference structure",
        ["statistic", "value"],
        [
            ["mean |delta|", f"{stacked.mean():.4f}"],
            ["p99 |delta|", f"{p99:.4f}"],
            ["p99 / mean (heavy tail)", f"{p99 / stacked.mean():.1f}x"],
            ["top-10% position recurrence (Jaccard)", f"{overlap:.3f}"],
        ],
    )

    result.add_metric(
        "adjacent_mean_cosine", float(np.diag(matrix, k=1).mean()),
        direction="higher_better", tolerance=0.05,
    )
    result.add_metric(
        "p99_over_mean_delta", float(p99 / stacked.mean()),
        direction="higher_better", tolerance=0.20,
    )
    result.add_metric(
        "position_overlap_jaccard", float(overlap),
        direction="higher_better", tolerance=0.20,
    )
    return result


def test_fig07_cosine_similarity(benchmark, bench_ctx):
    result = build_fig07(bench_ctx)
    emit_result(result)

    assert result.value("adjacent_mean_cosine") > 0.75  # temporal redundancy
    assert result.value("p99_over_mean_delta") > 3.0  # spiky diffs
    assert result.value("position_overlap_jaccard") > 0.1  # recurring positions

    benchmark(cosine_similarity_matrix, collect())
