"""Fig. 15 — two-step leading-one detection fixes EP's accuracy on DiT.

The paper: EP with plain LOD drops DiT PSNR to 11.8; TS-LOD recovers to
15.6, close to the FFN-Reuse-only 16.0. The reproduction checks the same
ordering (LOD < TS-LOD <= FFN-Reuse-only) and reports the element-level
approximation error of both detectors.
"""

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.core.config import ExionConfig
from repro.core.logdomain import lod_approximate, ts_lod_approximate
from repro.core.pipeline import ExionPipeline
from repro.models.zoo import build_model
from repro.workloads.metrics import psnr

from .conftest import emit

PAPER_PSNR = {"lod": 11.8, "ts_lod": 15.6, "ffnr_only": 16.0}


def run_psnr(model, vanilla, mode=None, ep=True):
    cfg = ExionConfig.for_model(
        "dit", enable_eager_prediction=ep, lod_mode=mode or "ts_lod"
    )
    out = ExionPipeline(model, cfg).generate(seed=1, class_label=5)
    return psnr(vanilla.sample, out.sample)


def test_fig15_ts_lod(benchmark):
    model = build_model("dit", seed=0, total_iterations=30)
    vanilla = ExionPipeline(
        model, ExionConfig.for_model("dit")
    ).generate_vanilla(seed=1, class_label=5)

    results = {
        "lod": run_psnr(model, vanilla, "lod"),
        "ts_lod": run_psnr(model, vanilla, "ts_lod"),
        "ffnr_only": run_psnr(model, vanilla, ep=False),
    }

    # Element-level approximation error of the two detectors.
    rng = np.random.default_rng(0)
    ints = rng.integers(-2047, 2048, size=100_000)
    lod_err = np.abs(lod_approximate(ints) - ints).mean()
    ts_err = np.abs(ts_lod_approximate(ints) - ints).mean()

    table = format_table(
        ["method", "PSNR vs vanilla (dB)", "paper"],
        [
            ["EP w/ LOD", f"{results['lod']:.2f}", f"{PAPER_PSNR['lod']}"],
            ["EP w/ TS-LOD", f"{results['ts_lod']:.2f}",
             f"{PAPER_PSNR['ts_lod']}"],
            ["FFN-Reuse only", f"{results['ffnr_only']:.2f}",
             f"{PAPER_PSNR['ffnr_only']}"],
        ],
        title="Fig. 15 — DiT generation quality by prediction method",
    )
    emit(table)
    emit(
        f"mean |approximation error| per INT12 operand: "
        f"LOD {lod_err:.1f}, TS-LOD {ts_err:.1f} "
        f"({lod_err / ts_err:.1f}x better)"
    )

    # Shape: the paper's ordering.
    assert results["lod"] < results["ts_lod"]
    assert results["ts_lod"] <= results["ffnr_only"] + 0.5
    assert ts_err < lod_err / 2

    benchmark(ts_lod_approximate, ints)
