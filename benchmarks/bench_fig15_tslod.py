"""Fig. 15 — two-step leading-one detection fixes EP's accuracy on DiT.

The paper: EP with plain LOD drops DiT PSNR to 11.8; TS-LOD recovers to
15.6, close to the FFN-Reuse-only 16.0. The reproduction checks the same
ordering (LOD < TS-LOD <= FFN-Reuse-only) and reports the element-level
approximation error of both detectors.
"""

import numpy as np

from repro.bench import BenchResult, register_bench
from repro.core.config import ExionConfig
from repro.core.logdomain import lod_approximate, ts_lod_approximate
from repro.core.pipeline import ExionPipeline
from repro.models.zoo import build_model
from repro.workloads.metrics import psnr

from .conftest import emit_result

PAPER_PSNR = {"lod": 11.8, "ts_lod": 15.6, "ffnr_only": 16.0}


def run_psnr(model, vanilla, mode=None, ep=True):
    cfg = ExionConfig.for_model(
        "dit", enable_eager_prediction=ep, lod_mode=mode or "ts_lod"
    )
    out = ExionPipeline(model, cfg).generate(seed=1, class_label=5)
    return psnr(vanilla.sample, out.sample)


def _operand_sample():
    rng = np.random.default_rng(0)
    return rng.integers(-2047, 2048, size=100_000)


@register_bench("fig15_tslod", tags=("figure", "core"))
def build_fig15(ctx):
    model = build_model("dit", seed=0, total_iterations=30)
    vanilla = ExionPipeline(
        model, ExionConfig.for_model("dit")
    ).generate_vanilla(seed=1, class_label=5)

    psnrs = {
        "lod": run_psnr(model, vanilla, "lod"),
        "ts_lod": run_psnr(model, vanilla, "ts_lod"),
        "ffnr_only": run_psnr(model, vanilla, ep=False),
    }

    # Element-level approximation error of the two detectors.
    ints = _operand_sample()
    lod_err = np.abs(lod_approximate(ints) - ints).mean()
    ts_err = np.abs(ts_lod_approximate(ints) - ints).mean()

    result = BenchResult("fig15_tslod", model="dit")
    result.add_series(
        "Fig. 15 — DiT generation quality by prediction method",
        ["method", "PSNR vs vanilla (dB)", "paper"],
        [
            ["EP w/ LOD", f"{psnrs['lod']:.2f}", f"{PAPER_PSNR['lod']}"],
            ["EP w/ TS-LOD", f"{psnrs['ts_lod']:.2f}",
             f"{PAPER_PSNR['ts_lod']}"],
            ["FFN-Reuse only", f"{psnrs['ffnr_only']:.2f}",
             f"{PAPER_PSNR['ffnr_only']}"],
        ],
    )
    result.add_note(
        f"mean |approximation error| per INT12 operand: "
        f"LOD {lod_err:.1f}, TS-LOD {ts_err:.1f} "
        f"({lod_err / ts_err:.1f}x better)"
    )
    for method, value in psnrs.items():
        result.add_metric(
            f"{method}.psnr_db", value, unit="dB", paper=PAPER_PSNR[method],
            direction="higher_better", tolerance=0.15,
        )
    result.add_metric("lod_abs_error", float(lod_err),
                      direction="lower_better", tolerance=0.10)
    result.add_metric("ts_lod_abs_error", float(ts_err),
                      direction="lower_better", tolerance=0.10)
    return result


def test_fig15_ts_lod(benchmark, bench_ctx):
    result = build_fig15(bench_ctx)
    emit_result(result)

    # Shape: the paper's ordering.
    assert result.value("lod.psnr_db") < result.value("ts_lod.psnr_db")
    assert result.value("ts_lod.psnr_db") <= (
        result.value("ffnr_only.psnr_db") + 0.5
    )
    assert result.value("ts_lod_abs_error") < result.value("lod_abs_error") / 2

    benchmark(ts_lod_approximate, _operand_sample())
