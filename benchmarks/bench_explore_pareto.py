"""Design-space exploration smoke: Table II classes under the engine.

The exploration claim of ``repro.explore``: a small grid over hardware
knobs (DSC count, memory bandwidth, GSC capacity — generalizing the
Table II factories) crossed with algorithm ablations (FFN-Reuse on/off,
eager-prediction top-k) reproduces, through the engine, the paper's
deployment-point ordering:

- **dominance** — at every algorithm configuration, the EXION24-class
  hardware point (24 DSCs, 819 GB/s, 64 MB GSC) beats the EXION4-class
  point (4 DSCs, 51 GB/s, Table II per-DSC GSC provisioning) on latency
  at *equal* accuracy (the accuracy objective depends only on algorithm
  knobs, so matched algo configs score identically on every hardware
  variant);
- **determinism** — two same-seed engine runs emit byte-identical
  :class:`~repro.explore.report.ExploreReport` JSON.

Run with::

    pytest benchmarks/bench_explore_pareto.py --import-mode=importlib -s
"""

from repro.bench import register_bench
from repro.explore import (
    ExploreRunner,
    GridSearch,
    PointEvaluator,
    default_space,
    point_id,
)

from .conftest import emit_result

SEED = 0
ITERATIONS = 10
MODEL = "dit"

#: EXION4-class vs EXION24-class hardware corners (dram technology held
#: at GDDR6 so per-bit energy is comparable; bandwidth/GSC carry the
#: Table II numbers).
HW_GRID = {
    "num_dscs": (4, 24),
    "bandwidth_gbps": (51.0, 819.0),
    "gsc_mb": (64.0 / 24.0 * 4.0, 64.0),
}
ALGO_GRID = {
    "enable_ffn_reuse": (True, False),
    "top_k_ratio": (0.4, 0.8),
}

EXION4_CLASS = {
    "num_dscs": 4, "bandwidth_gbps": 51.0, "gsc_mb": 64.0 / 24.0 * 4.0,
}
EXION24_CLASS = {
    "num_dscs": 24, "bandwidth_gbps": 819.0, "gsc_mb": 64.0,
}


def _space():
    space = default_space(MODEL)
    space = space.restrict("dram", ("gddr6",))
    for name, values in {**HW_GRID, **ALGO_GRID}.items():
        space = space.restrict(name, values)
    # Pin the remaining ablation knobs to DiT's Table I values so the
    # grid stays a smoke-sized 8 hw x 4 algo cross product.
    from repro.core.config import ExionConfig

    config = ExionConfig.for_model(MODEL)
    space = space.restrict("sparse_iters_n", (config.sparse_iters_n,))
    space = space.restrict("ffn_target_sparsity",
                           (config.ffn_target_sparsity,))
    space = space.restrict("q_threshold", (config.q_threshold,))
    space = space.restrict("prediction_bits", (config.prediction_bits,))
    return space


def _runner():
    return ExploreRunner(
        _space(),
        GridSearch(),
        PointEvaluator(iterations=ITERATIONS, base_seed=SEED),
        seed=SEED,
    )


def _point_for(algo: dict, hardware: dict) -> dict:
    from repro.core.config import ExionConfig

    config = ExionConfig.for_model(MODEL)
    return {
        "model": MODEL,
        "dram": "gddr6",
        "sparse_iters_n": config.sparse_iters_n,
        "ffn_target_sparsity": config.ffn_target_sparsity,
        "q_threshold": config.q_threshold,
        "prediction_bits": config.prediction_bits,
        **algo,
        **hardware,
    }


def _algo_combos():
    return [
        {"enable_ffn_reuse": ffnr, "top_k_ratio": top_k}
        for ffnr in ALGO_GRID["enable_ffn_reuse"]
        for top_k in ALGO_GRID["top_k_ratio"]
    ]


@register_bench("explore_pareto", tags=("explore", "smoke"))
def build_explore_pareto(ctx):
    runner = _runner()
    report = runner.run()
    rerun_json = _runner().run().to_json()
    deterministic = rerun_json == report.to_json()

    by_id = {e["id"]: e for e in report.evaluations}
    speedups = []
    accuracy_invariant = True
    rows = []
    for algo in _algo_combos():
        edge = by_id[point_id(_point_for(algo, EXION4_CLASS))]
        server = by_id[point_id(_point_for(algo, EXION24_CLASS))]
        speedups.append(
            edge["objectives"]["latency_s"] / server["objectives"]["latency_s"]
        )
        accuracy_invariant &= (
            edge["objectives"]["accuracy_psnr_db"]
            == server["objectives"]["accuracy_psnr_db"]
        )
        rows.append([
            "on" if algo["enable_ffn_reuse"] else "off",
            algo["top_k_ratio"],
            f"{edge['objectives']['latency_s'] * 1e3:.2f}",
            f"{server['objectives']['latency_s'] * 1e3:.2f}",
            f"{speedups[-1]:.2f}x",
            f"{server['objectives']['accuracy_psnr_db']:.2f} dB",
        ])

    result = report.to_bench_result(
        "explore_pareto", tags=("explore", "smoke")
    )
    result.model = MODEL
    result.add_series(
        "EXION4-class vs EXION24-class at matched algorithm configs",
        ["FFN-Reuse", "top-k", "EXION4-class ms", "EXION24-class ms",
         "speedup", "accuracy (both)"],
        rows,
    )
    result.add_metric(
        "exion24_speedup_min", min(speedups), unit="x",
        direction="higher_better", tolerance=0.10,
    )
    result.add_metric(
        "accuracy_hw_invariant", 1.0 if accuracy_invariant else 0.0,
        direction="higher_better", tolerance=0.0,
    )
    result.add_metric(
        "deterministic_report", 1.0 if deterministic else 0.0,
        direction="higher_better", tolerance=0.0,
    )
    result.add_note(
        "Grid: 8 hardware corners x 4 algorithm configs through "
        "repro.explore (GridSearch + PointEvaluator, "
        f"iterations={ITERATIONS}); accuracy depends only on algorithm "
        "knobs, so the dominance comparison is at exactly equal accuracy."
    )
    return result


def test_explore_pareto(bench_ctx):
    result = build_explore_pareto(bench_ctx)
    emit_result(result)

    # The acceptance bar: server-class hardware dominates edge-class on
    # latency at equal accuracy, for every algorithm configuration.
    speedup = result.value("exion24_speedup_min")
    assert speedup > 1.0, (
        f"an EXION4-class point matched EXION24-class (min speedup "
        f"{speedup:.2f}x)"
    )
    assert result.value("accuracy_hw_invariant") == 1.0
    assert result.value("deterministic_report") == 1.0
    assert result.value("frontier_size") >= 1.0
