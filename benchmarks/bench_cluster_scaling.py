"""Fleet scaling: replica count x routing policy under open-loop load.

The cluster claim of ``repro.cluster``: sharding saturating Poisson
traffic across N simulated EXION24 replicas multiplies aggregate
throughput (measured in *simulated* seconds, from the hw latency model)
close to linearly, and the whole run is a pure function of the seed:

- **scaling** — with join-shortest-queue routing, 4 replicas reach at
  least 3x the aggregate samples/sec of 1 replica on the same trace;
- **determinism** — two same-seed runs of the same scenario produce
  byte-identical :class:`~repro.cluster.report.ClusterReport` JSON.

Every metric is simulated-time accounting — no wall clock — so the
determinism metric is exact (tolerance 0.0). The rate/latency metrics
carry a 10% tolerance instead: their absolute values flow from seeded
``numpy.random.Generator`` draws (arrival gaps, sparsity profiles), and
NumPy's stream-compatibility policy allows drift across feature
releases; the tolerance absorbs that without letting real behavior
changes through.

Run with::

    pytest benchmarks/bench_cluster_scaling.py --import-mode=importlib -s
"""

from repro.bench import BenchResult, register_bench
from repro.cluster import (
    PoissonProcess,
    ServiceTimeModel,
    SLOPolicy,
    build_replicas,
    make_router,
    simulate_cluster,
    synthesize_trace,
)
from repro.serve import BatchingPolicy

from .conftest import emit_result

REQUESTS = 192
RATE_RPS = 400.0  # saturates even the 4-replica fleet
SEED = 0
REPLICA_COUNTS = (1, 2, 4)
ROUTER_NAMES = ("round_robin", "jsq", "cache_affinity")
POLICY = BatchingPolicy(max_batch_size=8, max_wait_s=0.0)


def _run_cell(trace, service_model, replicas, router_name, slo=None):
    fleet = build_replicas(
        replicas, policy=POLICY, service_model=service_model
    )
    return simulate_cluster(
        trace,
        replicas=fleet,
        router=make_router(router_name),
        slo=slo,
        scenario={"seed": SEED},
    )


@register_bench("cluster_scaling", tags=("cluster", "serve", "smoke"))
def build_cluster_scaling(ctx):
    service_model = ServiceTimeModel("exion24")
    trace = synthesize_trace(PoissonProcess(RATE_RPS), REQUESTS, rng=SEED)

    reports = {}
    rows = []
    for router_name in ROUTER_NAMES:
        for replicas in REPLICA_COUNTS:
            report = _run_cell(trace, service_model, replicas, router_name)
            reports[(router_name, replicas)] = report
            lat = report.latency
            rows.append([
                router_name,
                replicas,
                f"{report.samples_per_s:.2f}",
                f"{lat['latency_p50_s'] * 1e3:.1f}",
                f"{lat['latency_p99_s'] * 1e3:.1f}",
                f"{report.mean_utilization * 100:.1f}%",
            ])

    # Determinism: an independent same-seed rerun of the headline cell.
    rerun = _run_cell(
        synthesize_trace(PoissonProcess(RATE_RPS), REQUESTS, rng=SEED),
        ServiceTimeModel("exion24"),
        4,
        "jsq",
    )
    deterministic = rerun.to_json() == reports[("jsq", 4)].to_json()

    # SLO accounting under overload: admission control plus timeouts on
    # a deliberately under-provisioned fleet.
    slo = SLOPolicy(latency_target_s=1.0, timeout_s=2.0, max_queue_depth=24)
    slo_report = _run_cell(trace, service_model, 2, "jsq", slo=slo)

    scaling = {
        n: reports[("jsq", n)].samples_per_s
        / reports[("jsq", 1)].samples_per_s
        for n in REPLICA_COUNTS
    }

    result = BenchResult("cluster_scaling", model="dit")
    result.add_series(
        f"Fleet scaling ({REQUESTS} Poisson arrivals @ {RATE_RPS:.0f} rps, "
        "EXION24 replicas)",
        ["router", "replicas", "samples/s (sim)", "p50 ms", "p99 ms",
         "mean util"],
        rows,
    )
    result.add_series(
        "SLO cell (2 replicas, target 1s, timeout 2s, depth 24)",
        ["served", "admission drops", "timeout drops", "attainment"],
        [[slo_report.served, slo_report.admission_drops,
          slo_report.timeout_drops,
          f"{(slo_report.slo_attainment or 0.0) * 100:.1f}%"]],
    )
    for n in REPLICA_COUNTS:
        result.add_metric(
            f"samples_per_s_jsq_{n}r",
            reports[("jsq", n)].samples_per_s,
            unit="samples/s", direction="higher_better", tolerance=0.10,
        )
    result.add_metric("scaling_jsq_4r", scaling[4], unit="x",
                      direction="higher_better", tolerance=0.10)
    result.add_metric(
        "latency_p99_jsq_4r_s",
        reports[("jsq", 4)].latency["latency_p99_s"],
        unit="s", direction="lower_better", tolerance=0.10,
    )
    result.add_metric("deterministic_report",
                      1.0 if deterministic else 0.0,
                      direction="higher_better", tolerance=0.0)
    # Attainment under deep overload is quantized in whole requests (a
    # one-request shift is a ~50% relative change), so it lives in the
    # SLO series above for eyeballs only; the gate watches the much
    # smoother drop rate instead.
    result.add_metric(
        "slo_drop_rate_overload", slo_report.drop_rate,
        direction="lower_better", tolerance=0.10,
    )
    result.add_note(
        "All numbers are simulated time from the EXION24 latency model; "
        "same-seed runs on one NumPy version are byte-identical "
        "(deterministic_report gates this exactly), while rate/latency "
        "metrics tolerate 10% for cross-version RNG stream drift."
    )
    return result


def test_cluster_scaling(bench_ctx):
    result = build_cluster_scaling(bench_ctx)
    emit_result(result)

    # The acceptance bar of the fleet layer: >= 3x aggregate throughput
    # at 4 replicas under Poisson + join-shortest-queue.
    scaling = result.value("scaling_jsq_4r")
    assert scaling >= 3.0, (
        f"4-replica JSQ fleet reached only {scaling:.2f}x one replica"
    )
    assert result.value("deterministic_report") == 1.0
    # Overload cell actually exercises both drop paths.
    assert result.value("slo_drop_rate_overload") > 0.0
