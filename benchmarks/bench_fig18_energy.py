"""Fig. 18 — energy-efficiency comparison versus edge and server GPUs.

Reproduces both panels with the full ablation ladder (Base / EP / FFNR /
All) at batch sizes one and eight:

- (a) EXION4 versus the Jetson Orin Nano on the edge-deployable models
  (paper gains: 196.9-4668.2x for the All configuration, batch 1);
- (b) EXION24 versus the RTX 6000 Ada on all seven models
  (paper gains: 45.1-3067.6x).
"""

from repro.analysis.report import format_table
from repro.baselines.gpu import GPUModel
from repro.baselines.specs import EDGE_GPU, SERVER_GPU
from repro.hw.accelerator import ExionAccelerator
from repro.workloads.specs import BENCHMARK_ORDER, get_spec

from .conftest import emit

EDGE_MODELS = ("mld", "mdm", "edge", "make_an_audio")
ABLATIONS = (
    ("Base", False, False),
    ("EP", False, True),
    ("FFNR", True, False),
    ("All", True, True),
)


def efficiency_rows(accelerator, gpu_model, models, profiles, batch):
    rows = []
    gains_all = {}
    for name in models:
        spec = get_spec(name)
        gpu = gpu_model.simulate(spec, batch=batch)
        cells = [spec.display_name]
        for label, ffnr, ep in ABLATIONS:
            report = accelerator.simulate(
                spec, profiles[name], enable_ffn_reuse=ffnr,
                enable_eager_prediction=ep, batch=batch,
            )
            gain = report.tops_per_watt / gpu.tops_per_watt
            cells.append(f"{gain:.0f}x")
            if label == "All":
                gains_all[name] = gain
        cells.append(f"{gpu.tops_per_watt:.4f}")
        rows.append(cells)
    return rows, gains_all


HEADERS = ["model", "Base", "EP", "FFNR", "All", "GPU TOPS/W"]


def test_fig18a_edge(benchmark, profiles):
    ex4 = ExionAccelerator.exion4()
    gpu = GPUModel(EDGE_GPU)
    for batch in (1, 8):
        rows, gains = efficiency_rows(ex4, gpu, EDGE_MODELS, profiles, batch)
        emit(format_table(
            HEADERS, rows,
            title=(f"Fig. 18 (a) — energy-efficiency gain vs edge GPU, "
                   f"batch={batch} (paper All-range 196.9-4668.2x @ b1)"),
        ))
        for name, gain in gains.items():
            assert gain > 5.0, (name, batch, gain)

    benchmark(
        ex4.simulate, get_spec("mld"), profiles["mld"],
    )


def test_fig18b_server(benchmark, profiles):
    ex24 = ExionAccelerator.exion24()
    gpu = GPUModel(SERVER_GPU)
    for batch in (1, 8):
        rows, gains = efficiency_rows(
            ex24, gpu, BENCHMARK_ORDER, profiles, batch
        )
        emit(format_table(
            HEADERS, rows,
            title=(f"Fig. 18 (b) — energy-efficiency gain vs server GPU, "
                   f"batch={batch} (paper All-range 45.1-3067.6x @ b1)"),
        ))
        for name, gain in gains.items():
            assert gain > 5.0, (name, batch, gain)
        # ResBlock models gain least (paper: Make-an-Audio / SD dip).
        assert gains["stable_diffusion"] < gains["mdm"]
        assert gains["mld"] == max(gains.values())

    benchmark(
        ex24.simulate, get_spec("dit"), profiles["dit"],
    )
