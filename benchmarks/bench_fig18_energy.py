"""Fig. 18 — energy-efficiency comparison versus edge and server GPUs.

Reproduces both panels with the full ablation ladder (Base / EP / FFNR /
All) at batch sizes one and eight:

- (a) EXION4 versus the Jetson Orin Nano on the edge-deployable models
  (paper gains: 196.9-4668.2x for the All configuration, batch 1);
- (b) EXION24 versus the RTX 6000 Ada on all seven models
  (paper gains: 45.1-3067.6x).
"""

from repro.baselines.gpu import GPUModel
from repro.baselines.specs import EDGE_GPU, SERVER_GPU
from repro.bench import BenchResult, register_bench
from repro.hw.accelerator import ExionAccelerator
from repro.workloads.specs import BENCHMARK_ORDER, get_spec

from .conftest import emit_result

EDGE_MODELS = ("mld", "mdm", "edge", "make_an_audio")
ABLATIONS = (
    ("Base", False, False),
    ("EP", False, True),
    ("FFNR", True, False),
    ("All", True, True),
)

HEADERS = ["model", "Base", "EP", "FFNR", "All", "GPU TOPS/W"]


def efficiency_rows(accelerator, gpu_model, models, profiles, batch):
    rows = []
    gains_all = {}
    for name in models:
        spec = get_spec(name)
        gpu = gpu_model.simulate(spec, batch=batch)
        cells = [spec.display_name]
        for label, ffnr, ep in ABLATIONS:
            report = accelerator.simulate(
                spec, profiles[name], enable_ffn_reuse=ffnr,
                enable_eager_prediction=ep, batch=batch,
            )
            gain = report.tops_per_watt / gpu.tops_per_watt
            cells.append(f"{gain:.0f}x")
            if label == "All":
                gains_all[name] = gain
        cells.append(f"{gpu.tops_per_watt:.4f}")
        rows.append(cells)
    return rows, gains_all


def _build_panel(result, accelerator, gpu, models, profiles, title_fmt):
    for batch in (1, 8):
        rows, gains = efficiency_rows(accelerator, gpu, models, profiles,
                                      batch)
        result.add_series(title_fmt.format(batch=batch), HEADERS, rows)
        for name, gain in gains.items():
            result.add_metric(
                f"b{batch}.{name}.gain_all", gain, unit="x",
                direction="higher_better", tolerance=0.15,
            )
    return result


@register_bench("fig18a_edge_efficiency", tags=("figure", "hw"))
def build_fig18a(ctx):
    result = BenchResult("fig18a_edge_efficiency", model="edge-set")
    return _build_panel(
        result, ExionAccelerator.exion4(), GPUModel(EDGE_GPU),
        EDGE_MODELS, ctx.profiles,
        ("Fig. 18 (a) — energy-efficiency gain vs edge GPU, "
         "batch={batch} (paper All-range 196.9-4668.2x @ b1)"),
    )


@register_bench("fig18b_server_efficiency", tags=("figure", "hw"))
def build_fig18b(ctx):
    result = BenchResult("fig18b_server_efficiency", model="all")
    return _build_panel(
        result, ExionAccelerator.exion24(), GPUModel(SERVER_GPU),
        BENCHMARK_ORDER, ctx.profiles,
        ("Fig. 18 (b) — energy-efficiency gain vs server GPU, "
         "batch={batch} (paper All-range 45.1-3067.6x @ b1)"),
    )


def test_fig18a_edge(benchmark, bench_ctx):
    result = build_fig18a(bench_ctx)
    emit_result(result)
    for batch in (1, 8):
        for name in EDGE_MODELS:
            gain = result.value(f"b{batch}.{name}.gain_all")
            assert gain > 5.0, (name, batch, gain)

    benchmark(
        ExionAccelerator.exion4().simulate, get_spec("mld"),
        bench_ctx.profiles["mld"],
    )


def test_fig18b_server(benchmark, bench_ctx):
    result = build_fig18b(bench_ctx)
    emit_result(result)
    for batch in (1, 8):
        gains = {
            name: result.value(f"b{batch}.{name}.gain_all")
            for name in BENCHMARK_ORDER
        }
        for name, gain in gains.items():
            assert gain > 5.0, (name, batch, gain)
        # ResBlock models gain least (paper: Make-an-Audio / SD dip).
        assert gains["stable_diffusion"] < gains["mdm"]
        assert gains["mld"] == max(gains.values())

    benchmark(
        ExionAccelerator.exion24().simulate, get_spec("dit"),
        bench_ctx.profiles["dit"],
    )
