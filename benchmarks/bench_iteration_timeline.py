"""Per-iteration execution timeline: the FFN-Reuse cadence in hardware.

Not a paper figure, but the microarchitectural signature behind Fig. 18/19:
dense iterations (full FFN compute, CAU vector generation, full weight
working set) run measurably longer than the N sparse iterations between
them, and iteration 0 additionally pays the DRAM weight fill.
"""

from repro.analysis.report import format_table
from repro.hw.accelerator import ExionAccelerator
from repro.hw.timeline import simulate_timeline
from repro.workloads.specs import get_spec

from .conftest import emit


def test_iteration_timeline(benchmark, profiles):
    spec = get_spec("dit")
    acc = ExionAccelerator.exion24()
    timeline = benchmark(
        simulate_timeline, acc, spec, profiles["dit"], True, True, 1, 12
    )

    rows = []
    for record in timeline.records:
        rows.append(
            [
                record.index,
                "dense" if record.is_dense else "sparse",
                f"{record.latency_s * 1e6:.1f} us",
                record.bound,
                f"{record.macs_computed / 1e9:.2f} GMAC",
            ]
        )
    emit(format_table(
        ["iter", "phase", "latency", "bound", "computed"],
        rows,
        title="DiT on EXION24: per-iteration execution (N=2 schedule)",
    ))
    emit(
        f"dense/sparse steady-state latency ratio: "
        f"{timeline.dense_sparse_latency_ratio:.2f}x"
    )

    assert timeline.dense_sparse_latency_ratio > 1.1
    assert timeline.records[0].latency_s == max(
        r.latency_s for r in timeline.records
    )


def test_dram_stream_assumption(benchmark):
    """Sanity bench for the stream-level DRAM model: sequential bursts
    run near the per-channel interface rate, random bursts far below."""
    from repro.hw.dram_detail import (
        GDDR6_TIMINGS,
        LPDDR5_TIMINGS,
        validate_stream_assumption,
    )

    rows = []
    for timings in (LPDDR5_TIMINGS, GDDR6_TIMINGS):
        result = validate_stream_assumption(timings, megabytes=2)
        rows.append(
            [
                timings.name,
                f"{result['sequential_gbps']:.1f} GB/s",
                f"{result['random_gbps']:.1f} GB/s",
                f"{result['sequential_fraction_of_peak']:.1%}",
                f"{result['sequential_hit_rate']:.1%}",
            ]
        )
        assert result["sequential_fraction_of_peak"] > 0.9
    emit(format_table(
        ["device", "sequential", "random", "fraction of peak",
         "row-hit rate"],
        rows,
        title="Banked-DRAM validation of the stream bandwidth assumption",
    ))

    benchmark(validate_stream_assumption, LPDDR5_TIMINGS, 1)
