"""Per-iteration execution timeline: the FFN-Reuse cadence in hardware.

Not a paper figure, but the microarchitectural signature behind Fig. 18/19:
dense iterations (full FFN compute, CAU vector generation, full weight
working set) run measurably longer than the N sparse iterations between
them, and iteration 0 additionally pays the DRAM weight fill. A second
bench validates the stream-level DRAM bandwidth assumption against the
banked model.
"""

from repro.bench import BenchResult, register_bench
from repro.hw.accelerator import ExionAccelerator
from repro.hw.dram_detail import (
    GDDR6_TIMINGS,
    LPDDR5_TIMINGS,
    validate_stream_assumption,
)
from repro.hw.timeline import simulate_timeline
from repro.workloads.specs import get_spec

from .conftest import emit_result


@register_bench("iteration_timeline", tags=("hw", "timeline"))
def build_timeline(ctx):
    spec = get_spec("dit")
    acc = ExionAccelerator.exion24()
    timeline = simulate_timeline(acc, spec, ctx.profiles["dit"], True, True,
                                 1, 12)

    result = BenchResult("iteration_timeline", model="dit")
    rows = []
    for record in timeline.records:
        rows.append(
            [
                record.index,
                "dense" if record.is_dense else "sparse",
                f"{record.latency_s * 1e6:.1f} us",
                record.bound,
                f"{record.macs_computed / 1e9:.2f} GMAC",
            ]
        )
    result.add_series(
        "DiT on EXION24: per-iteration execution (N=2 schedule)",
        ["iter", "phase", "latency", "bound", "computed"],
        rows,
    )
    result.add_note(
        f"dense/sparse steady-state latency ratio: "
        f"{timeline.dense_sparse_latency_ratio:.2f}x"
    )
    result.add_metric(
        "dense_sparse_latency_ratio", timeline.dense_sparse_latency_ratio,
        unit="x", direction="higher_better", tolerance=0.10,
    )
    max_latency = max(r.latency_s for r in timeline.records)
    result.add_metric(
        "first_iteration_is_slowest",
        1.0 if timeline.records[0].latency_s == max_latency else 0.0,
        direction="higher_better", tolerance=0.0,
    )
    return result


@register_bench("dram_stream", tags=("hw", "dram", "smoke"))
def build_dram_stream(ctx):
    result = BenchResult("dram_stream", model="")
    rows = []
    for timings in (LPDDR5_TIMINGS, GDDR6_TIMINGS):
        outcome = validate_stream_assumption(timings, megabytes=2)
        rows.append(
            [
                timings.name,
                f"{outcome['sequential_gbps']:.1f} GB/s",
                f"{outcome['random_gbps']:.1f} GB/s",
                f"{outcome['sequential_fraction_of_peak']:.1%}",
                f"{outcome['sequential_hit_rate']:.1%}",
            ]
        )
        key = timings.name.lower()
        result.add_metric(
            f"{key}.sequential_fraction_of_peak",
            outcome["sequential_fraction_of_peak"],
            direction="higher_better", tolerance=0.05,
        )
        result.add_metric(
            f"{key}.sequential_gbps", outcome["sequential_gbps"],
            unit="GB/s", direction="higher_better", tolerance=0.05,
        )
        result.add_metric(
            f"{key}.random_gbps", outcome["random_gbps"],
            unit="GB/s", direction="higher_better", tolerance=0.10,
        )
    result.add_series(
        "Banked-DRAM validation of the stream bandwidth assumption",
        ["device", "sequential", "random", "fraction of peak",
         "row-hit rate"],
        rows,
    )
    return result


def test_iteration_timeline(benchmark, bench_ctx):
    result = build_timeline(bench_ctx)
    emit_result(result)

    assert result.value("dense_sparse_latency_ratio") > 1.1
    assert result.value("first_iteration_is_slowest") == 1.0

    benchmark(
        simulate_timeline, ExionAccelerator.exion24(), get_spec("dit"),
        bench_ctx.profiles["dit"], True, True, 1, 12,
    )


def test_dram_stream_assumption(benchmark, bench_ctx):
    """Sanity bench for the stream-level DRAM model: sequential bursts
    run near the per-channel interface rate, random bursts far below."""
    result = build_dram_stream(bench_ctx)
    emit_result(result)

    for timings in (LPDDR5_TIMINGS, GDDR6_TIMINGS):
        key = timings.name.lower()
        assert result.value(f"{key}.sequential_fraction_of_peak") > 0.9

    benchmark(validate_stream_assumption, LPDDR5_TIMINGS, 1)
