"""The trace-analytics hard gate: exact conservation, byte-stable output.

``repro.obs.analyze`` promises that its analysis of a simulated trace is
**exact** (every request's wait/service components sum bit-for-bit to
its end-to-end latency; per-tenant tick shares sum to fleet busy time)
and **byte-deterministic** (same-seed runs produce identical analysis
JSON and identical HTML reports, and ``diff_analyses`` between them is
clean). This bench pins all of it:

- two same-seed trace scenarios, analyzed independently — the canonical
  JSON and rendered HTML must be byte-identical;
- conservation residuals (max per-request, tenant-vs-busy) must be 0 ns;
- the self-diff must report zero regressions;
- headline analysis numbers (served count, busy seconds, p95) ride
  along so attribution drift shows up in the baseline compare.

Run with::

    pytest benchmarks/bench_obs_analysis.py --import-mode=importlib -s
"""

from repro.bench import BenchResult, register_bench
from repro.obs import Observer, run_trace_scenario
from repro.obs.analyze import analyze_tracer, diff_analyses, render_html

from .conftest import emit_result

MODEL = "dit"
ITERATIONS = 12
REQUESTS = 8


def _analyze_once():
    observer = Observer()
    run_trace_scenario(
        model=MODEL, continuous=True, requests=REQUESTS,
        iterations=ITERATIONS, observer=observer,
    )
    report = analyze_tracer(observer.tracer, meta={"model": MODEL})
    return report, report.to_json(), render_html(report)


@register_bench("obs_analysis", tags=("obs", "smoke"))
def build_obs_analysis(ctx):
    report1, json1, html1 = _analyze_once()
    report2, json2, html2 = _analyze_once()
    attribution = report1.attribution
    latency = attribution.latency_summary()
    diff = diff_analyses(report1.to_dict(), report2.to_dict())

    result = BenchResult("obs_analysis", model=MODEL)
    result.add_metric(
        "json_identical", 1.0 if json1 == json2 else 0.0,
        direction="higher_better", tolerance=0.0,
    )
    result.add_metric(
        "html_identical", 1.0 if html1 == html2 else 0.0,
        direction="higher_better", tolerance=0.0,
    )
    result.add_metric(
        "max_request_residual_ns",
        float(attribution.max_request_residual_ns()),
        unit="ns", direction="lower_better", tolerance=0.0,
    )
    result.add_metric(
        "tenant_residual_ns", float(attribution.tenant_residual_ns()),
        unit="ns", direction="lower_better", tolerance=0.0,
    )
    result.add_metric(
        "self_diff_regressions", float(len(diff["regressions"])),
        direction="lower_better", tolerance=0.0,
    )
    result.add_metric("requests", float(len(attribution.requests)),
                      unit="requests")
    result.add_metric("served", float(latency["count"]), unit="requests")
    result.add_metric("busy_s", attribution.busy_ns / 1e9, unit="s")
    result.add_metric("latency_p95_s", latency["p95_ns"] / 1e9, unit="s",
                      direction="lower_better")
    result.add_metric(
        "critical_path_s", report1.path.total_ns / 1e9, unit="s",
    )
    result.add_series(
        "Fleet attribution (exactly conserved)",
        ["component", "ms"],
        [
            [key.removesuffix("_ns"), f"{value / 1e6:.3f}"]
            for key, value in attribution.fleet_components().items()
        ],
    )
    result.add_note(
        "Attribution arithmetic is integer nanoseconds over shared "
        "breakpoints, so components telescope to each request's exact "
        "latency and per-tenant tick shares sum to fleet busy time — "
        "residual metrics above are hard zeros, not tolerances."
    )
    return result


def test_obs_analysis(bench_ctx):
    result = build_obs_analysis(bench_ctx)
    emit_result(result)

    assert result.value("json_identical") == 1.0
    assert result.value("html_identical") == 1.0
    assert result.value("max_request_residual_ns") == 0.0
    assert result.value("tenant_residual_ns") == 0.0
    assert result.value("self_diff_regressions") == 0.0
