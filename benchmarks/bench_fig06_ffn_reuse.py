"""Fig. 6 (table) — FFN-Reuse configurations and operation reduction.

Runs each model with FFN-Reuse only, at its Table I configuration
(N sparse iterations, target sparsity), and reports the measured 1st-FFN
output sparsity plus the fraction of FFN operations skipped over the whole
diffusion process, next to the paper's numbers.
"""

import pytest

from repro.analysis.report import percent
from repro.bench import BenchResult, register_bench
from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.models.zoo import build_model
from repro.workloads.specs import BENCHMARK_ORDER, get_spec

from .conftest import emit_result


def run_ffn_reuse(name, iterations=None):
    spec = get_spec(name)
    model = build_model(name, seed=0, total_iterations=iterations)
    cfg = ExionConfig.for_model(name, enable_eager_prediction=False)
    result = ExionPipeline(model, cfg).generate(seed=1, prompt="bench")
    return spec, result.stats


@register_bench("fig06_ffn_reuse", tags=("figure", "core"))
def build_fig06(ctx):
    rows = []
    for name in BENCHMARK_ORDER:
        # Full schedules at simulation scale are cheap; keep a couple of
        # dense/sparse periods at least.
        spec, stats = run_ffn_reuse(name, iterations=min(
            get_spec(name).total_iterations, 30
        ))
        rows.append((name, spec, stats))

    result = BenchResult("fig06_ffn_reuse", model="all")
    result.add_series(
        "Fig. 6 — FFN-Reuse inter-iteration sparsity and op reduction",
        ["model", "N", "sparsity", "paper", "FFN ops cut", "paper cut"],
        [
            [
                spec.display_name,
                spec.sparse_iters_n,
                percent(stats.ffn_output_sparsity),
                percent(spec.target_inter_sparsity, 0),
                percent(stats.ffn_ops_reduction),
                percent(spec.paper_ffn_ops_reduction),
            ]
            for _, spec, stats in rows
        ],
    )
    for name, spec, stats in rows:
        result.add_metric(
            f"{name}.ffn_output_sparsity", stats.ffn_output_sparsity,
            paper=spec.target_inter_sparsity, direction="two_sided",
            tolerance=0.07,
        )
        result.add_metric(
            f"{name}.ffn_ops_reduction", stats.ffn_ops_reduction,
            paper=spec.paper_ffn_ops_reduction, direction="higher_better",
            tolerance=0.10,
        )
    return result


def test_fig06_ffn_reuse_table(benchmark, bench_ctx):
    result = build_fig06(bench_ctx)
    emit_result(result)

    for name in BENCHMARK_ORDER:
        spec = get_spec(name)
        # Measured sparsity tracks the Table I target.
        assert result.value(f"{name}.ffn_output_sparsity") == pytest.approx(
            spec.target_inter_sparsity, abs=0.05
        )
        # Paper range: 52.47% - 85.41% of FFN ops skipped.
        assert 0.35 <= result.value(f"{name}.ffn_ops_reduction") <= 0.95

    benchmark(run_ffn_reuse, "dit", 12)
