"""Fig. 8 — condensing efficiency (remaining columns, MLD vs SD).

The paper reports ~13.8% of columns remaining for MLD (4-row output
matrices condense well) versus ~77.4% for Stable Diffusion (1024 rows make
all-sparse columns rare). Masks are synthesized at paper scale with the
measured sparsity levels and column structure.
"""

import numpy as np
import pytest

from repro.analysis.report import format_table, percent
from repro.core.conmerge.condense import condense
from repro.workloads.generator import ffn_output_bitmask
from repro.workloads.specs import get_spec

from .conftest import emit

PAPER_REMAINING = {"mld": 0.138, "stable_diffusion": 0.774}


def condensing_ratio(name, seed=0):
    spec = get_spec(name)
    rng = np.random.default_rng(seed)
    mask = ffn_output_bitmask(
        rows=spec.paper_tokens,
        cols=min(spec.paper_ffn_mult * spec.paper_dim, 2048),
        sparsity=spec.target_inter_sparsity,
        dead_col_fraction=0.25,
        rng=rng,
    )
    return condense(mask).remaining_ratio


def test_fig08_condensing(benchmark):
    ratios = {
        name: condensing_ratio(name) for name in PAPER_REMAINING
    }
    table = format_table(
        ["model", "remaining columns", "paper"],
        [
            [get_spec(name).display_name, percent(ratio), percent(paper)]
            for (name, ratio), paper in zip(
                ratios.items(), PAPER_REMAINING.values()
            )
        ],
        title="Fig. 8 — remaining columns after condensing (1st FFN layer)",
    )
    emit(table)

    # Shape: MLD condenses dramatically; Stable Diffusion barely.
    assert ratios["mld"] < 0.35
    assert ratios["stable_diffusion"] > 0.60
    assert ratios["mld"] < ratios["stable_diffusion"] / 2

    benchmark(condensing_ratio, "stable_diffusion")
