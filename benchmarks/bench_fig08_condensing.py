"""Fig. 8 — condensing efficiency (remaining columns, MLD vs SD).

The paper reports ~13.8% of columns remaining for MLD (4-row output
matrices condense well) versus ~77.4% for Stable Diffusion (1024 rows make
all-sparse columns rare). Masks are synthesized at paper scale with the
measured sparsity levels and column structure.
"""

import numpy as np

from repro.analysis.report import percent
from repro.bench import BenchResult, register_bench
from repro.core.conmerge.condense import condense
from repro.workloads.generator import ffn_output_bitmask
from repro.workloads.specs import get_spec

from .conftest import emit_result

PAPER_REMAINING = {"mld": 0.138, "stable_diffusion": 0.774}


def condensing_ratio(name, seed=0):
    spec = get_spec(name)
    rng = np.random.default_rng(seed)
    mask = ffn_output_bitmask(
        rows=spec.paper_tokens,
        cols=min(spec.paper_ffn_mult * spec.paper_dim, 2048),
        sparsity=spec.target_inter_sparsity,
        dead_col_fraction=0.25,
        rng=rng,
    )
    return condense(mask).remaining_ratio


@register_bench("fig08_condensing", tags=("figure", "conmerge", "smoke"))
def build_fig08(ctx):
    ratios = {
        name: condensing_ratio(name) for name in PAPER_REMAINING
    }
    result = BenchResult("fig08_condensing", model="mld,stable_diffusion")
    result.add_series(
        "Fig. 8 — remaining columns after condensing (1st FFN layer)",
        ["model", "remaining columns", "paper"],
        [
            [get_spec(name).display_name, percent(ratio), percent(paper)]
            for (name, ratio), paper in zip(
                ratios.items(), PAPER_REMAINING.values()
            )
        ],
    )
    for name, ratio in ratios.items():
        result.add_metric(
            f"{name}.remaining_ratio", ratio,
            paper=PAPER_REMAINING[name], direction="lower_better",
            tolerance=0.10,
        )
    return result


def test_fig08_condensing(benchmark, bench_ctx):
    result = build_fig08(bench_ctx)
    emit_result(result)

    # Shape: MLD condenses dramatically; Stable Diffusion barely.
    mld = result.value("mld.remaining_ratio")
    sd = result.value("stable_diffusion.remaining_ratio")
    assert mld < 0.35
    assert sd > 0.60
    assert mld < sd / 2

    benchmark(condensing_ratio, "stable_diffusion")
