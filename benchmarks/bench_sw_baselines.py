"""Related-work software baselines versus FFN-Reuse (paper Section VI).

The paper positions EXION against two GPU-software acceleration families:

- **fast sampling** ([19], [36], [39]) — fewer iterations, at accuracy
  cost ("without retraining, the reduction is limited in achieving
  acceptable sampling quality");
- **Delta-DiT** ([4]) — block-output caching across iterations, coarse
  grained where FFN-Reuse is element-grained.

This bench runs all three on DiT at matched/stated compute savings and
reports accuracy against the vanilla 50-step reference.
"""

from functools import lru_cache

from repro.analysis.report import percent
from repro.baselines.delta_dit import DeltaDiTPipeline
from repro.bench import BenchResult, register_bench
from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.models.pipeline import DiffusionPipeline
from repro.models.scheduler import DDIMScheduler, DPMSolverPP2MScheduler
from repro.models.zoo import build_model
from repro.workloads.metrics import psnr

from .conftest import emit_result

ITERATIONS = 48


@lru_cache(maxsize=1)
def _dit_model():
    """One 48-iteration model build shared by builder and pytest kernel."""
    return build_model("dit", seed=0, total_iterations=ITERATIONS)


@register_bench("sw_baselines", tags=("baselines", "core"))
def build_sw_baselines(ctx):
    model = _dit_model()
    vanilla = model.make_pipeline().generate(seed=1, class_label=5)

    result = BenchResult("sw_baselines", model="dit")
    rows = []

    # Fast sampling: run 1/4 of the iterations (75% compute cut).
    few = ITERATIONS // 4
    for label, key, scheduler in (
        ("DDIM @ 12 steps", "ddim", DDIMScheduler()),
        ("DPM-Solver++(2M) @ 12 steps", "dpm_solver", DPMSolverPP2MScheduler()),
    ):
        sampled = DiffusionPipeline(
            model.network, scheduler, few, model.conditioning
        ).generate(seed=1, class_label=5)
        value = psnr(vanilla.sample, sampled.sample)
        result.add_metric(f"{key}.psnr_db", value, unit="dB",
                          direction="higher_better", tolerance=0.15)
        rows.append([label, percent(0.75), f"{value:.2f} dB"])

    # Delta-DiT block caching.
    delta = DeltaDiTPipeline(model, cache_interval=2).generate(
        seed=1, class_label=5
    )
    delta_psnr = psnr(vanilla.sample, delta.sample)
    result.add_metric("delta_dit.psnr_db", delta_psnr, unit="dB",
                      direction="higher_better", tolerance=0.15)
    result.add_metric("delta_dit.ops_reduction", delta.ops_reduction,
                      direction="higher_better", tolerance=0.10)
    rows.append([
        "Delta-DiT (cache middle blocks, N=2)",
        percent(delta.ops_reduction),
        f"{delta_psnr:.2f} dB",
    ])

    # FFN-Reuse at the Table I configuration.
    cfg = ExionConfig.for_model("dit", enable_eager_prediction=False)
    ffnr = ExionPipeline(model, cfg).generate(seed=1, class_label=5)
    ffnr_psnr = psnr(vanilla.sample, ffnr.sample)
    result.add_metric("ffn_reuse.psnr_db", ffnr_psnr, unit="dB",
                      direction="higher_better", tolerance=0.15)
    result.add_metric("ffn_reuse.ops_reduction",
                      ffnr.stats.ffn_ops_reduction,
                      direction="higher_better", tolerance=0.10)
    rows.append([
        "FFN-Reuse (EXION, N=2)",
        percent(ffnr.stats.ffn_ops_reduction) + " of FFN ops",
        f"{ffnr_psnr:.2f} dB",
    ])

    result.add_series(
        "Software baselines vs FFN-Reuse on DiT",
        ["method", "compute cut", "PSNR vs 48-step vanilla"],
        rows,
    )
    return result


def test_sw_baselines_vs_ffn_reuse(benchmark, bench_ctx):
    result = build_sw_baselines(bench_ctx)
    emit_result(result)

    # FFN-Reuse stays at least as accurate as block caching.
    assert result.value("ffn_reuse.psnr_db") >= (
        result.value("delta_dit.psnr_db") - 1.0
    )
    # All methods stay finite / correlated.
    for key in ("ddim", "dpm_solver", "delta_dit", "ffn_reuse"):
        assert result.value(f"{key}.psnr_db") > 3.0

    benchmark(
        DeltaDiTPipeline(_dit_model(), cache_interval=2).generate, 1, None, 5
    )
