"""Related-work software baselines versus FFN-Reuse (paper Section VI).

The paper positions EXION against two GPU-software acceleration families:

- **fast sampling** ([19], [36], [39]) — fewer iterations, at accuracy
  cost ("without retraining, the reduction is limited in achieving
  acceptable sampling quality");
- **Delta-DiT** ([4]) — block-output caching across iterations, coarse
  grained where FFN-Reuse is element-grained.

This bench runs all three on DiT at matched/stated compute savings and
reports accuracy against the vanilla 50-step reference.
"""

from repro.analysis.report import format_table, percent
from repro.baselines.delta_dit import DeltaDiTPipeline
from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.models.pipeline import DiffusionPipeline
from repro.models.scheduler import DDIMScheduler, DPMSolverPP2MScheduler
from repro.models.zoo import build_model
from repro.workloads.metrics import psnr

from .conftest import emit

ITERATIONS = 48


def test_sw_baselines_vs_ffn_reuse(benchmark):
    model = build_model("dit", seed=0, total_iterations=ITERATIONS)
    vanilla = model.make_pipeline().generate(seed=1, class_label=5)

    rows = []

    # Fast sampling: run 1/4 of the iterations (75% compute cut).
    few = ITERATIONS // 4
    for label, scheduler in (
        ("DDIM @ 12 steps", DDIMScheduler()),
        ("DPM-Solver++(2M) @ 12 steps", DPMSolverPP2MScheduler()),
    ):
        result = DiffusionPipeline(
            model.network, scheduler, few, model.conditioning
        ).generate(seed=1, class_label=5)
        rows.append([label, percent(0.75),
                     f"{psnr(vanilla.sample, result.sample):.2f} dB"])

    # Delta-DiT block caching.
    delta = DeltaDiTPipeline(model, cache_interval=2).generate(
        seed=1, class_label=5
    )
    rows.append([
        "Delta-DiT (cache middle blocks, N=2)",
        percent(delta.ops_reduction),
        f"{psnr(vanilla.sample, delta.sample):.2f} dB",
    ])

    # FFN-Reuse at the Table I configuration.
    cfg = ExionConfig.for_model("dit", enable_eager_prediction=False)
    ffnr = ExionPipeline(model, cfg).generate(seed=1, class_label=5)
    rows.append([
        "FFN-Reuse (EXION, N=2)",
        percent(ffnr.stats.ffn_ops_reduction) + " of FFN ops",
        f"{psnr(vanilla.sample, ffnr.sample):.2f} dB",
    ])

    emit(format_table(
        ["method", "compute cut", "PSNR vs 48-step vanilla"],
        rows,
        title="Software baselines vs FFN-Reuse on DiT",
    ))

    psnrs = {row[0]: float(row[2].split()[0]) for row in rows}
    # FFN-Reuse stays at least as accurate as block caching.
    assert psnrs["FFN-Reuse (EXION, N=2)"] >= (
        psnrs["Delta-DiT (cache middle blocks, N=2)"] - 1.0
    )
    # All methods stay finite / correlated.
    assert all(p > 3.0 for p in psnrs.values())

    benchmark(
        DeltaDiTPipeline(model, cache_interval=2).generate, 1, None, 5
    )
