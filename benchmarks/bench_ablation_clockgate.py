"""Ablation — clock gating in the SDUE datapath.

The paper applies clock gating to all SDUE registers so the residual
sparsity left after merging still saves energy (Section IV-B). This bench
compares the energy model with gating (idle fraction ~4%) against a
hypothetical ungated design (idle cells burn full power).
"""

import pytest

from repro.analysis.report import format_table, percent
from repro.hw.dsc import DSCModel
from repro.hw.energy import EnergyModel
from repro.workloads.specs import get_spec

from .conftest import emit


def sdue_energy(idle_fraction, busy_cycles, activity, idle_cycles):
    model = EnergyModel(idle_fraction=idle_fraction)
    model.record("sdue", busy_cycles, idle_cycles=idle_cycles,
                 activity=activity)
    return model.component_energy_j("sdue")


def test_ablation_clock_gating(benchmark, profiles):
    spec = get_spec("dit")
    dsc = DSCModel()
    sparse_cost = dsc.iteration_cost(
        spec, profiles["dit"], True, True, sparse_phase=True
    )
    busy = sparse_cost.sdue_cycles
    activity = sparse_cost.sdue_activity
    idle = busy // 2

    gated = sdue_energy(0.04, busy, activity, idle)
    ungated = sdue_energy(1.0, busy, 1.0, idle)
    savings = 1.0 - gated / ungated

    emit(format_table(
        ["design", "SDUE energy per sparse iteration", "relative"],
        [
            ["clock-gated (EXION)", f"{gated * 1e3:.3f} mJ", "1.0x"],
            ["ungated", f"{ungated * 1e3:.3f} mJ",
             f"{ungated / gated:.2f}x"],
        ],
        title=(f"Ablation — clock gating on residual sparsity "
               f"(activity {activity:.2f}, saving {percent(savings)})"),
    ))

    assert gated < ungated
    assert savings > 0.2  # gating matters at merged-block activity levels

    benchmark(sdue_energy, 0.04, busy, activity, idle)
