"""Ablation — clock gating in the SDUE datapath.

The paper applies clock gating to all SDUE registers so the residual
sparsity left after merging still saves energy (Section IV-B). This bench
compares the energy model with gating (idle fraction ~4%) against a
hypothetical ungated design (idle cells burn full power).
"""

from repro.analysis.report import percent
from repro.bench import BenchResult, register_bench
from repro.hw.dsc import DSCModel
from repro.hw.energy import EnergyModel
from repro.workloads.specs import get_spec

from .conftest import emit_result


def sdue_energy(idle_fraction, busy_cycles, activity, idle_cycles):
    model = EnergyModel(idle_fraction=idle_fraction)
    model.record("sdue", busy_cycles, idle_cycles=idle_cycles,
                 activity=activity)
    return model.component_energy_j("sdue")


def _sparse_cost(profiles):
    spec = get_spec("dit")
    dsc = DSCModel()
    return dsc.iteration_cost(
        spec, profiles["dit"], True, True, sparse_phase=True
    )


@register_bench("ablation_clockgate", tags=("ablation", "hw", "smoke"))
def build_clockgate(ctx):
    sparse_cost = _sparse_cost(ctx.profiles)
    busy = sparse_cost.sdue_cycles
    activity = sparse_cost.sdue_activity
    idle = busy // 2

    gated = sdue_energy(0.04, busy, activity, idle)
    ungated = sdue_energy(1.0, busy, 1.0, idle)
    savings = 1.0 - gated / ungated

    result = BenchResult("ablation_clockgate", model="dit")
    result.add_series(
        (f"Ablation — clock gating on residual sparsity "
         f"(activity {activity:.2f}, saving {percent(savings)})"),
        ["design", "SDUE energy per sparse iteration", "relative"],
        [
            ["clock-gated (EXION)", f"{gated * 1e3:.3f} mJ", "1.0x"],
            ["ungated", f"{ungated * 1e3:.3f} mJ",
             f"{ungated / gated:.2f}x"],
        ],
    )
    result.add_metric("gated_energy_j", gated, unit="J",
                      direction="lower_better", tolerance=0.10)
    result.add_metric("ungated_energy_j", ungated, unit="J",
                      direction="lower_better", tolerance=0.10)
    result.add_metric("savings_ratio", savings,
                      direction="higher_better", tolerance=0.10)
    return result


def test_ablation_clock_gating(benchmark, bench_ctx):
    result = build_clockgate(bench_ctx)
    emit_result(result)

    assert result.value("gated_energy_j") < result.value("ungated_energy_j")
    # Gating matters at merged-block activity levels.
    assert result.value("savings_ratio") > 0.2

    sparse_cost = _sparse_cost(bench_ctx.profiles)
    benchmark(sdue_energy, 0.04, sparse_cost.sdue_cycles,
              sparse_cost.sdue_activity, sparse_cost.sdue_cycles // 2)
