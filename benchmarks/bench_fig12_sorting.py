"""Fig. 12 — sorting before merging reduces CVG cycle counts.

The paper reports 29.3-72.7% fewer merge cycles when blocks are paired by
sparsity level (CAU SortBuffer) instead of random order. We compare the
*cycles per successful merge*: without sorting, dense-with-dense pairings
fail repeatedly and burn CVG cycles achieving nothing, which is exactly the
failure-retry cost the sorting strategy removes ("reduces the chances of
failure and the need to try merging with other blocks").
"""

import numpy as np

from repro.analysis.report import percent
from repro.bench import BenchResult, register_bench
from repro.core.conmerge.cvg import conmerge
from repro.workloads.generator import ffn_output_bitmask
from repro.workloads.specs import get_spec

from .conftest import emit_result

PAPER_DECREMENT = {
    "mdm": 0.3445,
    "make_an_audio": 0.7274,
    "stable_diffusion": 0.6522,
    "videocrafter2": 0.4991,
    "dit": 0.6719,
    "edge": 0.2933,
}


def merge_cost(name, sort, seeds=range(4)):
    """CVG cycles per successful merge over several mask draws."""
    spec = get_spec(name)
    cycles = 0
    successes = 0
    for seed in seeds:
        mask = ffn_output_bitmask(
            16, 512, spec.target_inter_sparsity,
            dead_col_fraction=0.25, rng=np.random.default_rng(seed),
        )
        result = conmerge(mask, sort=sort)
        cycles += result.cycles
        successes += result.merge_successes
    return cycles / max(successes, 1)


@register_bench("fig12_sorting", tags=("figure", "conmerge", "smoke"))
def build_fig12(ctx):
    result = BenchResult("fig12_sorting", model="all")
    rows = []
    decrements = {}
    for name, paper in PAPER_DECREMENT.items():
        sorted_cost = merge_cost(name, sort=True)
        random_cost = merge_cost(name, sort=False)
        dec = 1.0 - sorted_cost / random_cost
        decrements[name] = dec
        result.add_metric(
            f"{name}.cycle_decrement", dec, paper=paper,
            direction="higher_better", tolerance=0.25,
        )
        rows.append(
            [
                get_spec(name).display_name,
                f"{sorted_cost:.1f}",
                f"{random_cost:.1f}",
                percent(dec),
                percent(paper),
            ]
        )
    result.add_series(
        "Fig. 12 — merge-cycle reduction from sparsity-level sorting",
        ["model", "sorted cyc/merge", "random cyc/merge", "decrement",
         "paper"],
        rows,
    )
    result.add_metric(
        "mean_cycle_decrement", float(np.mean(list(decrements.values()))),
        direction="higher_better", tolerance=0.25,
    )
    return result


def test_fig12_sorting(benchmark, bench_ctx):
    result = build_fig12(bench_ctx)
    emit_result(result)

    decrements = {
        name: result.value(f"{name}.cycle_decrement")
        for name in PAPER_DECREMENT
    }
    # Shape: sorting helps on average, dramatically for denser workloads
    # (VideoCrafter2/DiT), and never hurts badly at extreme sparsity.
    assert result.value("mean_cycle_decrement") > 0.10
    assert all(d > -0.15 for d in decrements.values())
    assert decrements["videocrafter2"] > 0.3  # densest workload, biggest win

    benchmark(merge_cost, "dit", True, range(2))
