"""Objective functions and Pareto analysis for design-space exploration.

One :class:`PointEvaluator` turns a space point (a plain dict of knob
values, see :mod:`repro.explore.space`) into a dict of objective values by
calling into the layers the repo already has:

- **latency_s / energy_j / tops_per_watt** — the hardware path: the
  point's spec (algorithm *value* knobs folded in by
  :func:`spec_from_point`: FFN-Reuse period, sparsity target, top-k —
  they reshape the phase schedule and the synthesized sparsity profile,
  not just the two enable flags) is lowered once through
  :func:`repro.program.lower_plan` and priced with
  :meth:`repro.hw.accelerator.ExionAccelerator.simulate_plan` on a
  validated custom configuration built from the hardware knobs;
- **accuracy_psnr_db** — the Table I protocol:
  :func:`repro.workloads.evaluation.evaluate_config` on the point's
  algorithm knobs (hardware knobs deliberately do not perturb the
  accuracy stream, so equal algorithm configs score equal accuracy on
  every hardware variant);
- **slo_attainment / samples_per_s** — the fleet simulator:
  :func:`repro.cluster.simulate_cluster` over a synthesized trace with
  service times priced on the point's hardware configuration.

Seeds are derived with :func:`repro.explore.space.stable_seed` from the
evaluator's ``base_seed`` plus the canonical encoding of exactly the
knobs an objective depends on — the determinism contract that makes
parallel, serial and cache-resumed runs byte-identical.

The module also implements frontier extraction: :func:`pareto_front`
(dominated-point pruning under per-objective directions) and
:func:`knee_point` (closest to the normalized ideal corner).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.config import ExionConfig
from repro.explore.space import canonicalize, point_key, stable_seed

#: PSNR is unbounded for exact reproductions (zero MSE); the report JSON
#: forbids non-finite values, so exactness is clamped here.
PSNR_CAP_DB = 99.0


@dataclass(frozen=True)
class Objective:
    """One optimization axis: a name and which way is better."""

    name: str
    direction: str  # "higher_better" or "lower_better"
    unit: str = ""

    def __post_init__(self):
        if self.direction not in ("higher_better", "lower_better"):
            raise ValueError(
                f"objective {self.name!r}: direction must be "
                f"higher_better or lower_better, got {self.direction!r}"
            )

    def oriented(self, value: float) -> float:
        """Map to minimize-is-better orientation."""
        return value if self.direction == "lower_better" else -value

    def to_dict(self) -> dict:
        return {"name": self.name, "direction": self.direction,
                "unit": self.unit}


#: All objectives the built-in evaluator can compute.
OBJECTIVES = {
    "latency_s": Objective("latency_s", "lower_better", "s"),
    "energy_j": Objective("energy_j", "lower_better", "J"),
    "tops_per_watt": Objective("tops_per_watt", "higher_better", "TOPS/W"),
    "accuracy_psnr_db": Objective("accuracy_psnr_db", "higher_better", "dB"),
    "slo_attainment": Objective("slo_attainment", "higher_better", ""),
    "samples_per_s": Objective(
        "samples_per_s", "higher_better", "samples/s"
    ),
}

#: Default tri-objective: speed, energy, fidelity.
DEFAULT_OBJECTIVES = ("latency_s", "energy_j", "accuracy_psnr_db")

#: Knobs the accuracy objective depends on (plus the model + fidelity).
_ALGO_KNOBS = (
    "enable_ffn_reuse", "enable_eager_prediction", "sparse_iters_n",
    "ffn_target_sparsity", "top_k_ratio", "q_threshold", "prediction_bits",
)

def get_objective(name: str) -> Objective:
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise ValueError(
            f"unknown objective {name!r}; "
            f"known: {', '.join(sorted(OBJECTIVES))}"
        ) from None


def resolve_objectives(names) -> list:
    return [get_objective(n) for n in names]


def config_from_point(model: str, point: dict) -> ExionConfig:
    """The model's Table I config overridden by the point's algorithm knobs.

    Unknown knobs are ignored (they belong to hardware or workload
    dimensions); :class:`~repro.core.config.ExionConfig` validation rejects
    out-of-domain values with its usual messages.
    """
    config = ExionConfig.for_model(model)
    overrides = {
        k: canonicalize(point[k]) for k in _ALGO_KNOBS if k in point
    }
    if overrides:
        config = replace(config, **overrides)
    return config


def accelerator_from_point(point: dict):
    """A validated custom accelerator from the point's hardware knobs."""
    from repro.hw.accelerator import ExionAccelerator

    return ExionAccelerator.custom(
        num_dscs=int(point.get("num_dscs", 24)),
        dram=point.get("dram", "gddr6"),
        bandwidth_gbps=point.get("bandwidth_gbps"),
        gsc_mb=point.get("gsc_mb"),
    )


#: ExionConfig field -> ModelSpec field carrying the same knob. Folding
#: these into the spec is what makes the *value* knobs (FFN-Reuse period,
#: sparsity targets, top-k) move the hardware objectives, not just the
#: two enable flags — the phase schedule and the synthesized sparsity
#: profile both read the spec.
_SPEC_KNOBS = {
    "sparse_iters_n": "sparse_iters_n",
    "ffn_target_sparsity": "target_inter_sparsity",
    "top_k_ratio": "top_k_ratio",
    "q_threshold": "q_threshold",
}


def spec_from_point(model: str, point: dict):
    """The model's workload spec with the point's algorithm knobs folded
    in, so the hardware walk prices the configuration the pipeline would
    actually run."""
    from repro.workloads.specs import get_spec

    config = config_from_point(model, point)
    return replace(
        get_spec(model),
        **{
            spec_field: getattr(config, config_field)
            for config_field, spec_field in _SPEC_KNOBS.items()
        },
    )


@dataclass(frozen=True)
class PointEvaluator:
    """Maps points to objective dicts; picklable for worker processes.

    ``fidelity`` (per-rung iteration counts from successive halving)
    overrides ``iterations``. All fields participate in the runner's
    cache identity via :meth:`describe`.
    """

    objectives: tuple = DEFAULT_OBJECTIVES
    model: str = "dit"
    iterations: Optional[int] = 12
    base_seed: int = 0
    batch: int = 1
    accuracy_samples: int = 2
    cluster_requests: int = 48
    cluster_rate_rps: float = 200.0
    slo_target_s: float = 1.0
    _profile_memo: dict = field(default_factory=dict, compare=False,
                                hash=False, repr=False)
    _accuracy_memo: dict = field(default_factory=dict, compare=False,
                                 hash=False, repr=False)

    def describe(self) -> dict:
        """Cache/report identity: every field that shapes the numbers."""
        return {
            "kind": "PointEvaluator",
            "objectives": list(self.objectives),
            "model": self.model,
            "iterations": self.iterations,
            "base_seed": self.base_seed,
            "batch": self.batch,
            "accuracy_samples": self.accuracy_samples,
            "cluster_requests": self.cluster_requests,
            "cluster_rate_rps": self.cluster_rate_rps,
            "slo_target_s": self.slo_target_s,
        }

    # ------------------------------------------------------------------
    def __call__(self, point: dict, fidelity: Optional[int] = None) -> dict:
        iterations = fidelity if fidelity is not None else self.iterations
        model = str(point.get("model", self.model))
        values: dict = {}
        hw_names = {"latency_s", "energy_j", "tops_per_watt"}
        if hw_names & set(self.objectives):
            values.update(self._hardware_objectives(model, point, iterations))
        if "accuracy_psnr_db" in self.objectives:
            values["accuracy_psnr_db"] = self._accuracy_objective(
                model, point, iterations
            )
        if {"slo_attainment", "samples_per_s"} & set(self.objectives):
            values.update(self._cluster_objectives(model, point, iterations))
        return {name: float(values[name]) for name in self.objectives}

    # ------------------------------------------------------------------
    def _profile(self, spec):
        """Sparsity profile for one (possibly knob-adjusted) spec.

        Memoized on the spec fields the profile synthesis reads, so
        hardware points sharing algorithm knobs reuse one estimate.
        """
        key = point_key({
            "model": spec.name,
            **{f: getattr(spec, f) for f in _SPEC_KNOBS.values()},
        })
        if key not in self._profile_memo:
            from repro.program.cache import get_plan_cache

            # Routed through the process-wide PlanCache: concurrent
            # evaluators (and the cluster layer) pricing the same
            # knob-adjusted spec share one ConMerge synthesis.
            self._profile_memo[key] = get_plan_cache().profile(
                spec,
                seed=stable_seed(self.base_seed, "profile", spec.name),
            )
        return self._profile_memo[key]

    def _hardware_objectives(
        self, model: str, point: dict, iterations: Optional[int]
    ) -> dict:
        from repro.program.cache import get_plan_cache

        cache = get_plan_cache()
        config = config_from_point(model, point)
        spec = spec_from_point(model, point)
        # Lowering and pricing intern process-wide: a sweep that varies
        # only fleet/hardware knobs compiles each model once, and equal
        # (accelerator, plan, profile) keys replay one pricing.
        plan = cache.plan(
            spec,
            config=config,
            iterations=iterations,
            batch=self.batch,
        )
        report = cache.price(
            accelerator_from_point(point), plan, self._profile(spec)
        )
        return {
            "latency_s": report.latency_s,
            "energy_j": report.energy_j,
            "tops_per_watt": report.tops_per_watt,
        }

    def _accuracy_objective(
        self, model: str, point: dict, iterations: Optional[int]
    ) -> float:
        from repro.workloads.evaluation import evaluate_config

        config = config_from_point(model, point)
        algo_key = point_key({
            "model": model,
            "iterations": iterations,
            "samples": self.accuracy_samples,
            **{k: getattr(config, k) for k in _ALGO_KNOBS},
        })
        if algo_key not in self._accuracy_memo:
            result = evaluate_config(
                model,
                config,
                n_samples=self.accuracy_samples,
                iterations=iterations,
                label="explore",
                rng=stable_seed(self.base_seed, "accuracy", algo_key),
            )
            self._accuracy_memo[algo_key] = min(result.psnr_mean, PSNR_CAP_DB)
        return self._accuracy_memo[algo_key]

    def _cluster_objectives(
        self, model: str, point: dict, iterations: Optional[int]
    ) -> dict:
        """Fleet objectives over a synthesized trace.

        Service times come from :class:`~repro.cluster.ServiceTimeModel`,
        which prices the model's Table I spec — the algorithm knobs reach
        it only through the ablation enable flags, which is why
        :func:`~repro.explore.space.cluster_space` exposes
        ``enable_ffn_reuse`` but no algorithm *value* knobs.
        """
        from repro.cluster import (
            PoissonProcess,
            ServiceTimeModel,
            SLOPolicy,
            WorkloadMix,
            build_replicas,
            make_router,
            simulate_cluster,
            synthesize_trace,
        )

        config = config_from_point(model, point)
        ablation = {
            (True, True): "all", (True, False): "ffnr",
            (False, True): "ep", (False, False): "base",
        }[(config.enable_ffn_reuse, config.enable_eager_prediction)]
        rate = float(point.get("rate_rps", self.cluster_rate_rps))
        replicas = int(point.get("replicas", 2))
        router = str(point.get("router", "jsq"))
        scenario_key = point_key({
            "model": model, "ablation": ablation, "rate_rps": rate,
            "requests": self.cluster_requests,
        })
        trace = synthesize_trace(
            PoissonProcess(rate_rps=rate),
            self.cluster_requests,
            mix=WorkloadMix(models=(model,), ablation=ablation),
            rng=stable_seed(self.base_seed, "trace", scenario_key),
        )
        service_model = ServiceTimeModel(
            accelerator_from_point(point),
            iterations=iterations,
            profile_seed=stable_seed(self.base_seed, "profile", model),
        )
        report = simulate_cluster(
            trace,
            replicas=build_replicas(replicas, service_model=service_model),
            router=make_router(router),
            slo=SLOPolicy(latency_target_s=self.slo_target_s),
        )
        return {
            "slo_attainment": report.slo_attainment or 0.0,
            "samples_per_s": report.samples_per_s,
        }


# ----------------------------------------------------------------------
# Pareto extraction
# ----------------------------------------------------------------------
def _oriented_rows(values: list, objectives: list) -> list:
    rows = []
    for entry in values:
        row = []
        for objective in objectives:
            value = float(entry[objective.name])
            if not math.isfinite(value):
                raise ValueError(
                    f"objective {objective.name!r} is not finite: {value!r}"
                )
            row.append(objective.oriented(value))
        rows.append(row)
    return rows


def _dominates(a: list, b: list) -> bool:
    """True when ``a`` is no worse everywhere and better somewhere."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_front(values: list, objectives: list) -> list:
    """Indices of non-dominated entries, ascending.

    ``values`` is a list of ``{objective_name: value}`` dicts. Duplicate
    coordinate vectors are all kept (none dominates the other).
    """
    rows = _oriented_rows(values, objectives)
    front = []
    for i, row in enumerate(rows):
        if not any(
            _dominates(other, row) for j, other in enumerate(rows) if j != i
        ):
            front.append(i)
    return front


def knee_point(
    values: list, objectives: list, front: Optional[list] = None
) -> Optional[int]:
    """The frontier point closest to the normalized ideal corner.

    Each objective is normalized to [0, 1] over the frontier (0 = best);
    the knee minimizes the Euclidean norm, ties broken by lowest index.
    Returns ``None`` for an empty input.
    """
    if not values:
        return None
    if front is None:
        front = pareto_front(values, objectives)
    rows = _oriented_rows([values[i] for i in front], objectives)
    spans = []
    for axis in range(len(objectives)):
        column = [row[axis] for row in rows]
        low, high = min(column), max(column)
        spans.append((low, (high - low) or 1.0))
    best_index, best_norm = None, None
    for i, row in zip(front, rows):
        norm = math.sqrt(sum(
            ((value - low) / span) ** 2
            for value, (low, span) in zip(row, spans)
        ))
        if best_norm is None or norm < best_norm - 1e-12:
            best_index, best_norm = i, norm
    return best_index


__all__ = [
    "DEFAULT_OBJECTIVES",
    "OBJECTIVES",
    "Objective",
    "PSNR_CAP_DB",
    "PointEvaluator",
    "accelerator_from_point",
    "config_from_point",
    "get_objective",
    "knee_point",
    "pareto_front",
    "resolve_objectives",
    "spec_from_point",
]
