"""The exploration run's published artifact.

An :class:`ExploreReport` is everything one sweep/search produced —
space, strategy, objective contract, every evaluation (point, per-point
seed, fidelity, objective values), the Pareto frontier and the knee
point — in plain JSON-serializable types. Serialization is canonical
(:meth:`ExploreReport.to_json` sorts keys and fixes separators), and
execution accounting (cache hits, worker counts, wall time) lives
*outside* the canonical document on :attr:`ExploreReport.stats`, so two
runs of the same seeded search emit **byte-identical** reports whether
they computed or replayed from cache, serially or in parallel.

:meth:`ExploreReport.to_bench_result` projects the report onto the
:class:`repro.bench.BenchResult` schema so exploration results flow
through the same ``BENCH_<name>.json`` artifacts, baseline comparison
and CI gating as every other bench in the repo.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.report import format_table


@dataclass
class ExploreReport:
    """Aggregate outcome of one design-space exploration run."""

    space: dict = field(default_factory=dict)
    strategy: dict = field(default_factory=dict)
    objectives: list = field(default_factory=list)
    seed: int = 0
    evaluations: list = field(default_factory=list)
    frontier: list = field(default_factory=list)
    knee: Optional[str] = None
    #: Execution accounting (:class:`repro.explore.runner.RunnerStats`);
    #: intentionally not part of the canonical serialization.
    stats: Optional[object] = None

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def evaluation(self, eval_id: str) -> dict:
        """The record for one point id, at its highest fidelity.

        Multi-fidelity strategies evaluate the same point (same id) at
        several rungs; the frontier is drawn from the top rung, so
        lookups return that record, not the cheapest one.
        """
        matches = [e for e in self.evaluations if e["id"] == eval_id]
        if not matches:
            raise KeyError(eval_id)
        return max(
            matches,
            key=lambda e: -1 if e["fidelity"] is None else e["fidelity"],
        )

    def frontier_evaluations(self) -> list:
        return [self.evaluation(eval_id) for eval_id in self.frontier]

    def knee_evaluation(self) -> Optional[dict]:
        return self.evaluation(self.knee) if self.knee is not None else None

    @property
    def objective_names(self) -> list:
        return [o["name"] for o in self.objectives]

    # ------------------------------------------------------------------
    # serialization (canonical, byte-stable per seed)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "space": self.space,
            "strategy": self.strategy,
            "objectives": list(self.objectives),
            "seed": self.seed,
            "evaluations": list(self.evaluations),
            "frontier": list(self.frontier),
            "knee": self.knee,
        }

    def to_json(self) -> str:
        """Canonical JSON: key-sorted, fixed separators, trailing newline."""
        return (
            json.dumps(
                self.to_dict(),
                sort_keys=True,
                separators=(",", ":"),
                allow_nan=False,
            )
            + "\n"
        )

    @classmethod
    def from_dict(cls, data: dict) -> "ExploreReport":
        return cls(
            space=dict(data.get("space", {})),
            strategy=dict(data.get("strategy", {})),
            objectives=list(data.get("objectives", [])),
            seed=int(data.get("seed", 0)),
            evaluations=[dict(e) for e in data.get("evaluations", [])],
            frontier=list(data.get("frontier", [])),
            knee=data.get("knee"),
        )

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def _varying_knobs(self) -> list:
        """Knob columns worth printing: those not constant over the run."""
        if not self.evaluations:
            return []
        names = sorted(self.evaluations[0]["point"])
        varying = []
        for name in names:
            values = {repr(e["point"].get(name)) for e in self.evaluations}
            if len(values) > 1:
                varying.append(name)
        return varying

    @staticmethod
    def _fmt(value) -> str:
        if isinstance(value, bool):
            return "on" if value else "off"
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    def frontier_rows(self, knobs: Optional[list] = None) -> list:
        knobs = self._varying_knobs() if knobs is None else knobs
        rows = []
        for entry in self.frontier_evaluations():
            row = [entry["id"], "*" if entry["id"] == self.knee else ""]
            row += [self._fmt(entry["point"].get(k)) for k in knobs]
            row += [
                self._fmt(entry["objectives"][name])
                for name in self.objective_names
            ]
            rows.append(row)
        return rows

    def render(self) -> str:
        """Printable report: run summary plus the frontier table."""
        summary = format_table(
            ["metric", "value"],
            [
                ["strategy", self.strategy.get("strategy", "?")],
                ["seed", self.seed],
                ["dimensions", len(self.space.get("dimensions", []))],
                ["evaluations", len(self.evaluations)],
                ["frontier size", len(self.frontier)],
                ["knee point", self.knee or "-"],
            ],
            title="Design-space exploration",
        )
        knobs = self._varying_knobs()
        headers = ["point", "knee"] + knobs + [
            f"{o['name']} ({o['direction']})" for o in self.objectives
        ]
        frontier = format_table(
            headers,
            self.frontier_rows(knobs),
            title="Pareto frontier (non-dominated points)",
        )
        return summary + "\n\n" + frontier

    # ------------------------------------------------------------------
    # repro.bench projection
    # ------------------------------------------------------------------
    def to_bench_result(self, name: str, tags=("explore",)):
        """Project onto the bench schema (validates on round-trip)."""
        from repro.bench import BenchResult

        result = BenchResult(
            name=name,
            model=",".join(sorted({
                str(e["point"].get("model", "")) for e in self.evaluations
            } - {""})) or "mix",
            tags=tuple(tags),
        )
        result.add_metric(
            "n_evaluations", float(len(self.evaluations)),
            direction="higher_better", tolerance=0.0,
        )
        result.add_metric(
            "frontier_size", float(len(self.frontier)),
            direction="two_sided", tolerance=0.0,
        )
        frontier = self.frontier_evaluations()
        for objective in self.objectives:
            values = [e["objectives"][objective["name"]] for e in frontier]
            if not values:
                continue
            best = (
                min(values) if objective["direction"] == "lower_better"
                else max(values)
            )
            result.add_metric(
                f"frontier_best.{objective['name']}", best,
                unit=objective.get("unit", ""),
                direction=objective["direction"], tolerance=0.05,
            )
        knee = self.knee_evaluation()
        if knee is not None:
            for objective in self.objectives:
                result.add_metric(
                    f"knee.{objective['name']}",
                    knee["objectives"][objective["name"]],
                    unit=objective.get("unit", ""),
                    direction=objective["direction"], tolerance=0.05,
                )
        knobs = self._varying_knobs()
        result.add_series(
            "Pareto frontier (non-dominated points)",
            ["point", "knee"] + knobs + self.objective_names,
            self.frontier_rows(knobs),
        )
        result.add_note(
            "strategy: " + json.dumps(self.strategy, sort_keys=True)
        )
        return result


__all__ = ["ExploreReport"]
