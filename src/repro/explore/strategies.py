"""Search strategies: grid, seeded random, and successive halving.

Strategies speak an ask/tell protocol driven by
:class:`repro.explore.runner.ExploreRunner`:

- :meth:`start(space, rng)` — bind the space and a seeded generator;
- :meth:`ask()` — the next batch of points (``None`` when exhausted);
- :meth:`fidelity()` — the iteration budget for the current batch
  (``None`` = the evaluator's default);
- :meth:`tell(records)` — evaluation results for the last batch, which
  adaptive strategies (successive halving) use to promote survivors.

All decisions are pure functions of the seed and the observed objective
values, so serial, parallel and cache-resumed runs walk identical point
sequences.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.explore.objectives import Objective, get_objective


class GridSearch:
    """Exhaustive cross product of per-dimension grids."""

    name = "grid"

    def __init__(self, levels=3):
        self.levels = levels
        self._pending: Optional[list] = None

    def start(self, space, rng) -> None:
        self._pending = [space.grid(self.levels)]

    def ask(self) -> Optional[list]:
        if not self._pending:
            return None
        return self._pending.pop(0)

    def fidelity(self) -> Optional[int]:
        return None

    def tell(self, records) -> None:
        pass

    def describe(self) -> dict:
        levels = self.levels
        if isinstance(levels, dict):
            levels = {str(k): int(v) for k, v in sorted(levels.items())}
        return {"strategy": self.name, "levels": levels}


class RandomSearch:
    """``budget`` points sampled from the runner's seeded stream."""

    name = "random"

    def __init__(self, budget: int = 16):
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.budget = budget
        self._pending: Optional[list] = None

    def start(self, space, rng) -> None:
        self._pending = [space.sample_batch(self.budget, rng)]

    def ask(self) -> Optional[list]:
        if not self._pending:
            return None
        return self._pending.pop(0)

    def fidelity(self) -> Optional[int]:
        return None

    def tell(self, records) -> None:
        pass

    def describe(self) -> dict:
        return {"strategy": self.name, "budget": self.budget}


class SuccessiveHalving:
    """Rung-based pruning: evaluate cheap, promote the best, spend deep.

    ``budget`` random points are evaluated at the first (lowest) fidelity;
    after each rung the top ``1/eta`` fraction by ``rank_by`` survives to
    the next fidelity. Fidelities are iteration counts handed to the
    evaluator, so early rungs price truncated schedules.
    """

    name = "halving"

    def __init__(
        self,
        budget: int = 16,
        eta: float = 2.0,
        fidelities=(4, 8, 12),
        rank_by: str = "latency_s",
    ):
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if eta <= 1.0:
            raise ValueError(f"eta must be > 1, got {eta}")
        if not fidelities:
            raise ValueError("need at least one fidelity rung")
        if list(fidelities) != sorted(fidelities):
            raise ValueError(f"fidelities must ascend, got {fidelities}")
        self.budget = budget
        self.eta = float(eta)
        self.fidelities = tuple(int(f) for f in fidelities)
        # A registered objective name or an ad-hoc Objective instance.
        self._objective = (
            rank_by if isinstance(rank_by, Objective)
            else get_objective(rank_by)
        )
        self.rank_by = self._objective.name
        self._rung = 0
        self._survivors: Optional[list] = None
        self._done = False

    def start(self, space, rng) -> None:
        self._survivors = space.sample_batch(self.budget, rng)
        self._rung = 0
        self._done = False

    def ask(self) -> Optional[list]:
        if self._done or not self._survivors:
            return None
        return list(self._survivors)

    def fidelity(self) -> Optional[int]:
        return self.fidelities[self._rung]

    def tell(self, records) -> None:
        """Rank the rung and promote the top ``1/eta`` fraction.

        ``records`` line up with the batch returned by :meth:`ask` (the
        runner preserves order). Ties keep submission order (stable sort).
        """
        last_rung = self._rung == len(self.fidelities) - 1
        if last_rung:
            self._done = True
            return
        keep = max(1, math.ceil(len(records) / self.eta))
        ranked = sorted(
            range(len(records)),
            key=lambda i: self._objective.oriented(
                float(records[i].objectives[self.rank_by])
            ),
        )
        chosen = sorted(ranked[:keep])
        self._survivors = [self._survivors[i] for i in chosen]
        self._rung += 1

    def describe(self) -> dict:
        return {
            "strategy": self.name,
            "budget": self.budget,
            "eta": self.eta,
            "fidelities": list(self.fidelities),
            "rank_by": self.rank_by,
        }


STRATEGIES = {
    "grid": GridSearch,
    "random": RandomSearch,
    "halving": SuccessiveHalving,
}


def make_strategy(name: str, **kwargs):
    """Instantiate a strategy by CLI name."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; known: {', '.join(sorted(STRATEGIES))}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "GridSearch",
    "RandomSearch",
    "STRATEGIES",
    "SuccessiveHalving",
    "make_strategy",
]
