"""Typed parameter spaces for design-space exploration.

A :class:`SearchSpace` is an ordered set of named dimensions, each one of

- :class:`Categorical` — an explicit value list (ablation switches, DRAM
  technologies, routers, model-zoo entries);
- :class:`IntRange` — inclusive integer bounds (DSC counts, FFN-Reuse
  period ``N``, log-domain bit widths), optionally log-scaled sampling;
- :class:`FloatRange` — inclusive float bounds (memory bandwidth, GSC
  capacity, top-k keep ratios), optionally log-scaled.

Everything is deterministic: :meth:`SearchSpace.sample` draws dimensions
in declaration order from one explicit ``numpy.random.Generator`` (same
seed → same points), :meth:`SearchSpace.grid` enumerates the cross
product in declaration order, and :func:`point_key` /
:func:`point_id` give every point a canonical byte-stable encoding the
runner's content-addressed cache and the report key on.

:func:`default_space` declares the repo-wide co-design space over
hardware knobs (generalizing :class:`~repro.hw.accelerator.ExionAccelerator`
beyond the three Table II factories), algorithm ablations, and — via
:func:`cluster_space` — workload/fleet scenario knobs.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.workloads.generator import as_rng


def _is_number(value) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating)) and (
        not isinstance(value, bool)
    )


@dataclass(frozen=True)
class Categorical:
    """An explicit, ordered list of admissible values."""

    name: str
    values: tuple

    def __post_init__(self):
        if not self.values:
            raise ValueError(f"dimension {self.name!r} needs >= 1 value")
        object.__setattr__(self, "values", tuple(self.values))

    def sample(self, rng: np.random.Generator):
        return self.values[int(rng.integers(len(self.values)))]

    def grid(self, levels: int = 0) -> list:
        """All values; ``levels`` is ignored (categoricals don't subsample)."""
        return list(self.values)

    def contains(self, value) -> bool:
        return value in self.values

    def coerce(self, value):
        """The canonical member equal to ``value`` (24.0 -> 24)."""
        return self.values[self.values.index(value)]

    def to_dict(self) -> dict:
        return {"kind": "categorical", "name": self.name,
                "values": list(self.values)}


@dataclass(frozen=True)
class IntRange:
    """Inclusive integer bounds, optionally sampled on a log scale."""

    name: str
    low: int
    high: int
    log: bool = False

    def __post_init__(self):
        if self.low > self.high:
            raise ValueError(
                f"dimension {self.name!r}: low {self.low} > high {self.high}"
            )
        if self.log and self.low <= 0:
            raise ValueError(
                f"dimension {self.name!r}: log scale needs low > 0"
            )

    def sample(self, rng: np.random.Generator) -> int:
        if self.log:
            value = math.exp(
                rng.uniform(math.log(self.low), math.log(self.high))
            )
            return int(min(max(round(value), self.low), self.high))
        return int(rng.integers(self.low, self.high + 1))

    def grid(self, levels: int = 3) -> list:
        if levels <= 1 or self.high == self.low:
            return [self.low]
        if self.log:
            raw = np.geomspace(self.low, self.high, num=levels)
        else:
            raw = np.linspace(self.low, self.high, num=levels)
        seen: list = []
        for value in raw:
            value = int(min(max(round(float(value)), self.low), self.high))
            if value not in seen:
                seen.append(value)
        return seen

    def contains(self, value) -> bool:
        return (
            _is_number(value)
            and float(value) == int(value)
            and self.low <= int(value) <= self.high
        )

    def coerce(self, value) -> int:
        """Normalize integral floats (24.0 -> 24) so a point's canonical
        encoding — and with it the cache key and report id — does not
        depend on the lexical type it arrived with."""
        return int(value)

    def to_dict(self) -> dict:
        return {"kind": "int", "name": self.name, "low": self.low,
                "high": self.high, "log": self.log}


@dataclass(frozen=True)
class FloatRange:
    """Inclusive float bounds, optionally sampled on a log scale."""

    name: str
    low: float
    high: float
    log: bool = False

    def __post_init__(self):
        if self.low > self.high:
            raise ValueError(
                f"dimension {self.name!r}: low {self.low} > high {self.high}"
            )
        if self.log and self.low <= 0:
            raise ValueError(
                f"dimension {self.name!r}: log scale needs low > 0"
            )

    def sample(self, rng: np.random.Generator) -> float:
        if self.log:
            return float(math.exp(
                rng.uniform(math.log(self.low), math.log(self.high))
            ))
        return float(rng.uniform(self.low, self.high))

    def grid(self, levels: int = 3) -> list:
        if levels <= 1 or self.low == self.high:
            return [float(self.low)]
        if self.log:
            raw = np.geomspace(self.low, self.high, num=levels)
        else:
            raw = np.linspace(self.low, self.high, num=levels)
        return [float(v) for v in raw]

    def contains(self, value) -> bool:
        return _is_number(value) and self.low <= float(value) <= self.high

    def coerce(self, value) -> float:
        """Normalize ints (51 -> 51.0) for a type-stable encoding."""
        return float(value)

    def to_dict(self) -> dict:
        return {"kind": "float", "name": self.name, "low": float(self.low),
                "high": float(self.high), "log": self.log}


_DIMENSION_KINDS = {"categorical": Categorical, "int": IntRange,
                    "float": FloatRange}


def dimension_from_dict(data: dict):
    """Inverse of each dimension's ``to_dict``."""
    kind = data.get("kind")
    if kind == "categorical":
        return Categorical(data["name"], tuple(data["values"]))
    if kind == "int":
        return IntRange(data["name"], int(data["low"]), int(data["high"]),
                        bool(data.get("log", False)))
    if kind == "float":
        return FloatRange(data["name"], float(data["low"]),
                          float(data["high"]), bool(data.get("log", False)))
    raise ValueError(
        f"unknown dimension kind {kind!r}; "
        f"known: {', '.join(sorted(_DIMENSION_KINDS))}"
    )


class SearchSpace:
    """An ordered collection of named dimensions."""

    def __init__(self, dimensions):
        self.dimensions = list(dimensions)
        names = [d.name for d in self.dimensions]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate dimension names {dupes}")

    def __len__(self) -> int:
        return len(self.dimensions)

    def __contains__(self, name: str) -> bool:
        return any(d.name == name for d in self.dimensions)

    @property
    def names(self) -> list:
        return [d.name for d in self.dimensions]

    def dimension(self, name: str):
        for dim in self.dimensions:
            if dim.name == name:
                return dim
        raise KeyError(
            f"unknown dimension {name!r}; known: {', '.join(self.names)}"
        )

    # ------------------------------------------------------------------
    # point generation
    # ------------------------------------------------------------------
    def sample(self, rng: Union[int, np.random.Generator]) -> dict:
        """One point, dimensions drawn in declaration order."""
        rng = as_rng(rng)
        return {dim.name: dim.sample(rng) for dim in self.dimensions}

    def sample_batch(
        self, n: int, rng: Union[int, np.random.Generator]
    ) -> list:
        """``n`` points from one stream; same seed → same points."""
        rng = as_rng(rng)
        return [self.sample(rng) for _ in range(n)]

    def grid(self, levels=3) -> list:
        """Cross product of per-dimension grids, declaration-order-major.

        ``levels`` is an int applied to every range dimension, or a
        ``{name: levels}`` dict for per-dimension control.
        """
        per_dim = []
        for dim in self.dimensions:
            if isinstance(levels, dict):
                dim_levels = levels.get(dim.name, 3)
            else:
                dim_levels = levels
            per_dim.append(dim.grid(dim_levels))
        points = [{}]
        for dim, values in zip(self.dimensions, per_dim):
            points = [
                {**point, dim.name: value}
                for point in points
                for value in values
            ]
        return points

    # ------------------------------------------------------------------
    # validation / serialization
    # ------------------------------------------------------------------
    def validate(self, point: dict) -> dict:
        """Raise ``ValueError`` unless ``point`` lies inside the space."""
        for name in point:
            if name not in self:
                raise ValueError(
                    f"point has unknown dimension {name!r}; "
                    f"known: {', '.join(self.names)}"
                )
        for dim in self.dimensions:
            if dim.name not in point:
                raise ValueError(f"point is missing dimension {dim.name!r}")
            if not dim.contains(point[dim.name]):
                raise ValueError(
                    f"value {point[dim.name]!r} is outside dimension "
                    f"{dim.name!r} ({dim.to_dict()})"
                )
        return point

    def normalize(self, point: dict) -> dict:
        """Validate, then coerce each value to its dimension's canonical
        type (24.0 -> 24 for int ranges), so a point's encoding — and the
        cache key / report id built on it — is independent of how its
        values were spelled (space file, ``--set``, generator output)."""
        self.validate(point)
        return {
            dim.name: dim.coerce(point[dim.name])
            for dim in self.dimensions
        }

    def restrict(self, name: str, values) -> "SearchSpace":
        """A copy with one dimension pinned to an explicit value list."""
        dim = self.dimension(name)
        coerced = []
        for value in values:
            if not dim.contains(value):
                raise ValueError(
                    f"value {value!r} is outside dimension {name!r} "
                    f"({dim.to_dict()})"
                )
            coerced.append(dim.coerce(value))
        return SearchSpace([
            Categorical(d.name, tuple(coerced)) if d.name == name else d
            for d in self.dimensions
        ])

    def to_dict(self) -> dict:
        return {"dimensions": [d.to_dict() for d in self.dimensions]}

    @classmethod
    def from_dict(cls, data: dict) -> "SearchSpace":
        return cls([dimension_from_dict(d) for d in data["dimensions"]])


# ----------------------------------------------------------------------
# canonical point encoding (what the cache and the report key on)
# ----------------------------------------------------------------------
def canonicalize(value):
    """Normalize numpy scalars so encoding is type-stable."""
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, dict):
        return {str(k): canonicalize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    return value


def point_key(point: dict) -> str:
    """Canonical byte-stable encoding of one point."""
    return json.dumps(canonicalize(point), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def point_id(point: dict) -> str:
    """Short content hash of the canonical encoding."""
    return hashlib.sha256(point_key(point).encode("utf-8")).hexdigest()[:12]


def stable_seed(*parts) -> int:
    """A deterministic 31-bit seed from arbitrary string/int parts.

    Unlike ``hash()``, this is stable across processes (no
    ``PYTHONHASHSEED`` dependence), which is what keeps parallel workers
    and resumed runs on identical streams.
    """
    text = ":".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % (2**31)


# ----------------------------------------------------------------------
# the repo-wide co-design space
# ----------------------------------------------------------------------
def hardware_dimensions() -> list:
    """Table II generalized: DSC count, memory system, GSC capacity."""
    return [
        IntRange("num_dscs", 2, 48),
        Categorical("dram", ("lpddr5", "gddr6", "hbm2e")),
        FloatRange("bandwidth_gbps", 51.0, 1935.0, log=True),
        FloatRange("gsc_mb", 8.0, 96.0, log=True),
    ]


def ablation_dimensions() -> list:
    """Algorithm knobs: FFN-Reuse, eager prediction, log-domain bits."""
    return [
        Categorical("enable_ffn_reuse", (True, False)),
        IntRange("sparse_iters_n", 0, 8),
        FloatRange("ffn_target_sparsity", 0.5, 0.97),
        FloatRange("top_k_ratio", 0.1, 1.0),
        FloatRange("q_threshold", 0.0, 2.0),
        IntRange("prediction_bits", 4, 16),
    ]


def default_space(model: str = "dit") -> SearchSpace:
    """Hardware + ablation knobs for one benchmark model."""
    return SearchSpace(
        [Categorical("model", (model,))]
        + hardware_dimensions()
        + ablation_dimensions()
    )


def cluster_space(model: str = "dit") -> SearchSpace:
    """The fleet scenario space: hardware knobs plus workload/router knobs.

    Algorithm *value* knobs are deliberately absent: cluster service
    times are priced from the model's Table I spec, which the algorithm
    configuration reaches only through the ablation enable flag.
    """
    return SearchSpace(
        [Categorical("model", (model,))]
        + hardware_dimensions()
        + [
            Categorical("enable_ffn_reuse", (True, False)),
            IntRange("replicas", 1, 8),
            Categorical("router", ("round_robin", "jsq", "cache_affinity")),
            FloatRange("rate_rps", 25.0, 800.0, log=True),
        ]
    )


__all__ = [
    "Categorical",
    "FloatRange",
    "IntRange",
    "SearchSpace",
    "ablation_dimensions",
    "canonicalize",
    "cluster_space",
    "default_space",
    "dimension_from_dict",
    "hardware_dimensions",
    "point_id",
    "point_key",
    "stable_seed",
]
