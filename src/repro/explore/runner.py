"""Parallel evaluation engine with a content-addressed on-disk cache.

:class:`ExploreRunner` drives one search strategy over one space:

- evaluators that declare a ``seed`` parameter get an **explicit
  per-point seed** derived from the runner seed and the point's
  canonical encoding (:func:`~repro.explore.space.stable_seed`), so
  results do not depend on evaluation order, worker count, or which
  points were cache hits. Seedless evaluators (e.g.
  :class:`~repro.explore.objectives.PointEvaluator`, which derives its
  streams from its own ``base_seed`` plus the knobs each objective
  depends on) are called without one, and their records carry
  ``seed: null`` — so their cache entries are shared across runner
  seeds instead of being spuriously re-evaluated;
- evaluations fan out over worker processes
  (``concurrent.futures.ProcessPoolExecutor``) when ``workers > 1``;
  one pool lives for the whole run (worker-side evaluator state, e.g.
  accuracy memoization, survives across rungs) and ``executor.map``
  preserves submission order, so parallel and serial runs produce
  identical reports;
- with ``cache_dir`` set, each evaluation is stored under the SHA-256 of
  its full identity — canonical point, fidelity, per-point seed (when
  used), and the evaluator's :meth:`describe` fingerprint — so identical
  points are never re-evaluated across sweeps and interrupted runs
  resume for free. Writes are atomic (temp file + ``os.replace``), which
  keeps concurrent sweeps sharing one cache directory safe.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from repro.explore.objectives import (
    Objective,
    PointEvaluator,
    get_objective,
    knee_point,
    pareto_front,
)
from repro.explore.report import ExploreReport
from repro.explore.space import (
    SearchSpace,
    canonicalize,
    point_id,
    point_key,
    stable_seed,
)
from repro.workloads.generator import as_rng


@dataclass
class EvaluationRecord:
    """One evaluated point: identity, seed, fidelity, objective values.

    ``seed`` is ``None`` when the evaluator does not take one (its
    randomness, if any, is self-managed).
    """

    point: dict
    id: str
    seed: Optional[int]
    fidelity: Optional[int]
    objectives: dict
    cached: bool = False

    def to_dict(self) -> dict:
        """Canonical serialization (cache provenance deliberately absent:
        hit-vs-miss must not change report bytes)."""
        return {
            "id": self.id,
            "point": canonicalize(self.point),
            "seed": self.seed,
            "fidelity": self.fidelity,
            "objectives": {
                k: float(v) for k, v in sorted(self.objectives.items())
            },
        }


@dataclass
class RunnerStats:
    """Execution accounting, reported next to (never inside) the canonical
    report so cache hits cannot perturb its bytes."""

    evaluated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1
    rounds: int = 0

    @property
    def hit_rate(self) -> float:
        if self.evaluated == 0:
            return 0.0
        return self.cache_hits / self.evaluated

    def to_dict(self) -> dict:
        # Key-sorted so the stats block (which sits outside the canonical
        # report serialization) still diffs stably between runs.
        return dict(sorted({
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "workers": self.workers,
            "rounds": self.rounds,
        }.items()))


#: Per-worker evaluator installed by :func:`_init_worker`. Sending the
#: evaluator once per worker (instead of once per payload) lets its
#: in-process memoization — e.g. PointEvaluator's per-algorithm-config
#: accuracy cache — keep working across the points that worker draws.
_WORKER_EVALUATOR = None
_WORKER_TAKES_SEED = False


def _init_worker(evaluator: Callable, takes_seed: bool) -> None:
    global _WORKER_EVALUATOR, _WORKER_TAKES_SEED
    _WORKER_EVALUATOR = evaluator
    _WORKER_TAKES_SEED = takes_seed


def _evaluate_in_worker(payload: tuple) -> dict:
    """Worker entry point (top-level so it pickles by module path)."""
    point, fidelity, seed = payload
    if _WORKER_TAKES_SEED:
        return _WORKER_EVALUATOR(point, fidelity, seed=seed)
    return _WORKER_EVALUATOR(point, fidelity)


def _accepts_seed(evaluator: Callable) -> bool:
    """Does the evaluator declare a ``seed`` parameter (or ``**kwargs``)?"""
    try:
        parameters = inspect.signature(evaluator).parameters
    except (TypeError, ValueError):
        return False
    return "seed" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


def _evaluator_fingerprint(evaluator: Callable) -> dict:
    if hasattr(evaluator, "describe"):
        return canonicalize(evaluator.describe())
    return {
        "kind": f"{getattr(evaluator, '__module__', '?')}."
                f"{getattr(evaluator, '__qualname__', repr(evaluator))}"
    }


class ExploreRunner:
    """Evaluate a strategy's proposals over a space, Pareto-prune, report."""

    def __init__(
        self,
        space: SearchSpace,
        strategy,
        evaluator: Optional[Callable] = None,
        objectives=None,
        workers: int = 1,
        cache_dir=None,
        seed: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.space = space
        self.strategy = strategy
        self.evaluator = (
            evaluator if evaluator is not None else PointEvaluator()
        )
        if objectives is None:
            names = getattr(self.evaluator, "objectives", None)
            if names is None:
                raise ValueError(
                    "pass objectives= when the evaluator does not "
                    "declare an .objectives tuple"
                )
            objectives = names
        # Accept registered names and ad-hoc Objective instances alike
        # (bench sweeps define their own axes).
        self.objectives = [
            o if isinstance(o, Objective) else get_objective(o)
            for o in objectives
        ]
        rank_by = getattr(strategy, "rank_by", None)
        if rank_by is not None and rank_by not in {
            o.name for o in self.objectives
        }:
            raise ValueError(
                f"strategy ranks by {rank_by!r}, which is not among the "
                f"run's objectives "
                f"({', '.join(o.name for o in self.objectives)})"
            )
        self.workers = workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.seed = int(seed)
        self.stats = RunnerStats(workers=workers)
        self._takes_seed = _accepts_seed(self.evaluator)
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------
    def _cache_key(self, point: dict, fidelity: Optional[int],
                   seed: Optional[int]) -> str:
        identity = json.dumps(
            {
                "evaluator": _evaluator_fingerprint(self.evaluator),
                "fidelity": fidelity,
                "objectives": [o.name for o in self.objectives],
                "point": canonicalize(point),
                "seed": seed,
            },
            sort_keys=True, separators=(",", ":"), allow_nan=False,
        )
        return hashlib.sha256(identity.encode("utf-8")).hexdigest()

    def _cache_path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.json"

    def _cache_load(self, key: str) -> Optional[dict]:
        if self.cache_dir is None:
            return None
        path = self._cache_path(key)
        if not path.is_file():
            return None
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None  # torn write from a crashed run: re-evaluate
        objectives = data.get("objectives")
        if not isinstance(objectives, dict) or set(objectives) != {
            o.name for o in self.objectives
        }:
            return None
        return {k: float(v) for k, v in objectives.items()}

    def _cache_store(self, key: str, record: EvaluationRecord) -> None:
        if self.cache_dir is None:
            return
        path = self._cache_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "key": key,
                "point": canonicalize(record.point),
                "seed": record.seed,
                "fidelity": record.fidelity,
                "objectives": {
                    k: float(v)
                    for k, v in sorted(record.objectives.items())
                },
            },
            sort_keys=True, separators=(",", ":"), allow_nan=False,
        )
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(payload + "\n", encoding="utf-8")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _evaluate_serial(self, point: dict, fidelity: Optional[int],
                         seed: Optional[int]) -> dict:
        if self._takes_seed:
            return self.evaluator(point, fidelity, seed=seed)
        return self.evaluator(point, fidelity)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """One pool for the whole run: workers (and their evaluator
        state/memos) survive across strategy rungs."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self.evaluator, self._takes_seed),
            )
        return self._pool

    def _evaluate_batch(self, points: list, fidelity: Optional[int]) -> list:
        records = []
        misses = []  # (index into records, cache key, payload)
        for point in points:
            point = self.space.normalize(point)
            seed = (
                stable_seed(self.seed, "point", point_key(point))
                if self._takes_seed else None
            )
            key = self._cache_key(point, fidelity, seed)
            cached = self._cache_load(key)
            record = EvaluationRecord(
                point=dict(point),
                id=point_id(point),
                seed=seed,
                fidelity=fidelity,
                objectives=cached or {},
                cached=cached is not None,
            )
            if cached is None:
                misses.append((len(records), key, (point, fidelity, seed)))
            records.append(record)

        if misses:
            payloads = [payload for _, _, payload in misses]
            if self.workers > 1 and len(payloads) > 1:
                outcomes = list(
                    self._ensure_pool().map(_evaluate_in_worker, payloads)
                )
            else:
                outcomes = [self._evaluate_serial(*p) for p in payloads]
            for (index, key, _), objectives in zip(misses, outcomes):
                records[index].objectives = {
                    k: float(v) for k, v in objectives.items()
                }
                self._cache_store(key, records[index])

        self.stats.evaluated += len(records)
        self.stats.cache_misses += len(misses)
        self.stats.cache_hits += len(records) - len(misses)
        return records

    # ------------------------------------------------------------------
    def run(self) -> ExploreReport:
        """Drive the strategy to exhaustion; return the canonical report."""
        self.stats = RunnerStats(workers=self.workers)
        self.strategy.start(self.space, as_rng(self.seed))
        records: list = []
        try:
            while True:
                batch = self.strategy.ask()
                if batch is None:
                    break
                if batch:
                    fidelity = self.strategy.fidelity()
                    batch_records = self._evaluate_batch(batch, fidelity)
                    self.strategy.tell(batch_records)
                    records.extend(batch_records)
                    self.stats.rounds += 1
                else:
                    self.strategy.tell([])
        finally:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None

        pool = final_rung(records)
        values = [r.objectives for r in pool]
        front = pareto_front(values, self.objectives)
        knee = knee_point(values, self.objectives, front=front)
        report = ExploreReport(
            space=self.space.to_dict(),
            strategy=self.strategy.describe(),
            objectives=[o.to_dict() for o in self.objectives],
            seed=self.seed,
            evaluations=[r.to_dict() for r in records],
            frontier=[pool[i].id for i in front],
            knee=pool[knee].id if knee is not None else None,
        )
        report.stats = self.stats
        return report


def final_rung(records: list) -> list:
    """The records the frontier is drawn from.

    Multi-fidelity strategies re-evaluate survivors at rising iteration
    counts; comparing objectives across fidelities would be
    apples-to-oranges, so only the highest-fidelity rung competes. For
    single-fidelity strategies (``fidelity=None`` throughout) every
    record competes.
    """
    fidelities = [r.fidelity for r in records if r.fidelity is not None]
    if not fidelities:
        return list(records)
    top = max(fidelities)
    return [r for r in records if r.fidelity == top]


__all__ = [
    "EvaluationRecord",
    "ExploreRunner",
    "RunnerStats",
    "final_rung",
]
