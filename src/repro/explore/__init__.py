"""Parallel design-space exploration and autotuning with Pareto reporting.

The paper's headline results are points in a co-design space — Table II
hardware configurations, FFN-Reuse on/off, eager-prediction sparsity
targets, log-domain quantization settings. This package turns every
existing layer into a searchable space and makes "which config wins?" a
one-command answer:

- :mod:`repro.explore.space` — typed parameter spaces (categorical /
  int / float / log-scale) over hardware knobs (DSC count, memory
  bandwidth, GSC capacity), algorithm ablations, and fleet scenarios,
  with canonical byte-stable point encodings;
- :mod:`repro.explore.strategies` — grid, seeded random, and
  successive-halving search behind one ask/tell protocol;
- :mod:`repro.explore.objectives` — latency/energy/accuracy/SLO
  objectives computed through :mod:`repro.hw`,
  :mod:`repro.workloads.evaluation` and :mod:`repro.cluster`, plus
  Pareto-frontier extraction (dominated-point pruning and knee-point
  selection);
- :mod:`repro.explore.runner` — multiprocessing fan-out with explicit
  per-point seeds and a content-addressed on-disk cache (identical
  points are never re-evaluated across sweeps; runs resume for free);
- :mod:`repro.explore.report` — the canonical byte-stable JSON artifact,
  a rendered frontier table, and the projection onto the
  :mod:`repro.bench` schema.

Quickstart::

    from repro.explore import (
        ExploreRunner, PointEvaluator, RandomSearch, default_space,
    )

    runner = ExploreRunner(
        default_space("dit"),
        RandomSearch(budget=16),
        PointEvaluator(iterations=10),
        workers=4,
        cache_dir=".explore_cache",
        seed=0,
    )
    report = runner.run()
    print(report.render())

Everything is deterministic per seed: serial and parallel runs produce
identical frontiers, and a re-run against a warm cache emits the exact
same bytes without recomputing anything. See
``benchmarks/bench_explore_pareto.py`` for the gated smoke sweep and
``python -m repro explore`` for the CLI.
"""

from repro.explore.objectives import (
    DEFAULT_OBJECTIVES,
    OBJECTIVES,
    Objective,
    PointEvaluator,
    accelerator_from_point,
    config_from_point,
    get_objective,
    knee_point,
    pareto_front,
    resolve_objectives,
    spec_from_point,
)
from repro.explore.report import ExploreReport
from repro.explore.runner import (
    EvaluationRecord,
    ExploreRunner,
    RunnerStats,
    final_rung,
)
from repro.explore.space import (
    Categorical,
    FloatRange,
    IntRange,
    SearchSpace,
    cluster_space,
    default_space,
    point_id,
    point_key,
    stable_seed,
)
from repro.explore.strategies import (
    STRATEGIES,
    GridSearch,
    RandomSearch,
    SuccessiveHalving,
    make_strategy,
)

__all__ = [
    "Categorical",
    "DEFAULT_OBJECTIVES",
    "EvaluationRecord",
    "ExploreReport",
    "ExploreRunner",
    "FloatRange",
    "GridSearch",
    "IntRange",
    "OBJECTIVES",
    "Objective",
    "PointEvaluator",
    "RandomSearch",
    "RunnerStats",
    "STRATEGIES",
    "SearchSpace",
    "SuccessiveHalving",
    "accelerator_from_point",
    "cluster_space",
    "config_from_point",
    "default_space",
    "final_rung",
    "get_objective",
    "knee_point",
    "make_strategy",
    "pareto_front",
    "point_id",
    "point_key",
    "resolve_objectives",
    "spec_from_point",
    "stable_seed",
]
