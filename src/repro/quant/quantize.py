"""Symmetric fixed-point quantization helpers.

EXION's datapath uses INT mixed precision: 12-bit MMUL operands in the
SDUE/EPRE and 16- or 32-bit arithmetic in the CFSE (paper Table I,
Section V-A "post-training quantization, reducing MMUL operations to
12-bit INT"). Quantization here is *fake-quant*: values are rounded to the
integer grid and carried as floats, so every downstream module observes
exactly the precision the hardware would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Datapath widths from the paper.
MMUL_BITS = 12  # SDUE / EPRE operands
SIMD_BITS = 16  # CFSE two-way mode
ACCUM_BITS = 32  # CFSE one-way mode / accumulators


@dataclass(frozen=True)
class QuantSpec:
    """Quantization parameters for one tensor."""

    bits: int
    scale: float

    @property
    def qmax(self) -> int:
        return (1 << (self.bits - 1)) - 1


def quantize(x: np.ndarray, bits: int) -> tuple[np.ndarray, QuantSpec]:
    """Quantize to signed integers with a per-tensor symmetric scale."""
    if not 2 <= bits <= 32:
        raise ValueError("bits must be in [2, 32]")
    x = np.asarray(x, dtype=np.float64)
    qmax = (1 << (bits - 1)) - 1
    max_abs = float(np.max(np.abs(x))) if x.size else 0.0
    scale = max_abs / qmax if max_abs > 0.0 else 1.0
    ints = np.clip(np.round(x / scale), -qmax, qmax).astype(np.int64)
    return ints, QuantSpec(bits=bits, scale=scale)


def dequantize(ints: np.ndarray, spec: QuantSpec) -> np.ndarray:
    """Back to the float domain."""
    return np.asarray(ints, dtype=np.float64) * spec.scale


def fake_quantize(x: np.ndarray, bits: int) -> np.ndarray:
    """Round-trip through the integer grid (quantize then dequantize)."""
    ints, spec = quantize(x, bits)
    return dequantize(ints, spec)


def quantization_error(x: np.ndarray, bits: int) -> float:
    """RMS error introduced by fake-quantizing ``x``."""
    x = np.asarray(x, dtype=np.float64)
    return float(np.sqrt(np.mean((x - fake_quantize(x, bits)) ** 2)))


def apply_ptq(model, mmul_bits: int = MMUL_BITS) -> None:
    """Fake-quantize every MMUL weight of a benchmark model, in place.

    Covers the transformer blocks' QKV/output projections and FFN linears,
    the ResBlock convolutions, and the network's projection layers —
    everything the SDUE executes. Call once after :func:`build_model`;
    activation quantization is a pipeline concern (``activation_bits``).
    """
    network = model.network
    linears = [network.time_mlp1, network.time_mlp2, network.out_proj]
    if getattr(network, "_is_unet", False):
        linears.extend([network.down_proj, network.up_proj])
    for block in network.blocks:
        attns = [block.self_attn]
        if block.cross_attn is not None:
            attns.append(block.cross_attn)
        for attn in attns:
            linears.extend([attn.wq, attn.wk, attn.wv, attn.wo])
        linears.extend([block.ffn.linear1, block.ffn.linear2])
    for linear in linears:
        linear.weight = fake_quantize(linear.weight, mmul_bits)
    for resblock in network.resblocks:
        resblock.conv1.weight = fake_quantize(resblock.conv1.weight, mmul_bits)
        resblock.conv2.weight = fake_quantize(resblock.conv2.weight, mmul_bits)
        resblock.time_proj = fake_quantize(resblock.time_proj, mmul_bits)
