"""Post-training quantization matching the EXION datapath.

The hardware runs MMUL operands at INT12 (SDUE and EPRE) while the CFSE
computes special functions at INT16/INT32 (paper Table I footnote 7 and
Section V-A). :func:`apply_ptq` fake-quantizes a model's weights in place;
activation quantization is applied by :class:`repro.core.pipeline.ExionPipeline`
via ``activation_bits``.
"""

from repro.quant.quantize import (
    QuantSpec,
    apply_ptq,
    dequantize,
    fake_quantize,
    quantize,
)

__all__ = ["QuantSpec", "apply_ptq", "dequantize", "fake_quantize", "quantize"]
