"""The serving front door: queue, schedule, batch, account.

:class:`ExionServer` ties the serving layer together: clients
:meth:`~ExionServer.submit` generation requests, the
:class:`~repro.serve.scheduler.Scheduler` coalesces them into
micro-batches under the configured :class:`~repro.serve.scheduler.BatchingPolicy`,
and each batch runs through one
:class:`~repro.serve.batched.BatchedPipeline` drawn from the
:class:`~repro.serve.cache.ThresholdCache`. Results come back as
:class:`~repro.serve.request.RequestResult` records carrying the same
sample and statistics a sequential ``ExionPipeline.generate()`` call
would have produced, plus serving metadata (batch size, queue wait,
service time).

The server is synchronous: :meth:`step` serves at most one micro-batch
and :meth:`run_until_drained` flushes the queue. This keeps behavior
deterministic and testable while modelling exactly the batching dynamics
(coalescing, max-wait dispatch, cross-request cache reuse) a concurrent
front end would exhibit.

Two hooks let the cluster simulator (:mod:`repro.cluster`) drive a server
in virtual time:

- ``service_time`` — a per-batch callable ``(MicroBatch) -> float``; when
  set, batch service times (and therefore ``busy_s``, per-request
  ``service_s`` and throughput) come from it — e.g. the
  :class:`repro.hw.accelerator.ExionAccelerator` latency model — instead
  of wall-clock measurement, so reports are deterministic across machines.
  Wall clock remains the fallback when no hook is installed.
- ``dry_run`` — skip the numeric generation entirely and account only for
  queueing/batching/timing (results carry ``result=None``). Used for
  large fleet sweeps where only the schedule matters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.config import ExionConfig
from repro.core.sparsity import RunStats
from repro.models.zoo import model_cache_key
from repro.serve.cache import ThresholdCache
from repro.serve.queue import RequestQueue
from repro.serve.request import RequestResult
from repro.serve.scheduler import BatchingPolicy, MicroBatch, Scheduler


@dataclass
class ServeReport:
    """Aggregate view of everything a server instance has served.

    ``timing_source`` records where ``busy_s``/``queue_wait_s`` came
    from: ``"simulated"`` when a per-batch ``service_time`` hook drove
    the accounting (deterministic across machines — what the cluster
    event loop installs), ``"wall_clock"`` otherwise.
    """

    requests_served: int = 0
    batches_served: int = 0
    requests_expired: int = 0  # swept at batch formation (timeout/deadline)
    busy_s: float = 0.0  # time spent inside batched generation
    queue_wait_s: float = 0.0  # summed per-request wait before dispatch
    timing_source: str = "wall_clock"
    merged_stats: RunStats = field(default_factory=RunStats)
    cache_info: dict = field(default_factory=dict)
    #: Deterministic nearest-rank latency quantiles, computed by the
    #: owning server from its histogram (``MetricFamily.quantile``).
    latency_quantiles: dict = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        if self.batches_served == 0:
            return 0.0
        return self.requests_served / self.batches_served

    @property
    def mean_wait_s(self) -> float:
        if self.requests_served == 0:
            return 0.0
        return self.queue_wait_s / self.requests_served

    @property
    def samples_per_s(self) -> float:
        if self.busy_s == 0.0:
            return 0.0
        return self.requests_served / self.busy_s

    def summary(self) -> dict:
        """Flat dict for report printing."""
        return {
            "requests_served": self.requests_served,
            "batches_served": self.batches_served,
            "requests_expired": self.requests_expired,
            "mean_batch_size": self.mean_batch_size,
            "busy_s": self.busy_s,
            "queue_wait_s": self.queue_wait_s,
            "mean_wait_s": self.mean_wait_s,
            "samples_per_s": self.samples_per_s,
            "timing_source": self.timing_source,
            "latency_p50_s": self.latency_quantiles.get("latency_p50_s", 0.0),
            "latency_p95_s": self.latency_quantiles.get("latency_p95_s", 0.0),
            "latency_p99_s": self.latency_quantiles.get("latency_p99_s", 0.0),
            # Sorted so two runs' summaries diff stably regardless of
            # the order cache_info accumulated its keys.
            **{f"cache_{k}": v for k, v in sorted(self.cache_info.items())},
        }


class ExionServer:
    """Batched multi-request serving of one benchmark model."""

    def __init__(
        self,
        model_name: str,
        config: Optional[ExionConfig] = None,
        policy: Optional[BatchingPolicy] = None,
        cache: Optional[ThresholdCache] = None,
        model_seed: int = 0,
        total_iterations: Optional[int] = None,
        depth: Optional[int] = None,
        activation_bits: Optional[int] = None,
        calibrate: bool = False,
        calibration_seed: int = 0,
        clock=time.perf_counter,
        retain_results: bool = True,
        service_time: Optional[Callable[[MicroBatch], float]] = None,
        dry_run: bool = False,
        observer=None,
    ) -> None:
        model_cache_key(model_name, model_seed, total_iterations, depth)
        self.model_name = model_name
        self.config = (
            config if config is not None else ExionConfig.for_model(model_name)
        )
        self.cache = cache if cache is not None else ThresholdCache()
        # Nil-by-default observability: hooks only fire when an observer
        # is installed, so the unobserved server is byte-for-byte the
        # pre-obs code path.
        self.observer = observer
        if observer is not None:
            self.cache.observer = observer
        self.queue = RequestQueue()
        self.scheduler = Scheduler(self.queue, policy, observer=observer)
        self._clock = clock
        self.service_time = service_time
        self.dry_run = dry_run
        self._pipeline_kwargs = dict(
            config=self.config,
            model_seed=model_seed,
            total_iterations=total_iterations,
            depth=depth,
            activation_bits=activation_bits,
            calibrate=calibrate,
            calibration_seed=calibration_seed,
        )
        # Served results are retained for result() lookups by default; a
        # long-lived server can pass retain_results=False and consume the
        # step()/run_until_drained() return values instead, keeping memory
        # flat. Aggregate statistics accumulate incrementally either way.
        self.retain_results = retain_results
        self.results: dict[int, RequestResult] = {}
        self._requests_served = 0
        self._batches_served = 0
        self._busy_s = 0.0
        self._wait_s = 0.0
        self._merged_stats = RunStats()
        # Local import: repro.obs package init transitively imports the
        # serve layer, so a module-level obs import here would cycle.
        # Constructor bodies run at instantiation time, which is safe.
        from repro.obs.metrics import MetricFamily
        from repro.obs.observer import TIME_BUCKETS

        self._latency_hist = MetricFamily(
            "serve_latency_seconds", "histogram",
            "End-to-end request latency", buckets=TIME_BUCKETS,
        )

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def submit(
        self,
        seed: int = 0,
        prompt: Optional[str] = None,
        class_label: Optional[int] = None,
        tenant: str = "default",
        priority: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> int:
        """Enqueue one generation request; returns its request id."""
        request = self.queue.submit(
            seed=seed, prompt=prompt, class_label=class_label,
            now=self._clock(), tenant=tenant, priority=priority,
            deadline_s=deadline_s,
        )
        if self.observer is not None:
            self.observer.on_membership(
                "submit", request.submitted_at, request.request_id,
                tenant=request.tenant, priority=int(request.priority),
                deadline_s=request.deadline_s, model=self.model_name,
            )
        return request.request_id

    def step(self) -> list[RequestResult]:
        """Serve at most one micro-batch if the policy says it is due."""
        batch = self.scheduler.next_batch(now=self._clock())
        if batch is None:
            return []
        return self._serve(batch)

    def run_until_drained(self) -> list[RequestResult]:
        """Flush the whole queue; results ordered by request id."""
        served: list[RequestResult] = []
        for batch in self.scheduler.drain(now=self._clock()):
            served.extend(self._serve(batch))
        return sorted(served, key=lambda r: r.request_id)

    def result(self, request_id: int, pop: bool = False) -> RequestResult:
        """A finished request's result (KeyError if not served yet).

        ``pop=True`` releases the stored result after returning it, so
        clients that fetch-once can keep the server's memory flat.
        """
        if pop:
            return self.results.pop(request_id)
        return self.results[request_id]

    def report(self) -> ServeReport:
        """Aggregate throughput and sparsity statistics so far."""
        return ServeReport(
            requests_served=self._requests_served,
            batches_served=self._batches_served,
            requests_expired=self.scheduler.expired_total,
            busy_s=self._busy_s,
            queue_wait_s=self._wait_s,
            timing_source=(
                "simulated" if self.service_time is not None else "wall_clock"
            ),
            merged_stats=RunStats.merged([self._merged_stats]),
            cache_info=self.cache.info(),
            latency_quantiles={
                "latency_p50_s": self._latency_hist.quantile(0.50),
                "latency_p95_s": self._latency_hist.quantile(0.95),
                "latency_p99_s": self._latency_hist.quantile(0.99),
            },
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _serve(self, batch: MicroBatch) -> list[RequestResult]:
        if self.dry_run:
            generations = [None] * len(batch)
            service_s = 0.0
        else:
            pipeline = self.cache.pipeline(
                self.model_name, **self._pipeline_kwargs
            )
            start = self._clock()
            generations = pipeline.run_batch(batch.requests)
            service_s = max(0.0, self._clock() - start)
        # Simulated service time (cluster event loop) beats the wall-clock
        # measurement whenever a hook is installed.
        if self.service_time is not None:
            service_s = float(self.service_time(batch))

        served = []
        completed_at = batch.formed_at + service_s
        for request, generation in zip(batch.requests, generations):
            wait_s = max(0.0, batch.formed_at - request.submitted_at)
            self._latency_hist.observe(
                max(0.0, completed_at - request.submitted_at)
            )
            record = RequestResult(
                request=request,
                result=generation,
                batch_size=len(batch),
                wait_s=wait_s,
                service_s=service_s,
            )
            if self.retain_results:
                self.results[request.request_id] = record
            served.append(record)
            self._wait_s += wait_s
            if generation is not None:
                self._merged_stats.merge_from(generation.stats)
        self._requests_served += len(served)
        self._batches_served += 1
        self._busy_s += service_s
        if self.observer is not None:
            # The batch executes starting at its formation instant; with
            # a simulated service_time hook both endpoints are sim-time.
            self.observer.on_batch(
                batch.formed_at, completed_at, len(batch),
                request_ids=[r.request_id for r in batch.requests],
                tenants=[r.tenant for r in batch.requests],
            )
        return served
