"""FIFO request queue feeding the micro-batch scheduler.

The queue is deliberately synchronous and deterministic: time is an
explicit parameter rather than a wall-clock read, so batching decisions
are reproducible in tests and benchmarks. The server layer passes a real
clock; tests pass hand-picked instants.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.serve.request import GenerationRequest


class RequestQueue:
    """FIFO of pending :class:`GenerationRequest` with id assignment."""

    def __init__(self) -> None:
        self._pending: deque[GenerationRequest] = deque()
        self._next_id = 0
        self.total_submitted = 0
        # Count of pending requests carrying a deadline, so the deadline
        # sweep in expire() stays O(1) when no request has one (the
        # common case: deadlines are an SLA feature, timeouts the norm).
        self._with_deadline = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def is_empty(self) -> bool:
        return not self._pending

    def submit(
        self,
        seed: int = 0,
        prompt: Optional[str] = None,
        class_label: Optional[int] = None,
        now: float = 0.0,
        tenant: str = "default",
        priority: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> GenerationRequest:
        """Enqueue a new request and return it (with its assigned id)."""
        from repro.serve.request import Priority

        request = GenerationRequest(
            request_id=self._next_id,
            seed=seed,
            prompt=prompt,
            class_label=class_label,
            submitted_at=now,
            tenant=tenant,
            priority=Priority.STANDARD if priority is None else priority,
            deadline_s=deadline_s,
        )
        self._next_id += 1
        self.submit_request(request)
        return request

    def submit_request(self, request: GenerationRequest) -> None:
        """Enqueue an externally-constructed request as-is."""
        self._pending.append(request)
        self.total_submitted += 1
        if request.deadline_s is not None:
            self._with_deadline += 1

    def oldest_wait(self, now: float) -> float:
        """Queue time of the oldest pending request; 0 when empty."""
        if not self._pending:
            return 0.0
        return max(0.0, now - self._pending[0].submitted_at)

    def expire(
        self, now: float, timeout_s: Optional[float] = None
    ) -> list[GenerationRequest]:
        """Drop (and return) requests past ``timeout_s`` or their deadline.

        Used by the cluster event loop's SLO accounting and by the batch
        schedulers before every batching decision, so a stale request
        never occupies a batch slot for a full denoising run. Two
        independent criteria:

        - **timeout**: queue wait exceeded ``timeout_s`` (skipped when
          ``None``). Submission times are nondecreasing in a FIFO queue,
          so these are a head prefix — the sweep stops at the first
          survivor, making the no-op case O(1);
        - **deadline**: ``now`` reached the request's absolute
          ``deadline_s``. Deadlines are *not* FIFO-ordered, so this is a
          full scan — gated on a counter of deadline-carrying requests,
          keeping the deadline-free case (the common one) O(1).
        """
        if timeout_s is not None and timeout_s < 0.0:
            raise ValueError("timeout_s must be >= 0")
        expired: list[GenerationRequest] = []
        if timeout_s is not None:
            while (
                self._pending
                and now - self._pending[0].submitted_at > timeout_s
            ):
                expired.append(self._pending.popleft())
        if self._with_deadline and any(
            r.deadline_s is not None for r in expired
        ):
            self._with_deadline -= sum(
                1 for r in expired if r.deadline_s is not None
            )
        if self._with_deadline:
            survivors: deque[GenerationRequest] = deque()
            for request in self._pending:
                if request.deadline_s is not None and now >= request.deadline_s:
                    expired.append(request)
                    self._with_deadline -= 1
                else:
                    survivors.append(request)
            self._pending = survivors
        return expired

    def pop(self, max_size: int) -> list[GenerationRequest]:
        """Dequeue up to ``max_size`` requests in FIFO order."""
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        batch = []
        while self._pending and len(batch) < max_size:
            batch.append(self._pending.popleft())
        if self._with_deadline:
            self._with_deadline -= sum(
                1 for r in batch if r.deadline_s is not None
            )
        return batch
