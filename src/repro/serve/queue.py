"""FIFO request queue feeding the micro-batch scheduler.

The queue is deliberately synchronous and deterministic: time is an
explicit parameter rather than a wall-clock read, so batching decisions
are reproducible in tests and benchmarks. The server layer passes a real
clock; tests pass hand-picked instants.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.serve.request import GenerationRequest


class RequestQueue:
    """FIFO of pending :class:`GenerationRequest` with id assignment."""

    def __init__(self) -> None:
        self._pending: deque[GenerationRequest] = deque()
        self._next_id = 0
        self.total_submitted = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def is_empty(self) -> bool:
        return not self._pending

    def submit(
        self,
        seed: int = 0,
        prompt: Optional[str] = None,
        class_label: Optional[int] = None,
        now: float = 0.0,
    ) -> GenerationRequest:
        """Enqueue a new request and return it (with its assigned id)."""
        request = GenerationRequest(
            request_id=self._next_id,
            seed=seed,
            prompt=prompt,
            class_label=class_label,
            submitted_at=now,
        )
        self._next_id += 1
        self.submit_request(request)
        return request

    def submit_request(self, request: GenerationRequest) -> None:
        """Enqueue an externally-constructed request as-is."""
        self._pending.append(request)
        self.total_submitted += 1

    def oldest_wait(self, now: float) -> float:
        """Queue time of the oldest pending request; 0 when empty."""
        if not self._pending:
            return 0.0
        return max(0.0, now - self._pending[0].submitted_at)

    def expire(self, now: float, timeout_s: float) -> list[GenerationRequest]:
        """Drop (and return) pending requests that waited past ``timeout_s``.

        Used by the cluster event loop's SLO accounting: requests whose
        queue wait exceeds the timeout are removed before the next batch
        forms, so a stale request never occupies a batch slot. Submission
        times are nondecreasing in a FIFO queue, so the expired requests
        are a head prefix — the sweep stops at the first survivor, making
        the no-op case (the common one) O(1).
        """
        if timeout_s < 0.0:
            raise ValueError("timeout_s must be >= 0")
        expired: list[GenerationRequest] = []
        while self._pending and now - self._pending[0].submitted_at > timeout_s:
            expired.append(self._pending.popleft())
        return expired

    def pop(self, max_size: int) -> list[GenerationRequest]:
        """Dequeue up to ``max_size`` requests in FIFO order."""
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        batch = []
        while self._pending and len(batch) < max_size:
            batch.append(self._pending.popleft())
        return batch
