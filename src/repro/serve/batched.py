"""Batched EXION generation: one denoising loop, many requests.

:class:`BatchedPipeline` vectorizes :class:`repro.core.pipeline.ExionPipeline`
over a leading batch axis. All requests of a micro-batch share the model,
the ExionConfig and the timestep trajectory (they differ only in seed and
conditioning), so every network operation — norms, projections, attention,
FFN, the scheduler update — runs once per iteration on a
``(batch, tokens, dim)`` stack instead of once per request. The FFN-Reuse
dense-iteration state and the eager-prediction decisions are batched the
same way (:class:`repro.core.ffn_reuse.BatchedFFNReuse`,
:class:`repro.core.eager_prediction.BatchedEagerPredictor`).

Per-request semantics are preserved exactly:

- each request draws its own initial noise and (for stochastic samplers)
  step noise from its own seed-keyed generator;
- FFN-Reuse thresholds and eager-prediction quantization scales are
  resolved per request;
- every request gets its own :class:`~repro.core.sparsity.RunStats`.

A batch of one computes bit-for-bit what ``ExionPipeline.generate()``
computes; the throughput benchmark
(``benchmarks/bench_serve_throughput.py``) checks both this equivalence
and the batching speedup.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.config import ExionConfig
from repro.core.eager_prediction import (
    BatchedEagerPredictor,
    _merge_heads_batched,
    _split_heads_batched,
)
from repro.core.ffn_reuse import BatchedFFNReuse
from repro.core.logdomain import quantize_symmetric_batched
from repro.core.pipeline import GenerationResult
from repro.core.sparsity import RunStats
from repro.core.thresholds import ThresholdTable
from repro.models.activations import softmax
from repro.models.attention import MultiHeadAttention
from repro.models.ffn import FeedForward
from repro.models.network import DiffusionNetwork, NetworkType
from repro.models.pipeline import DiffusionResult
from repro.models.scheduler import DDPMScheduler
from repro.models.transformer import TransformerBlock
from repro.models.zoo import BenchmarkModel
from repro.serve.request import GenerationRequest


def _fake_quantize_batched(x: np.ndarray, bits: int) -> np.ndarray:
    """Per-request activation fake-quantization (INT datapath emulation)."""
    ints, scales = quantize_symmetric_batched(x, bits)
    expand = (slice(None),) + (None,) * (x.ndim - 1)
    return ints.astype(np.float64) * scales[expand]


def _attention_exact_batched(
    layer: MultiHeadAttention, x: np.ndarray, context: Optional[np.ndarray]
) -> np.ndarray:
    """Dense attention over ``(batch, tokens, dim)`` activations."""
    kv_input = x if context is None else context
    q = _split_heads_batched(layer.wq(x), layer.num_heads)
    k = _split_heads_batched(layer.wk(kv_input), layer.num_heads)
    v = _split_heads_batched(layer.wv(kv_input), layer.num_heads)
    scores = np.einsum("bhtd,bhsd->bhts", q, k) * layer.scale
    probs = softmax(scores, axis=-1)
    attended = np.einsum("bhts,bhsd->bhtd", probs, v)
    return layer.wo(_merge_heads_batched(attended))


def _ffn_exact_batched(layer: FeedForward, x: np.ndarray) -> np.ndarray:
    """Dense FFN over ``(batch, tokens, dim)`` activations."""
    return layer.linear2(layer.nonlinear(layer.linear1(x)))


class BatchedPipeline:
    """Serves micro-batches of generation requests on one model.

    Construction mirrors :class:`repro.core.pipeline.ExionPipeline`; the
    entry point is :meth:`run_batch`, which takes
    :class:`~repro.serve.request.GenerationRequest` records and returns one
    :class:`~repro.core.pipeline.GenerationResult` per request, in order.

    The batched path does not collect per-iteration traces or latents
    (those are accuracy-analysis features of the sequential pipeline);
    everything else — samples, statistics, optional bitmask collection —
    matches sequential generation request for request.
    """

    def __init__(
        self,
        model: BenchmarkModel,
        config: ExionConfig,
        threshold_table: Optional[ThresholdTable] = None,
        activation_bits: Optional[int] = None,
        collect_masks: bool = False,
        compiled: bool = False,
    ) -> None:
        self.model = model
        self.config = config
        self.threshold_table = threshold_table
        self.activation_bits = activation_bits
        self.collect_masks = collect_masks
        self.compiled = compiled
        self._compiled_executor = None

    def _executor(self):
        """The plan-compiled batched executor, built once per pipeline."""
        if self._compiled_executor is None:
            from repro.exec import CompiledBatchedExecutor

            self._compiled_executor = CompiledBatchedExecutor(
                self.model,
                self.config,
                threshold_table=self.threshold_table,
                activation_bits=self.activation_bits,
                collect_masks=self.collect_masks,
            )
        return self._compiled_executor

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def generate(
        self,
        seed: int = 0,
        prompt: Optional[str] = None,
        class_label: Optional[int] = None,
    ) -> GenerationResult:
        """Run a batch of one; equivalent to ``ExionPipeline.generate()``."""
        request = GenerationRequest(
            request_id=0, seed=seed, prompt=prompt, class_label=class_label
        )
        return self.run_batch([request])[0]

    def generate_batch(
        self,
        seeds: Sequence[int],
        prompt: Optional[str] = None,
        class_label: Optional[int] = None,
    ) -> tuple:
        """One sample per seed, batched; returns ``(samples, results)``.

        Drop-in for ``ExionPipeline.generate_batch()``: ``samples`` is the
        stacked ``(len(seeds), tokens, dim)`` array.
        """
        seeds = list(seeds)
        if not seeds:
            raise ValueError("need at least one seed")
        requests = [
            GenerationRequest(request_id=i, seed=seed, prompt=prompt,
                              class_label=class_label)
            for i, seed in enumerate(seeds)
        ]
        results = self.run_batch(requests)
        samples = np.stack([r.sample for r in results])
        return samples, results

    def run_batch(
        self, requests: Sequence[GenerationRequest]
    ) -> list[GenerationResult]:
        """Generate one sample per request through a shared batched loop."""
        requests = list(requests)
        if not requests:
            raise ValueError("need at least one request")
        if self.compiled:
            return self._executor().run_batch(requests)
        batch = len(requests)
        network = self.model.network
        scheduler = self.model.scheduler
        pipeline = self.model.make_pipeline()
        if hasattr(scheduler, "reset"):
            scheduler.reset()

        rngs = [np.random.default_rng(r.seed) for r in requests]
        x = np.stack(
            [rng.standard_normal((network.tokens, network.dim)) for rng in rngs]
        )
        # Requests with the same conditioning share one encoder pass: the
        # CLI and generate_batch() submit whole batches under one prompt,
        # which would otherwise re-run the conditioning transformer per
        # request.
        embeddings: dict = {}
        contexts = []
        for r in requests:
            key = (r.prompt, r.class_label)
            if key not in embeddings:
                embeddings[key] = pipeline.embed_prompt(r.prompt, r.class_label)
            contexts.append(embeddings[key])
        context = None
        if any(c is not None for c in contexts):
            context = np.stack(contexts)

        stats = [RunStats() for _ in requests]
        ffn_reuse: Optional[BatchedFFNReuse] = None
        if self.config.enable_ffn_reuse:
            ffn_reuse = BatchedFFNReuse(
                self.config,
                num_blocks=network.num_transformer_blocks,
                batch_stats=stats,
                threshold_table=self.threshold_table,
                collect_bitmasks=self.collect_masks,
            )
        predictor: Optional[BatchedEagerPredictor] = None
        if self.config.enable_eager_prediction:
            predictor = BatchedEagerPredictor(
                self.config, batch_stats=stats,
                collect_keepmasks=self.collect_masks,
            )

        timesteps = scheduler.timesteps(pipeline.num_inference_steps)
        for i, t in enumerate(timesteps):
            if ffn_reuse is not None:
                ffn_reuse.begin_iteration(i)
            eps = self._forward(x, int(t), context, ffn_reuse, predictor)
            prev_t = int(timesteps[i + 1]) if i + 1 < len(timesteps) else -1
            if isinstance(scheduler, DDPMScheduler):
                # Ancestral sampling draws noise per request so each seed's
                # trajectory matches its sequential run.
                x = np.stack([
                    scheduler.step(eps[b], int(t), x[b], prev_t=prev_t,
                                   rng=rngs[b])
                    for b in range(batch)
                ])
            else:
                x = scheduler.step(eps, int(t), x, prev_t=prev_t, rng=None)

        return [
            GenerationResult(
                sample=x[b].copy(),
                stats=stats[b],
                diffusion=DiffusionResult(
                    sample=x[b].copy(), iterations=len(timesteps)
                ),
            )
            for b in range(batch)
        ]

    # ------------------------------------------------------------------
    # batched network forward (mirrors DiffusionNetwork.__call__)
    #
    # Any topology change in models/network.py or models/transformer.py
    # must be reflected here; the bit-for-bit parity tests in
    # tests/serve/test_batched.py cover all three network types and fail
    # on any divergence.
    # ------------------------------------------------------------------
    def _forward(
        self,
        x: np.ndarray,
        t: int,
        context: Optional[np.ndarray],
        ffn_reuse: Optional[BatchedFFNReuse],
        predictor: Optional[BatchedEagerPredictor],
    ) -> np.ndarray:
        network = self.model.network
        t_embed = network._embed_timestep(t)

        if network.network_type is NetworkType.TRANSFORMER_ONLY:
            h = x
            for i, block in enumerate(network.blocks):
                h = self._block(block, h, context, t_embed, ffn_reuse,
                                predictor, i)
            return network.out_proj(network.final_norm(h))

        # UNet shape: encoder half at full resolution, decoder half at
        # half resolution, residual path across the downsample.
        half = max(1, network.depth // 2)
        h = x
        for i in range(half):
            h = self._stage(network, i, h, t_embed, context, ffn_reuse,
                            predictor)
        skip = h
        h = self._downsample(network, h)
        for i in range(half, network.depth):
            h = self._stage(network, i, h, t_embed, context, ffn_reuse,
                            predictor)
        h = self._upsample(network, h, network.tokens) + skip
        return network.out_proj(network.final_norm(h))

    def _stage(
        self,
        network: DiffusionNetwork,
        index: int,
        h: np.ndarray,
        t_embed: np.ndarray,
        context: Optional[np.ndarray],
        ffn_reuse: Optional[BatchedFFNReuse],
        predictor: Optional[BatchedEagerPredictor],
    ) -> np.ndarray:
        if network.resblocks:
            # ResBlocks run on per-request 2D grids; the convolution is the
            # one stage that stays per-request.
            resblock = network.resblocks[index]
            h = np.stack([
                network._apply_resblock(resblock, h[b], t_embed)
                for b in range(h.shape[0])
            ])
        return self._block(network.blocks[index], h, context, t_embed,
                           ffn_reuse, predictor, index)

    def _downsample(self, network: DiffusionNetwork, h: np.ndarray) -> np.ndarray:
        tokens = h.shape[1]
        if tokens % 2 == 1:
            h = np.concatenate([h, h[:, -1:]], axis=1)
        pooled = 0.5 * (h[:, 0::2] + h[:, 1::2])
        return network.down_proj(pooled)

    def _upsample(
        self, network: DiffusionNetwork, h: np.ndarray, target_tokens: int
    ) -> np.ndarray:
        up = np.repeat(h, 2, axis=1)[:, :target_tokens]
        if up.shape[1] < target_tokens:
            pad = np.repeat(up[:, -1:], target_tokens - up.shape[1], axis=1)
            up = np.concatenate([up, pad], axis=1)
        return network.up_proj(up)

    def _block(
        self,
        block: TransformerBlock,
        x: np.ndarray,
        context: Optional[np.ndarray],
        t_embed: Optional[np.ndarray],
        ffn_reuse: Optional[BatchedFFNReuse],
        predictor: Optional[BatchedEagerPredictor],
        block_index: int,
    ) -> np.ndarray:
        h = block.norm1(x)
        if block.adaln is not None and t_embed is not None:
            shift, scale, gate = block.adaln(t_embed)
            h = h * (1.0 + scale) + shift
        else:
            gate = 1.0
        x = x + gate * self._attention(block.self_attn, h, None, predictor)

        if block.cross_attn is not None and context is not None:
            assert block.norm_cross is not None
            x = x + self._attention(
                block.cross_attn, block.norm_cross(x), context, predictor
            )

        x = x + self._ffn(block.ffn, block.norm2(x), ffn_reuse, block_index)
        return x

    def _attention(
        self,
        layer: MultiHeadAttention,
        x: np.ndarray,
        context: Optional[np.ndarray],
        predictor: Optional[BatchedEagerPredictor],
    ) -> np.ndarray:
        if self.activation_bits is not None:
            x = _fake_quantize_batched(x, self.activation_bits)
            if context is not None:
                context = _fake_quantize_batched(context, self.activation_bits)
        if predictor is not None:
            return predictor.run(layer, x, context)
        return _attention_exact_batched(layer, x, context)

    def _ffn(
        self,
        layer: FeedForward,
        x: np.ndarray,
        ffn_reuse: Optional[BatchedFFNReuse],
        block_index: int,
    ) -> np.ndarray:
        if self.activation_bits is not None:
            x = _fake_quantize_batched(x, self.activation_bits)
        if ffn_reuse is not None:
            return ffn_reuse.run(layer, x, block_index)
        return _ffn_exact_batched(layer, x)
