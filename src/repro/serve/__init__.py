"""Batched multi-request serving of EXION generation.

The paper's FFN-Reuse and ConMerge mechanisms amortize work *across
diffusion iterations*; this package amortizes the same way *across
concurrent requests*:

- :mod:`repro.serve.request` — request/result records;
- :mod:`repro.serve.queue` / :mod:`repro.serve.scheduler` — FIFO queue
  plus the micro-batching policy (max batch size, max wait);
- :mod:`repro.serve.batched` — :class:`BatchedPipeline`, the vectorized
  batch-axis twin of :class:`repro.core.pipeline.ExionPipeline`;
- :mod:`repro.serve.cache` — cross-request memoization of built models
  and offline-calibrated threshold tables;
- :mod:`repro.serve.server` — :class:`ExionServer`, the front door;
- :mod:`repro.serve.continuous` — :class:`ContinuousServer`,
  iteration-level continuous batching: requests join/leave the live
  batch between denoising iterations (joins at dense-phase boundaries
  only), with priority classes, per-tenant weighted fair queuing,
  preemption, and SLA-aware admission/expiry.

Quickstart::

    from repro.serve import BatchingPolicy, ExionServer

    server = ExionServer("dit", policy=BatchingPolicy(max_batch_size=8))
    ids = [server.submit(seed=s, class_label=207) for s in range(8)]
    results = server.run_until_drained()
    print(results[0].result.stats.ffn_output_sparsity)

Every request computes exactly what a sequential
``ExionPipeline.generate()`` call would: same samples, same per-request
:class:`~repro.core.sparsity.RunStats`. See
``benchmarks/bench_serve_throughput.py`` for the throughput comparison.

The server also exposes the hooks the fleet simulator
(:mod:`repro.cluster`) drives it with: an injectable ``clock``, a
per-batch ``service_time`` callable that substitutes simulated service
times for wall-clock measurement, and a ``dry_run`` mode that accounts
for queueing/batching without running the numeric generation.
"""

from repro.serve.batched import BatchedPipeline
from repro.serve.cache import ThresholdCache
from repro.serve.continuous import (
    ContinuousPolicy,
    ContinuousServeReport,
    ContinuousServer,
    FairQueue,
    QueueEntry,
)
from repro.serve.queue import RequestQueue
from repro.serve.request import GenerationRequest, Priority, RequestResult
from repro.serve.scheduler import BatchingPolicy, MicroBatch, Scheduler
from repro.serve.server import ExionServer, ServeReport

__all__ = [
    "BatchedPipeline",
    "BatchingPolicy",
    "ContinuousPolicy",
    "ContinuousServeReport",
    "ContinuousServer",
    "ExionServer",
    "FairQueue",
    "GenerationRequest",
    "MicroBatch",
    "Priority",
    "QueueEntry",
    "RequestQueue",
    "RequestResult",
    "Scheduler",
    "ServeReport",
    "ThresholdCache",
]
