"""Cross-request memoization of models, thresholds and pipelines.

Building a benchmark model materializes every weight matrix, and
calibrating a :class:`~repro.core.thresholds.ThresholdTable` costs a full
vanilla generation — work that is identical for every request against the
same ``(model, config)``. The :class:`ThresholdCache` does each of these
once and reuses the artifacts across all subsequent requests, mirroring
how the paper's deployment story determines thresholds "through empirical
experiments" offline and replays them at runtime.

Three memo levels, from coarse to fine:

- **models** — keyed by :func:`repro.models.zoo.model_cache_key`;
- **threshold tables** — additionally keyed by the FFN-Reuse schedule
  (dense period, target sparsity) and calibration seed, but *not* by the
  eager-prediction knobs, so ablation variants share calibrations;
- **pipelines** — fully keyed, returning ready
  :class:`~repro.serve.batched.BatchedPipeline` instances.

Each level is an LRU: pass ``capacity`` to bound the number of entries
kept per level (``None``, the default, keeps everything, matching the
historical unbounded behaviour). Lookups refresh recency; insertions past
capacity evict the least-recently-used entry of that level, counted in
``evictions``/``level_evictions`` and surfaced through :meth:`info`.

Cached models are shared objects: callers must not mutate their weights
(e.g. via ``repro.quant.apply_ptq``) — quantized serving is expressed with
the ``activation_bits`` pipeline knob instead.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.core.config import ExionConfig
from repro.core.thresholds import ThresholdCalibrator, ThresholdTable
from repro.models.zoo import BenchmarkModel, build_model, model_cache_key
from repro.serve.batched import BatchedPipeline


class ThresholdCache:
    """Memoizes built models, calibrated tables and batched pipelines.

    ``capacity`` bounds each memo level independently (LRU eviction);
    ``None`` leaves every level unbounded.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._models: OrderedDict = OrderedDict()
        self._tables: OrderedDict = OrderedDict()
        self._pipelines: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Per-memo-level hit/miss/eviction counts, surfaced through info()
        # (and therefore ServeReport) and the obs metrics registry.
        self.level_hits = {"model": 0, "table": 0, "pipeline": 0}
        self.level_misses = {"model": 0, "table": 0, "pipeline": 0}
        self.level_evictions = {"model": 0, "table": 0, "pipeline": 0}
        #: Optional :class:`repro.obs.observer.Observer`.
        self.observer = None

    def _record(self, level: str, hit: bool) -> None:
        if hit:
            self.hits += 1
            self.level_hits[level] += 1
        else:
            self.misses += 1
            self.level_misses[level] += 1
        if self.observer is not None:
            self.observer.on_cache_lookup(level, hit)

    def _touch(self, level: str, memo: OrderedDict, key) -> bool:
        """Record a lookup; on hit refresh the key's recency."""
        hit = key in memo
        if hit:
            memo.move_to_end(key)
        self._record(level, hit)
        return hit

    def _insert(self, level: str, memo: OrderedDict, key, value) -> None:
        """Insert as most-recent, evicting the LRU entry past capacity."""
        memo[key] = value
        memo.move_to_end(key)
        if self.capacity is not None and len(memo) > self.capacity:
            memo.popitem(last=False)
            self.evictions += 1
            self.level_evictions[level] += 1

    # ------------------------------------------------------------------
    # memo levels
    # ------------------------------------------------------------------
    def model(
        self,
        name: str,
        seed: int = 0,
        total_iterations: Optional[int] = None,
        depth: Optional[int] = None,
    ) -> BenchmarkModel:
        """Build (or reuse) a benchmark model."""
        key = model_cache_key(name, seed, total_iterations, depth)
        if self._touch("model", self._models, key):
            return self._models[key]
        built = build_model(
            name, seed=seed, total_iterations=total_iterations, depth=depth
        )
        self._insert("model", self._models, key, built)
        return built

    def table(
        self,
        name: str,
        config: ExionConfig,
        model_seed: int = 0,
        total_iterations: Optional[int] = None,
        depth: Optional[int] = None,
        calibration_seed: int = 0,
    ) -> ThresholdTable:
        """Calibrate (or reuse) the FFN-Reuse threshold table.

        The key ignores the eager-prediction knobs: the table depends only
        on the model, the dense/sparse schedule and the target sparsity,
        so e.g. the ``ffnr`` and ``all`` ablations share one calibration.
        """
        key = model_cache_key(name, model_seed, total_iterations, depth) + (
            config.sparse_iters_n,
            config.ffn_target_sparsity,
            calibration_seed,
        )
        if self._touch("table", self._tables, key):
            return self._tables[key]
        model = self.model(name, model_seed, total_iterations, depth)
        calibrator = ThresholdCalibrator(
            target_sparsity=config.ffn_target_sparsity,
            dense_period=config.sparse_iters_n + 1,
        )
        table = calibrator.calibrate(model, seed=calibration_seed)
        self._insert("table", self._tables, key, table)
        return table

    def pipeline(
        self,
        name: str,
        config: Optional[ExionConfig] = None,
        model_seed: int = 0,
        total_iterations: Optional[int] = None,
        depth: Optional[int] = None,
        activation_bits: Optional[int] = None,
        calibrate: bool = False,
        calibration_seed: int = 0,
    ) -> BatchedPipeline:
        """Return a ready batched pipeline for ``(model, config)``.

        ``calibrate=True`` attaches a memoized offline-calibrated
        threshold table (one vanilla generation on first use); otherwise
        thresholds fall back to the online per-request quantile.
        """
        if config is None:
            config = ExionConfig.for_model(name)
        key = model_cache_key(name, model_seed, total_iterations, depth) + (
            config,
            activation_bits,
            calibrate,
            calibration_seed if calibrate else None,
        )
        if self._touch("pipeline", self._pipelines, key):
            return self._pipelines[key]
        model = self.model(name, model_seed, total_iterations, depth)
        table = None
        if calibrate and config.enable_ffn_reuse:
            table = self.table(
                name, config, model_seed, total_iterations, depth,
                calibration_seed,
            )
        pipeline = BatchedPipeline(
            model, config, threshold_table=table,
            activation_bits=activation_bits,
        )
        self._insert("pipeline", self._pipelines, key, pipeline)
        return pipeline

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def info(self) -> dict:
        """Cache occupancy and hit statistics, keys sorted for stable diffs."""
        info = {
            "models": len(self._models),
            "tables": len(self._tables),
            "pipelines": len(self._pipelines),
            "hits": self.hits,
            "misses": self.misses,
            "capacity": -1 if self.capacity is None else self.capacity,
            "evictions": self.evictions,
        }
        for level in self.level_hits:
            info[f"{level}_hits"] = self.level_hits[level]
            info[f"{level}_misses"] = self.level_misses[level]
            info[f"{level}_evictions"] = self.level_evictions[level]
        return dict(sorted(info.items()))

    def clear(self) -> None:
        """Drop every memoized artifact (frees the model weights)."""
        self._models.clear()
        self._tables.clear()
        self._pipelines.clear()
