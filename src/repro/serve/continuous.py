"""Iteration-level continuous batching: the multi-tenant serving loop.

:class:`~repro.serve.server.ExionServer` drains: a micro-batch forms,
runs every denoising iteration, returns, and only then does the next
batch form — so a request arriving one tick after a dispatch waits a
whole generation. :class:`ContinuousServer` instead keeps **one live
batch** whose membership changes *between* iterations:

- **join** — queued requests enter at dense-phase boundaries of the
  :class:`~repro.program.compiled.CompiledPlan` (the FFN-Reuse
  constraint: a joiner's first step is a dense compile, and it may only
  share ticks with members whose remaining schedule agrees with its own
  — :meth:`CompiledPlan.cursors_aligned` proves it per join);
- **leave** — completions drop out mid-phase; the executor absorbs the
  membership change as an index-set edit (no re-trace);
- **evict** — latency-sensitive arrivals preempt lower-priority members
  at boundaries; the victim's run state is retained and re-queued, and
  it resumes from its cursor at a later boundary.

Scheduling combines three classic mechanisms, all deterministic:

- **priority classes** (:class:`~repro.serve.request.Priority`) with
  optional aging (``aging_s``) for starvation freedom;
- **per-tenant weighted fair queuing** by deficit accounting
  (:class:`FairQueue`): each admission round credits every backlogged
  tenant ``quantum x weight``, and the affordable candidate with the
  largest deficit wins the slot — long-run service is proportional to
  tenant weights;
- **SLA-aware admission and expiry**: requests carry absolute deadlines;
  admission rejects infeasible ones at the door, and every boundary
  re-checks deadlines of queued *and running* requests, so an expired
  request never occupies a batch slot for a full denoising run.

Per-request outputs remain byte-identical to solo sequential generation
whenever the composition allows (always, for joins the alignment
predicate admits) — enforced by the differential suite in
``tests/serve/test_continuous_parity.py`` and the hypothesis property
suite in ``tests/serve/test_continuous_property.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from repro.core.config import ExionConfig
from repro.core.sparsity import RunStats
from repro.program.cache import compiled_plan_for
from repro.serve.cache import ThresholdCache
from repro.serve.request import GenerationRequest, Priority, RequestResult
from repro.serve.server import ServeReport
from repro.workloads.specs import get_spec

#: Safety bound on deficit top-up rounds within one admission call.
_MAX_CREDIT_ROUNDS = 10_000


@dataclass(frozen=True)
class ContinuousPolicy:
    """Knobs of the continuous (iteration-level) batching decision.

    ``quantum`` is the deficit credit a weight-1.0 tenant earns per
    admission round, in units of *normalized generation cost* (one full
    denoising run = 1.0). ``aging_s`` promotes a queued request one
    priority class per interval waited (``None`` = strict priorities).
    ``timeout_s``/``max_queue_depth``/``min_service_s`` are the SLA
    levers: queue-wait timeout, admission depth bound, and the service
    floor used to reject already-infeasible deadlines at the door.
    """

    max_batch_size: int = 8
    quantum: float = 1.0
    preempt: bool = True
    aging_s: Optional[float] = None
    timeout_s: Optional[float] = None
    max_queue_depth: Optional[int] = None
    min_service_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.quantum <= 0.0:
            raise ValueError("quantum must be > 0")
        if self.aging_s is not None and self.aging_s <= 0.0:
            raise ValueError("aging_s must be > 0")
        if self.timeout_s is not None and self.timeout_s < 0.0:
            raise ValueError("timeout_s must be >= 0")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.min_service_s < 0.0:
            raise ValueError("min_service_s must be >= 0")


@dataclass
class QueueEntry:
    """One waiting unit of work: a fresh request or a preempted run."""

    request: GenerationRequest
    run: object = None  # RequestRun of a preempted request, else None

    @property
    def cursor(self) -> int:
        return 0 if self.run is None else self.run.cursor


class FairQueue:
    """Per-tenant queues with weighted deficit accounting.

    Tenants are served in proportion to their weights over time: every
    admission round credits each backlogged tenant ``quantum x weight``,
    an admission debits the chosen tenant by the work's normalized cost,
    and the largest deficit among affordable candidates wins. A tenant
    whose backlog empties forfeits its residual deficit (the classic DRR
    rule preventing credit hoarding).
    """

    def __init__(
        self,
        weights: Optional[Mapping[str, float]] = None,
        quantum: float = 1.0,
        aging_s: Optional[float] = None,
    ) -> None:
        self.weights = dict(weights or {})
        for tenant, weight in self.weights.items():
            if weight <= 0.0:
                raise ValueError(f"tenant {tenant!r} weight must be > 0")
        self.quantum = quantum
        self.aging_s = aging_s
        self._tenants: dict[str, list[QueueEntry]] = {}
        self._deficit: dict[str, float] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(q) for q in self._tenants.values())

    @property
    def is_empty(self) -> bool:
        return all(not q for q in self._tenants.values())

    def weight(self, tenant: str) -> float:
        return self.weights.get(tenant, 1.0)

    def push(self, entry: QueueEntry) -> None:
        tenant = entry.request.tenant
        self._tenants.setdefault(tenant, []).append(entry)
        self._deficit.setdefault(tenant, 0.0)

    def entries(self) -> list[QueueEntry]:
        """Every waiting entry (inspection / expiry), tenant-grouped."""
        out: list[QueueEntry] = []
        for tenant in self._tenants:
            out.extend(self._tenants[tenant])
        return out

    def remove(self, entry: QueueEntry) -> None:
        queue = self._tenants[entry.request.tenant]
        queue.remove(entry)
        if not queue:
            self._deficit[entry.request.tenant] = 0.0

    def effective_priority(self, entry: QueueEntry, now: float) -> int:
        """Base class promoted by aging (starvation freedom)."""
        base = int(entry.request.priority)
        if self.aging_s is None:
            return base
        waited = max(0.0, now - entry.request.submitted_at)
        return min(int(Priority.INTERACTIVE), base + int(waited / self.aging_s))

    def oldest_wait(self, now: float) -> float:
        waits = [
            max(0.0, now - e.request.submitted_at) for e in self.entries()
        ]
        return max(waits, default=0.0)

    def best_priority(self, now: float) -> Optional[int]:
        """Highest effective class currently waiting (None when empty)."""
        best = None
        for entry in self.entries():
            eff = self.effective_priority(entry, now)
            best = eff if best is None else max(best, eff)
        return best

    def expire(
        self, now: float, timeout_s: Optional[float]
    ) -> list[QueueEntry]:
        """Drop entries past the queue-wait timeout or their deadline."""
        dropped = []
        for tenant, queue in self._tenants.items():
            survivors = []
            for entry in queue:
                request = entry.request
                timed_out = (
                    timeout_s is not None
                    and now - request.submitted_at > timeout_s
                )
                past_deadline = (
                    request.deadline_s is not None
                    and now >= request.deadline_s
                )
                if timed_out or past_deadline:
                    dropped.append(entry)
                else:
                    survivors.append(entry)
            self._tenants[tenant] = survivors
            if not survivors:
                self._deficit[tenant] = 0.0
        return dropped

    # ------------------------------------------------------------------
    def select(
        self,
        now: float,
        slots: int,
        cost_fn: Callable[[QueueEntry], float],
        eligible_fn: Callable[[QueueEntry], bool],
    ) -> list[QueueEntry]:
        """Admit up to ``slots`` entries under priority + weighted DRR.

        Entries of the highest effective class go first; within a class,
        the affordable candidate whose tenant holds the largest deficit
        wins (ties: earlier submission, then request id). Deficits are
        credited one round at a time until someone can afford admission,
        so a positive quantum guarantees progress.
        """
        admitted: list[QueueEntry] = []
        for _ in range(_MAX_CREDIT_ROUNDS):
            if slots <= 0:
                break
            candidates = [e for e in self.entries() if eligible_fn(e)]
            if not candidates:
                break
            top = max(self.effective_priority(e, now) for e in candidates)
            contenders = [
                e for e in candidates
                if self.effective_priority(e, now) == top
            ]
            affordable = [
                e for e in contenders
                if self._deficit[e.request.tenant] >= cost_fn(e)
            ]
            if not affordable:
                # Credit round: every backlogged tenant with a contender
                # earns quantum x weight, then retry.
                for tenant in {e.request.tenant for e in contenders}:
                    self._deficit[tenant] += self.quantum * self.weight(tenant)
                continue
            winner = max(
                affordable,
                key=lambda e: (
                    self._deficit[e.request.tenant],
                    -e.request.submitted_at,
                    -e.request.request_id,
                ),
            )
            self._deficit[winner.request.tenant] -= cost_fn(winner)
            self.remove(winner)
            admitted.append(winner)
            slots -= 1
        else:  # pragma: no cover - positive quantum always progresses
            raise RuntimeError("fair-queue credit loop failed to progress")
        return admitted


@dataclass
class ContinuousServeReport(ServeReport):
    """:class:`ServeReport` plus the continuous scheduler's counters.

    ``batches_served`` counts *ticks* (one batched kernel dispatch per
    denoising iteration); ``mean_occupancy`` is the average number of
    requests sharing each tick — the quantity continuous batching exists
    to raise.
    """

    ticks: int = 0
    occupancy_ticks: int = 0  # sum over ticks of live batch size
    joins: int = 0
    preemptions: int = 0
    admission_rejects: int = 0
    sla_rejects: int = 0
    deadline_evictions: int = 0

    @property
    def mean_occupancy(self) -> float:
        if self.ticks == 0:
            return 0.0
        return self.occupancy_ticks / self.ticks

    def summary(self) -> dict:
        base = super().summary()
        base.update(
            ticks=self.ticks,
            mean_occupancy=self.mean_occupancy,
            joins=self.joins,
            preemptions=self.preemptions,
            admission_rejects=self.admission_rejects,
            sla_rejects=self.sla_rejects,
            deadline_evictions=self.deadline_evictions,
        )
        return base


class _DryRun:
    """Cursor-only stand-in for a :class:`RequestRun` in dry-run mode."""

    def __init__(self, request: GenerationRequest) -> None:
        self.request = request
        self.cursor = 0

    @property
    def request_id(self) -> int:
        return self.request.request_id


class ContinuousServer:
    """Iteration-level continuously-batched serving of one model.

    Drop-in sibling of :class:`~repro.serve.server.ExionServer` with the
    same construction surface plus the continuous knobs. :meth:`step`
    advances the live batch **one denoising iteration**; membership is
    rebalanced (expiry, preemption, joins) whenever the batch sits at a
    dense-phase boundary. ``tick_time`` is the cluster hook: a callable
    ``(batch_size, is_dense) -> seconds`` replacing wall-clock tick
    measurement with the hardware latency model.
    """

    def __init__(
        self,
        model_name: str,
        config: Optional[ExionConfig] = None,
        policy: Optional[ContinuousPolicy] = None,
        tenant_weights: Optional[Mapping[str, float]] = None,
        cache: Optional[ThresholdCache] = None,
        model_seed: int = 0,
        total_iterations: Optional[int] = None,
        depth: Optional[int] = None,
        activation_bits: Optional[int] = None,
        calibrate: bool = False,
        calibration_seed: int = 0,
        clock=time.perf_counter,
        tick_time: Optional[Callable[[int, bool], float]] = None,
        tick_energy: Optional[Callable[[int, bool], float]] = None,
        cold_start_s: Optional[float] = None,
        dry_run: bool = False,
        retain_results: bool = True,
        observer=None,
    ) -> None:
        self.model_name = model_name
        self.config = (
            config if config is not None else ExionConfig.for_model(model_name)
        )
        self.policy = policy if policy is not None else ContinuousPolicy()
        self.cache = cache if cache is not None else ThresholdCache()
        self._clock = clock
        self.tick_time = tick_time
        #: Optional ``(batch_size, is_dense) -> joules`` price attached
        #: to every tick span (cost accounting enrichment).
        self.tick_energy = tick_energy
        #: Optional one-time surcharge added to the first tick (model
        #: load / first-compile). Opt-in: default None keeps timing
        #: identical to pre-enrichment servers.
        self.cold_start_s = cold_start_s
        self._cold_charged = False
        self.dry_run = dry_run
        self.retain_results = retain_results
        # Nil-by-default observability: every hook below is guarded by
        # an `is not None` check, so a server without an observer does
        # exactly the work it did before the obs layer existed.
        self.observer = observer
        self._model_seed = model_seed
        self._total_iterations = total_iterations
        self._depth = depth
        self._activation_bits = activation_bits
        self._calibrate = calibrate
        self._calibration_seed = calibration_seed

        if observer is not None:
            self.cache.observer = observer
        if dry_run:
            self._executor = None
            spec = get_spec(model_name)
            self.plan = compiled_plan_for(
                spec, self.config, iterations=total_iterations
            )
        else:
            self._executor = self._build_executor()
            self._executor.observer = observer
            self.plan = self._executor.compiled_plan

        self.queue = FairQueue(
            weights=tenant_weights,
            quantum=self.policy.quantum,
            aging_s=self.policy.aging_s,
        )
        self.active: list = []
        self.events: list[dict] = []
        self.results: dict[int, RequestResult] = {}
        self.last_tick_s = 0.0
        #: Phase ("dense"/"sparse") and (id, tenant, priority) members
        #: of the most recent tick — read by the cluster replica to
        #: enrich dispatch spans.
        self.last_tick_phase = ""
        self.last_tick_members: list = []
        self.last_tick_cold_s = 0.0
        self._next_id = 0
        self._joined_at: dict[int, float] = {}
        self._requests_served = 0
        self._ticks = 0
        self._occupancy_ticks = 0
        self._busy_s = 0.0
        self._wait_s = 0.0
        self._joins = 0
        self._preemptions = 0
        self._admission_rejects = 0
        self._sla_rejects = 0
        self._expired = 0
        self._deadline_evictions = 0
        self._merged_stats = RunStats()
        self._dropped: list[tuple[GenerationRequest, str]] = []
        # Local import: repro.obs.scenario imports this module, so a
        # top-level obs import here would deadlock package init. This
        # runs at construction time, never at import time.
        from repro.obs.metrics import MetricFamily
        from repro.obs.observer import TIME_BUCKETS

        self._latency_hist = MetricFamily(
            "serve_latency_seconds", "histogram",
            "End-to-end request latency", buckets=TIME_BUCKETS,
        )

    def _build_executor(self):
        from repro.exec.continuous import ContinuousExecutor

        model = self.cache.model(
            self.model_name, self._model_seed, self._total_iterations,
            self._depth,
        )
        table = None
        if self._calibrate and self.config.enable_ffn_reuse:
            table = self.cache.table(
                self.model_name, self.config, self._model_seed,
                self._total_iterations, self._depth, self._calibration_seed,
            )
        return ContinuousExecutor(
            model, self.config, threshold_table=table,
            activation_bits=self._activation_bits,
        )

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def submit(
        self,
        seed: int = 0,
        prompt: Optional[str] = None,
        class_label: Optional[int] = None,
        tenant: str = "default",
        priority: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> Optional[int]:
        """Enqueue one request; ``None`` when admission control rejects.

        Rejections: queue depth at ``max_queue_depth`` (counted in
        ``admission_rejects``) or a deadline that cannot be met even by
        the fastest possible service (``sla_rejects``).
        """
        now = self._clock()
        if (
            self.policy.max_queue_depth is not None
            and len(self.queue) >= self.policy.max_queue_depth
        ):
            self._admission_rejects += 1
            return None
        if deadline_s is not None and (
            deadline_s <= now + self.policy.min_service_s
        ):
            self._sla_rejects += 1
            return None
        request = GenerationRequest(
            request_id=self._next_id,
            seed=seed,
            prompt=prompt,
            class_label=class_label,
            submitted_at=now,
            tenant=tenant,
            priority=(
                Priority.STANDARD if priority is None else int(priority)
            ),
            deadline_s=deadline_s,
        )
        self._next_id += 1
        self.queue.push(QueueEntry(request=request))
        if self.observer is not None:
            self.observer.on_membership(
                "submit", now, request.request_id,
                tenant=request.tenant, priority=int(request.priority),
                deadline_s=request.deadline_s, model=self.model_name,
            )
        return request.request_id

    @property
    def has_work(self) -> bool:
        return bool(self.active) or not self.queue.is_empty

    def pending_count(self) -> int:
        return len(self.queue)

    def at_boundary(self) -> bool:
        """Whether batch membership may change right now."""
        return all(self.plan.is_boundary(run.cursor) for run in self.active)

    def pop_dropped(self) -> list[tuple[GenerationRequest, str]]:
        """Drain (request, reason) records of expired/rejected requests."""
        dropped, self._dropped = self._dropped, []
        return dropped

    # ------------------------------------------------------------------
    # the serving loop
    # ------------------------------------------------------------------
    def step(self, now: Optional[float] = None) -> list[RequestResult]:
        """One denoising iteration of the live batch.

        Rebalances membership first when at a dense-phase boundary, then
        ticks every active run one plan step. Returns the requests that
        completed on this tick (their results retained when configured).
        """
        if now is None:
            now = self._clock()
        observer = self.observer
        if observer is not None:
            observer.now = now
        was_boundary = self.at_boundary()
        if was_boundary:
            self._rebalance(now)
        if observer is not None:
            observer.on_queue_depth("continuous", len(self.queue))
        if not self.active:
            self.last_tick_s = 0.0
            self.last_tick_phase = ""
            self.last_tick_members = []
            self.last_tick_cold_s = 0.0
            return []

        batch_size = len(self.active)
        members = [
            (run.request_id, run.request.tenant, int(run.request.priority))
            for run in self.active
        ]
        cursor = self.active[0].cursor
        is_dense = self.plan.steps[cursor].is_dense
        if self.dry_run:
            for run in self.active:
                run.cursor += 1
            finished = [
                run for run in self.active
                if run.cursor == self.plan.iterations
            ]
            tick_s = 0.0
        else:
            start = self._clock()
            finished = self._executor.run_tick(self.active)
            tick_s = max(0.0, self._clock() - start)
        if self.tick_time is not None:
            tick_s = float(self.tick_time(batch_size, is_dense))
        cold_s = 0.0
        if self.cold_start_s is not None and not self._cold_charged:
            cold_s = max(0.0, float(self.cold_start_s))
            self._cold_charged = True
            tick_s += cold_s

        completed_at = now + tick_s
        served: list[RequestResult] = []
        for run in finished:
            self.active.remove(run)
            generation = (
                None if self.dry_run else self._executor.finish_run(run)
            )
            joined_at = self._joined_at.pop(run.request_id)
            wait_s = max(0.0, joined_at - run.request.submitted_at)
            self._latency_hist.observe(
                max(0.0, completed_at - run.request.submitted_at)
            )
            record = RequestResult(
                request=run.request,
                result=generation,
                batch_size=batch_size,
                wait_s=wait_s,
                service_s=max(0.0, completed_at - joined_at),
            )
            if self.retain_results:
                self.results[run.request_id] = record
            served.append(record)
            self._wait_s += wait_s
            self._requests_served += 1
            if generation is not None:
                self._merged_stats.merge_from(generation.stats)
            self.events.append({
                "kind": "complete", "now": completed_at,
                "request_id": run.request_id, "batch_size": batch_size,
            })
            if observer is not None:
                observer.on_membership(
                    "complete", completed_at, run.request_id,
                    batch_size=batch_size,
                )
        if observer is not None:
            tick_args = {"boundary": was_boundary}
            if self.tick_energy is not None:
                tick_args["energy_j"] = float(
                    self.tick_energy(batch_size, is_dense)
                )
            if cold_s > 0.0:
                tick_args["cold_s"] = cold_s
            observer.on_tick(
                now, completed_at, batch_size, is_dense, cursor,
                **tick_args,
            )
        self._ticks += 1
        self._occupancy_ticks += batch_size
        self._busy_s += tick_s
        self.last_tick_s = tick_s
        self.last_tick_phase = "dense" if is_dense else "sparse"
        self.last_tick_members = members
        self.last_tick_cold_s = cold_s
        return served

    def run_until_drained(self) -> list[RequestResult]:
        """Serve until queue and batch are empty; ordered by request id."""
        served: list[RequestResult] = []
        while self.has_work:
            served.extend(self.step())
            if not self.active and not self.queue.is_empty:
                # Admission refused everything (e.g. nothing aligned):
                # with an empty batch this cannot happen for cursor-0
                # entries, so the remaining entries are expired ones the
                # next rebalance will sweep.
                continue
        return sorted(served, key=lambda r: r.request_id)

    def result(self, request_id: int, pop: bool = False) -> RequestResult:
        if pop:
            return self.results.pop(request_id)
        return self.results[request_id]

    # ------------------------------------------------------------------
    # membership rebalancing (only at dense-phase boundaries)
    # ------------------------------------------------------------------
    def expire_queued(
        self, now: float, timeout_s: Optional[float] = None
    ) -> list[GenerationRequest]:
        """Sweep timed-out / deadline-passed queue entries (accounted).

        ``timeout_s`` overrides the policy's queue-wait timeout for this
        sweep (the cluster event loop passes the fleet SLO timeout).
        """
        effective = timeout_s if timeout_s is not None else self.policy.timeout_s
        reasons = {}
        dropped = self.queue.expire(now, effective)
        for entry in dropped:
            reasons[entry.request.request_id] = (
                "deadline"
                if entry.request.deadline_s is not None
                and now >= entry.request.deadline_s
                else "timeout"
            )
        # SLA-infeasible entries only get *more* infeasible as they wait:
        # drop them now rather than letting them linger to their deadline
        # (they could never be seated, so keeping them only skews queue
        # depth and wakes the event loop for nothing).
        if self.policy.min_service_s > 0.0:
            for entry in self.queue.entries():
                if not self._sla_feasible(entry, now):
                    self.queue.remove(entry)
                    dropped.append(entry)
                    reasons[entry.request.request_id] = "sla"
        for entry in dropped:
            reason = reasons[entry.request.request_id]
            self._dropped.append((entry.request, reason))
            self._expired += 1
            self.events.append({
                "kind": "expire", "now": now,
                "request_id": entry.request.request_id, "reason": reason,
            })
            if self.observer is not None:
                self.observer.on_membership(
                    "expire", now, entry.request.request_id, reason=reason,
                )
        return [entry.request for entry in dropped]

    def _sla_feasible(self, entry: QueueEntry, now: float) -> bool:
        """Whether ``entry`` could still meet its deadline if seated now."""
        deadline = entry.request.deadline_s
        if deadline is None or self.policy.min_service_s <= 0.0:
            return True
        remaining = (
            self.plan.iterations - entry.cursor
        ) / self.plan.iterations
        return now + self.policy.min_service_s * remaining <= deadline

    def _rebalance(self, now: float) -> None:
        self.expire_queued(now)
        active_cursors = tuple(run.cursor for run in self.active)

        # Deadline re-check of *running* requests: a member whose
        # deadline already passed is evicted and dropped — it must not
        # occupy a batch slot for the rest of the denoising run.
        for run in list(self.active):
            deadline = run.request.deadline_s
            if deadline is not None and now >= deadline:
                self.active.remove(run)
                self._joined_at.pop(run.request_id, None)
                self._deadline_evictions += 1
                self._dropped.append((run.request, "deadline"))
                self.events.append({
                    "kind": "evict", "now": now, "reason": "deadline",
                    "request_id": run.request_id, "cursor": run.cursor,
                    "active_cursors": active_cursors,
                })
                if self.observer is not None:
                    self.observer.on_membership(
                        "evict", now, run.request_id,
                        reason="deadline", cursor=run.cursor,
                    )

        # Priority preemption: while the batch is full and someone
        # strictly more urgent waits, evict the least urgent member
        # (preferring the longest remaining job among equals). The
        # victim's run state is retained and resumes from its cursor.
        if self.policy.preempt:
            while len(self.active) >= self.policy.max_batch_size:
                best_waiting = self.queue.best_priority(now)
                if best_waiting is None:
                    break
                victim = min(
                    self.active,
                    key=lambda run: (
                        int(run.request.priority),
                        -(self.plan.iterations - run.cursor),
                        -run.request_id,
                    ),
                )
                if int(victim.request.priority) >= best_waiting:
                    break
                self.active.remove(victim)
                self._joined_at.pop(victim.request_id, None)
                self._preemptions += 1
                self.queue.push(QueueEntry(
                    request=victim.request, run=victim,
                ))
                self.events.append({
                    "kind": "evict", "now": now, "reason": "preempt",
                    "request_id": victim.request_id, "cursor": victim.cursor,
                    "active_cursors": tuple(
                        run.cursor for run in self.active
                    ),
                })
                if self.observer is not None:
                    self.observer.on_membership(
                        "evict", now, victim.request_id,
                        reason="preempt", cursor=victim.cursor,
                    )

        # Joins: fill free slots under priority + weighted fair queuing,
        # restricted to entries whose schedule aligns with the members'.
        slots = self.policy.max_batch_size - len(self.active)
        if slots <= 0:
            return
        cursors = [run.cursor for run in self.active]
        iterations = self.plan.iterations

        def cost(entry: QueueEntry) -> float:
            return (iterations - entry.cursor) / iterations

        def eligible(entry: QueueEntry) -> bool:
            # SLA feasibility: never seat a request that cannot finish
            # by its deadline even at the service floor — it would burn
            # batch capacity only to be evicted at a later boundary.
            if not self._sla_feasible(entry, now):
                return False
            return self.plan.cursors_aligned(cursors + [entry.cursor])

        for entry in self.queue.select(now, slots, cost, eligible):
            if entry.run is not None:
                run = entry.run
            elif self.dry_run:
                run = _DryRun(entry.request)
            else:
                run = self._executor.start_run(entry.request)
            self.active.append(run)
            cursors.append(run.cursor)
            self._joined_at.setdefault(run.request_id, now)
            self._joins += 1
            self.events.append({
                "kind": "join", "now": now,
                "request_id": run.request_id, "cursor": run.cursor,
                "resumed": entry.run is not None,
                "active_cursors": tuple(cursors[:-1]),
            })
            if self.observer is not None:
                self.observer.on_membership(
                    "join", now, run.request_id,
                    cursor=run.cursor, resumed=entry.run is not None,
                )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> ContinuousServeReport:
        return ContinuousServeReport(
            requests_served=self._requests_served,
            batches_served=self._ticks,
            requests_expired=self._expired,
            busy_s=self._busy_s,
            queue_wait_s=self._wait_s,
            timing_source=(
                "simulated" if self.tick_time is not None else "wall_clock"
            ),
            merged_stats=RunStats.merged([self._merged_stats]),
            cache_info=self.cache.info(),
            latency_quantiles={
                "latency_p50_s": self._latency_hist.quantile(0.50),
                "latency_p95_s": self._latency_hist.quantile(0.95),
                "latency_p99_s": self._latency_hist.quantile(0.99),
            },
            ticks=self._ticks,
            occupancy_ticks=self._occupancy_ticks,
            joins=self._joins,
            preemptions=self._preemptions,
            admission_rejects=self._admission_rejects,
            sla_rejects=self._sla_rejects,
            deadline_evictions=self._deadline_evictions,
        )


__all__ = [
    "ContinuousPolicy",
    "ContinuousServeReport",
    "ContinuousServer",
    "FairQueue",
    "QueueEntry",
]
