"""Micro-batch scheduler: coalesces queued requests into batches.

The policy mirrors classic dynamic-batching servers: dispatch as soon as
a full batch of ``max_batch_size`` requests is waiting, or once the
oldest pending request has waited ``max_wait_s`` (so a trickle of
traffic is not starved waiting for a full batch). ``max_wait_s = 0``
degenerates to greedy batching: whatever is queued is dispatched
immediately, one batch per :meth:`Scheduler.next_batch` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.serve.queue import RequestQueue
from repro.serve.request import GenerationRequest


@dataclass(frozen=True)
class BatchingPolicy:
    """Knobs of the micro-batching decision.

    ``timeout_s`` bounds queue wait: requests older than it are swept at
    every batching decision (before a batch forms), alongside any
    per-request absolute deadline — so an expired request never occupies
    a batch slot for a full denoising run. ``None`` disables the sweep's
    timeout criterion (deadlines are always honored).
    """

    max_batch_size: int = 8
    max_wait_s: float = 0.0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_s < 0.0:
            raise ValueError("max_wait_s must be >= 0")
        if self.timeout_s is not None and self.timeout_s < 0.0:
            raise ValueError("timeout_s must be >= 0")


@dataclass(frozen=True)
class MicroBatch:
    """A dispatched group of requests that will share one batched run."""

    requests: tuple[GenerationRequest, ...]
    formed_at: float = 0.0

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def seeds(self) -> tuple[int, ...]:
        return tuple(r.seed for r in self.requests)


class Scheduler:
    """Forms micro-batches from a :class:`RequestQueue` under a policy."""

    def __init__(
        self,
        queue: RequestQueue,
        policy: Optional[BatchingPolicy] = None,
        observer=None,
    ) -> None:
        self.queue = queue
        self.policy = policy if policy is not None else BatchingPolicy()
        #: Optional :class:`repro.obs.observer.Observer`; queue depth is
        #: gauged at every batching decision when installed.
        self.observer = observer
        self.batches_formed = 0
        self.expired_total = 0
        self.last_expired: list[GenerationRequest] = []

    def sweep(self, now: float = 0.0) -> list[GenerationRequest]:
        """Drop timed-out/deadline-passed requests before any decision.

        Every batching decision calls this first, so expiry is re-checked
        at batch-formation time — not only when an external poller (the
        cluster event loop) happens to sweep. The dropped requests are
        returned and kept in ``last_expired`` for caller accounting.
        """
        self.last_expired = self.queue.expire(now, self.policy.timeout_s)
        self.expired_total += len(self.last_expired)
        if self.observer is not None:
            self.observer.on_queue_depth("scheduler", len(self.queue))
        return self.last_expired

    def ready(self, now: float = 0.0) -> bool:
        """Whether a batch should be dispatched at time ``now``."""
        if self.queue.is_empty:
            return False
        if len(self.queue) >= self.policy.max_batch_size:
            return True
        return self.queue.oldest_wait(now) >= self.policy.max_wait_s

    def next_batch(self, now: float = 0.0) -> Optional[MicroBatch]:
        """Dispatch the next micro-batch, or ``None`` if not ready."""
        self.sweep(now)
        if not self.ready(now):
            return None
        requests = self.queue.pop(self.policy.max_batch_size)
        self.batches_formed += 1
        return MicroBatch(requests=tuple(requests), formed_at=now)

    def drain(self, now: float = 0.0) -> Iterator[MicroBatch]:
        """Flush everything queued as maximal FIFO batches (ignores waits)."""
        self.sweep(now)
        while not self.queue.is_empty:
            requests = self.queue.pop(self.policy.max_batch_size)
            self.batches_formed += 1
            yield MicroBatch(requests=tuple(requests), formed_at=now)
