"""Request and result records of the serving layer.

A :class:`GenerationRequest` is what a client submits: the sampling seed
plus the conditioning input (prompt or class label). The serving layer
coalesces requests into micro-batches and returns one
:class:`RequestResult` per request, wrapping the same
:class:`repro.core.pipeline.GenerationResult` a direct
``ExionPipeline.generate()`` call would have produced.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.pipeline import GenerationResult


class Priority(enum.IntEnum):
    """Strict request priority classes, higher value served first.

    ``INTERACTIVE`` preempts long-running lower classes at dense-phase
    boundaries in the continuous scheduler; ``BATCH`` is the best-effort
    background tier (relying on aging for starvation freedom).
    """

    BATCH = 0
    STANDARD = 1
    INTERACTIVE = 2


@dataclass(frozen=True)
class GenerationRequest:
    """One client request for a single generated sample.

    ``request_id`` orders results back to clients; ``submitted_at`` is the
    queue clock reading at submission, used by the max-wait batching
    policy and for per-request latency accounting. ``tenant``/``priority``
    feed the continuous scheduler's fair queuing and preemption;
    ``deadline_s`` is an *absolute* clock reading after which serving the
    request is pointless (SLA admission and boundary expiry both check it).
    """

    request_id: int
    seed: int = 0
    prompt: Optional[str] = None
    class_label: Optional[int] = None
    submitted_at: float = 0.0
    tenant: str = "default"
    priority: int = Priority.STANDARD
    deadline_s: Optional[float] = None


@dataclass
class RequestResult:
    """A served request: the generation output plus serving metadata.

    ``result`` is ``None`` when the server ran in accounting-only mode
    (``ExionServer(dry_run=True)``, used by the cluster simulator): the
    batching, queueing, and timing metadata are real, but no sample was
    computed.
    """

    request: GenerationRequest
    result: Optional[GenerationResult]
    batch_size: int  # size of the micro-batch this request ran in
    wait_s: float = 0.0  # queue time before the batch formed
    service_s: float = 0.0  # batch execution time (shared by the batch)

    @property
    def request_id(self) -> int:
        return self.request.request_id

    @property
    def latency_s(self) -> float:
        """Queue wait plus batch service time."""
        return self.wait_s + self.service_s
