"""Delta-DiT-style block caching baseline (paper Related Work [4]).

Delta-DiT accelerates diffusion *transformers* on GPUs by caching whole
transformer-block residual deltas across iterations and re-applying them
instead of recomputing the block. It is the closest software competitor to
FFN-Reuse: both exploit inter-iteration redundancy, but block caching is
coarse-grained (all-or-nothing per block) where FFN-Reuse is
element-grained. The comparison bench shows the accuracy difference at
matched compute savings — the gap EXION's Related Work section points at.

Only transformer-only networks (DiT, MDM, EDGE) are supported, matching
Delta-DiT's own scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.models.network import NetworkType
from repro.models.zoo import BenchmarkModel
from repro.program.lower import block_ops


@dataclass
class DeltaDiTResult:
    """Sample plus compute accounting for a block-caching run."""

    sample: np.ndarray
    iterations: int
    blocks_executed: int
    blocks_skipped: int
    macs_dense: int
    macs_computed: int

    @property
    def skip_rate(self) -> float:
        total = self.blocks_executed + self.blocks_skipped
        return self.blocks_skipped / total if total else 0.0

    @property
    def ops_reduction(self) -> float:
        if self.macs_dense == 0:
            return 0.0
        return 1.0 - self.macs_computed / self.macs_dense


class DeltaDiTPipeline:
    """Runs a transformer-only benchmark model with block caching.

    ``cache_interval`` plays the role of FFN-Reuse's ``N``: cached blocks
    execute exactly every ``cache_interval + 1`` iterations, refreshing
    their residual delta (block output minus block input); on the
    iterations in between, the cached delta is re-applied to the current
    input instead of running the block.
    """

    def __init__(
        self,
        model: BenchmarkModel,
        cache_interval: int = 2,
        cached_blocks: Optional[list] = None,
    ) -> None:
        if model.network.network_type is not NetworkType.TRANSFORMER_ONLY:
            raise ValueError(
                "Delta-DiT block caching applies to transformer-only "
                "networks (DiT / MDM / EDGE)"
            )
        if cache_interval < 0:
            raise ValueError("cache_interval must be >= 0")
        self.model = model
        self.cache_interval = cache_interval
        depth = model.network.num_transformer_blocks
        if cached_blocks is None:
            # Delta-DiT leaves the front (structure) and rear (detail)
            # blocks exact and caches the middle.
            front = max(1, depth // 4)
            cached_blocks = list(range(front, depth - front)) or [depth // 2]
        self.cached_blocks = set(cached_blocks)

    def _block_macs(self, tokens: int) -> int:
        # MAC accounting comes from the shared lowering (sim-scale block
        # ops, self-attention only — caching skips the block's own work,
        # not the conditioning path), not from a private model walk.
        spec = self.model.spec
        return sum(
            op.macs
            for op in block_ops(
                tokens,
                spec.dim,
                spec.num_heads,
                spec.ffn_mult,
                activation=spec.activation,
            )
        )

    def generate(
        self,
        seed: int = 0,
        prompt: Optional[str] = None,
        class_label: Optional[int] = None,
    ) -> DeltaDiTResult:
        """Generate one sample with block caching."""
        network = self.model.network
        pipeline = self.model.make_pipeline()
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((network.tokens, network.dim))
        context = pipeline.embed_prompt(prompt, class_label)
        timesteps = self.model.scheduler.timesteps(
            self.model.spec.total_iterations
        )

        deltas: dict = {}
        executed = 0
        skipped = 0
        block_macs = self._block_macs(network.tokens)

        for i, t in enumerate(timesteps):
            t_embed = network._embed_timestep(int(t))
            refresh = i % (self.cache_interval + 1) == 0
            h = x
            for b, block in enumerate(network.blocks):
                use_cache = (
                    b in self.cached_blocks and not refresh and b in deltas
                )
                if use_cache:
                    h = h + deltas[b]
                    skipped += 1
                else:
                    h_out, _ = block(h, context=context, t_embed=t_embed)
                    deltas[b] = h_out - h
                    h = h_out
                    executed += 1
            eps = network.out_proj(network.final_norm(h))
            prev_t = int(timesteps[i + 1]) if i + 1 < len(timesteps) else -1
            x = self.model.scheduler.step(eps, int(t), x, prev_t=prev_t,
                                          rng=rng)

        total_blocks = executed + skipped
        return DeltaDiTResult(
            sample=x,
            iterations=len(timesteps),
            blocks_executed=executed,
            blocks_skipped=skipped,
            macs_dense=total_blocks * block_macs,
            macs_computed=executed * block_macs,
        )
