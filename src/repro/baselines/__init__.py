"""Baseline hardware models: GPUs and the Cambricon-D accelerator."""

from repro.baselines.cambricon_d import CambriconDModel
from repro.baselines.delta_dit import DeltaDiTPipeline, DeltaDiTResult
from repro.baselines.gpu import GPUModel, GPUReport
from repro.baselines.specs import A100, EDGE_GPU, SERVER_GPU, GPUSpec

__all__ = [
    "A100",
    "CambriconDModel",
    "DeltaDiTPipeline",
    "DeltaDiTResult",
    "EDGE_GPU",
    "GPUModel",
    "GPUReport",
    "GPUSpec",
    "SERVER_GPU",
]
