"""GPU roofline model for the Fig. 18 / Fig. 19 comparisons.

GPUs execute every iteration densely: the unstructured inter-/intra-
iteration output sparsity cannot be exploited (paper Section III-B). Each
MMUL runs as a kernel whose time is the max of its compute-roofline,
memory-roofline and launch-overhead terms; small diffusion kernels leave a
large device mostly idle, which is where EXION's biggest wins come from.

The kernels priced here are the ops of the lowered
:class:`~repro.program.ir.IterationProgram` — the same single lowering
every other backend consumes; this module only supplies the per-kernel
GPU pricing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.specs import GPUSpec
from repro.program.lower import lower_program
from repro.workloads.specs import ModelSpec


@dataclass
class GPUReport:
    """Latency/energy of one full generation on a GPU."""

    gpu: str
    model: str
    batch: int
    iterations: int
    latency_s: float
    energy_j: float
    dense_equivalent_ops: int

    @property
    def effective_tops(self) -> float:
        return self.dense_equivalent_ops / self.latency_s / 1e12

    @property
    def tops_per_watt(self) -> float:
        return self.dense_equivalent_ops / self.energy_j / 1e12

    @property
    def average_power_w(self) -> float:
        return self.energy_j / self.latency_s


class GPUModel:
    """Per-kernel roofline simulation of diffusion inference on a GPU."""

    #: Elementwise/softmax/norm kernels per transformer block (adds launch
    #: overhead even though their FLOPs are negligible).
    AUX_KERNELS_PER_BLOCK = 4

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec

    def _kernel_seconds(self, r: int, k: int, c: int) -> tuple:
        """(time, achieved utilization) for one ``(r,k)@(k,c)`` kernel."""
        spec = self.spec
        output_elements = r * c
        utilization = spec.max_utilization * min(
            1.0, output_elements / spec.saturation_elements
        )
        utilization = max(utilization, 1e-4)
        ops = 2.0 * r * k * c
        compute_s = ops / (spec.peak_ops_per_s * utilization)
        bytes_moved = (r * k + k * c + r * c) * spec.bytes_per_element
        memory_s = bytes_moved / (spec.bandwidth_gbps * 1e9)
        return max(compute_s, memory_s, spec.kernel_launch_s), utilization

    def iteration_seconds(self, spec: ModelSpec, batch: int = 1) -> tuple:
        """(latency, mean utilization) of one denoising iteration."""
        program = lower_program(spec, scale="paper")
        total = 0.0
        util_weighted = 0.0
        ops_total = 0.0
        for op in program.ops:
            r = op.r * batch
            seconds, util = self._kernel_seconds(r, op.k, op.c)
            seconds *= op.count
            total += seconds
            ops = 2.0 * r * op.k * op.c * op.count
            ops_total += ops
            util_weighted += util * ops
        # Auxiliary kernels: launch-bound elementwise work.
        aux = program.depth * self.AUX_KERNELS_PER_BLOCK
        total += aux * self.spec.kernel_launch_s
        mean_util = util_weighted / ops_total if ops_total else 0.0
        return total, mean_util

    def simulate(
        self,
        spec: ModelSpec,
        batch: int = 1,
        iterations: int = None,
    ) -> GPUReport:
        """Simulate one full generation (all iterations dense)."""
        total_iters = iterations if iterations is not None else spec.total_iterations
        iter_s, util = self.iteration_seconds(spec, batch)
        latency = iter_s * total_iters
        power = self.spec.tdp_w * (
            self.spec.idle_power_fraction
            + (1.0 - self.spec.idle_power_fraction) * util
        )
        macs = sum(
            op.r * batch * op.k * op.c * op.count
            for op in lower_program(spec, scale="paper").ops
        )
        dense_ops = 2 * macs * total_iters
        return GPUReport(
            gpu=self.spec.name,
            model=spec.name,
            batch=batch,
            iterations=total_iters,
            latency_s=latency,
            energy_j=latency * power,
            dense_equivalent_ops=dense_ops,
        )
