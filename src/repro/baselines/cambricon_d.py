"""Cambricon-D analytical model (Kong et al., ISCA 2024) for Fig. 19 (b).

Cambricon-D applies *differential acceleration* to diffusion models: it
computes the delta between consecutive iterations' activations and, because
deltas are small, runs convolutional layers at reduced effective precision
and memory traffic. Its strength is conv-heavy UNets (Stable Diffusion);
transformer blocks see only modest gains — the asymmetry the paper's
Fig. 19 (b) comparison highlights.

Like every backend, this model performs no model-structure walk of its
own: the dense workload comes from the GPU roofline over the lowered
:class:`~repro.program.ir.IterationProgram`, and only the Amdahl split
between conv and transformer shares is priced here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gpu import GPUModel, GPUReport
from repro.baselines.specs import A100, GPUSpec
from repro.workloads.specs import ModelSpec


@dataclass
class CambriconDReport:
    model: str
    latency_s: float
    speedup_vs_gpu: float


class CambriconDModel:
    """Speedup model of Cambricon-D relative to an A100-class GPU.

    ``conv_delta_speedup`` is the differential-computation gain on
    convolutional/ResBlock work; ``transformer_speedup`` is the smaller
    gain on transformer blocks (dense INT compute plus memory-access
    optimization, but no output-sparsity exploitation).
    """

    def __init__(
        self,
        gpu_spec: GPUSpec = A100,
        conv_delta_speedup: float = 11.0,
        transformer_speedup: float = 3.3,
    ) -> None:
        if conv_delta_speedup < 1.0 or transformer_speedup < 1.0:
            raise ValueError("speedups must be >= 1")
        self.gpu = GPUModel(gpu_spec)
        self.conv_delta_speedup = conv_delta_speedup
        self.transformer_speedup = transformer_speedup

    def simulate(self, spec: ModelSpec, batch: int = 1) -> CambriconDReport:
        """Latency from the GPU baseline split by op category."""
        gpu_report: GPUReport = self.gpu.simulate(spec, batch=batch)
        conv_share = 1.0 - spec.paper_transformer_share
        transformer_share = spec.paper_transformer_share
        # Amdahl split: conv work accelerates by the differential factor,
        # transformer work by the smaller dense-engine factor.
        accelerated = (
            conv_share / self.conv_delta_speedup
            + transformer_share / self.transformer_speedup
        )
        latency = gpu_report.latency_s * accelerated
        return CambriconDReport(
            model=spec.name,
            latency_s=latency,
            speedup_vs_gpu=gpu_report.latency_s / latency,
        )
