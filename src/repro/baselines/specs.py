"""Hardware specifications of the comparison devices (paper Table II).

The utilization/overhead parameters are the calibration layer of the GPU
roofline model: peak numbers come from vendor datasheets (as in Table II),
while achieved-fraction and launch-overhead values reflect measured GPU
behaviour on diffusion inference (small per-iteration kernels severely
underutilize large GPUs — the effect behind the paper's largest speedups).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Roofline-model parameters for one GPU."""

    name: str
    peak_ops_per_s: float  # dense peak (FLOPS or OPS)
    bandwidth_gbps: float
    tdp_w: float
    #: Seconds of fixed overhead per kernel launch (driver + dispatch).
    kernel_launch_s: float
    #: Best-case fraction of peak achieved by large GEMMs.
    max_utilization: float
    #: Output elements needed to saturate the device (smaller GEMMs run at
    #: proportionally lower utilization).
    saturation_elements: float
    #: Fraction of TDP drawn when poorly utilized (idle + static).
    idle_power_fraction: float = 0.35
    #: Bytes per operand element (FP32 unless noted).
    bytes_per_element: int = 4


#: NVIDIA Jetson Orin Nano (edge setting, Table II).
EDGE_GPU = GPUSpec(
    name="Jetson Orin Nano",
    peak_ops_per_s=40e12,  # 40 TOPS (INT8 marketing peak)
    bandwidth_gbps=68.0,
    tdp_w=15.0,
    # Jetson-class devices dispatch small PyTorch kernels at O(100 us) and
    # achieve a small fraction of the INT8 peak on FP16 GEMMs.
    kernel_launch_s=150e-6,
    max_utilization=0.20,
    saturation_elements=1.0e5,
    idle_power_fraction=0.40,
)

#: NVIDIA RTX 6000 Ada (server setting, Table II).
SERVER_GPU = GPUSpec(
    name="RTX 6000 Ada",
    peak_ops_per_s=91.1e12,  # 91.1 TFLOPS FP32
    bandwidth_gbps=960.0,
    tdp_w=300.0,
    kernel_launch_s=5e-6,
    max_utilization=0.55,
    saturation_elements=6.0e5,
    idle_power_fraction=0.35,
)

#: NVIDIA A100 80GB (Fig. 19 (b) comparison).
A100 = GPUSpec(
    name="A100",
    peak_ops_per_s=312e12,  # FP16 tensor-core peak
    bandwidth_gbps=1935.0,
    tdp_w=400.0,
    kernel_launch_s=5e-6,
    max_utilization=0.55,
    saturation_elements=1.0e6,
    idle_power_fraction=0.35,
    bytes_per_element=2,
)
