"""Benchmark workload specifications, generators and evaluation metrics."""

from repro.workloads.metrics import (
    beat_alignment_proxy,
    cosine_similarity,
    fid_proxy,
    inception_score_proxy,
    psnr,
    r_precision_proxy,
)
from repro.workloads.specs import (
    ALL_MODEL_ORDER,
    BENCHMARK_ORDER,
    EXTENDED_ORDER,
    MODEL_SPECS,
    ModelSpec,
    get_spec,
)

__all__ = [
    "ALL_MODEL_ORDER",
    "BENCHMARK_ORDER",
    "EXTENDED_ORDER",
    "MODEL_SPECS",
    "ModelSpec",
    "beat_alignment_proxy",
    "cosine_similarity",
    "fid_proxy",
    "get_spec",
    "inception_score_proxy",
    "psnr",
    "r_precision_proxy",
]
