"""Multi-sample evaluation harness (the Table I protocol).

Generates aligned sample batches (same seeds) under several optimization
configurations and computes the full proxy-metric suite per configuration.
Factored out of the Table I bench so examples, tests and sweeps can reuse
the protocol; the design-space explorer's accuracy objective calls
:func:`evaluate_config` with arbitrary :class:`~repro.core.config.ExionConfig`
points.

Randomness is explicit: every entry point takes ``rng`` (an int seed or a
``numpy.random.Generator``, normalized through
:func:`repro.workloads.generator.as_rng`) and derives the model seed and
per-sample generation seeds from it. There is no hidden ``default_rng``
fallback — same policy as :mod:`repro.workloads.generator` since the
cluster layer landed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.models.zoo import BenchmarkModel, build_model
from repro.workloads.generator import as_rng
from repro.workloads.metrics import (
    fid_proxy,
    inception_score_proxy,
    psnr,
    r_precision_proxy,
)


@dataclass
class MethodResult:
    """Metrics of one optimization configuration over a sample batch."""

    method: str
    psnr_mean: float
    psnr_min: float
    fid_proxy: float
    is_proxy: float
    r_precision: float
    inter_sparsity: float
    intra_sparsity: float
    ffn_ops_reduction: float


@dataclass
class EvaluationReport:
    """All configurations' metrics for one model."""

    model: str
    n_samples: int
    methods: list = field(default_factory=list)

    def method(self, name: str) -> MethodResult:
        for entry in self.methods:
            if entry.method == name:
                return entry
        raise KeyError(name)


#: The Table I configuration ladder.
TABLE1_METHODS = ("vanilla", "ffn_reuse", "ffn_reuse_ep", "ffn_reuse_ep_quant")


def _pipeline_for(model: BenchmarkModel, method: str) -> tuple:
    name = model.spec.name
    if method == "vanilla":
        return ExionPipeline(model, ExionConfig.for_model(name)), True
    if method == "ffn_reuse":
        return (
            ExionPipeline(
                model,
                ExionConfig.for_model(name, enable_eager_prediction=False),
            ),
            False,
        )
    if method == "ffn_reuse_ep":
        return ExionPipeline(model, ExionConfig.for_model(name)), False
    if method == "ffn_reuse_ep_quant":
        return (
            ExionPipeline(
                model, ExionConfig.for_model(name), activation_bits=12
            ),
            False,
        )
    raise ValueError(f"unknown method {method!r}")


def _prompts(n: int) -> list:
    base = [
        "a corgi dog surfing a wave",
        "he jumped over the fence in one smooth motion",
        "an anemone fish swimming through coral",
        "a red bicycle leaning on a brick wall",
        "rain falling on a neon-lit street",
        "a wooden cabin in deep snow",
        "a hummingbird hovering at a flower",
        "city skyline at golden hour",
    ]
    return [base[i % len(base)] for i in range(n)]


def _draw_seeds(rng, n_samples: int) -> tuple:
    """Model seed + per-sample generation seeds from one explicit stream."""
    model_seed = int(rng.integers(2**31))
    sample_seeds = [int(s) for s in rng.integers(2**31, size=n_samples)]
    return model_seed, sample_seeds


def _sample_batch(pipeline, vanilla: bool, seeds: list, prompts: list) -> tuple:
    """Aligned samples (stacked) and the last run's stats."""
    samples = []
    last_stats = None
    for sample_seed, prompt in zip(seeds, prompts):
        if vanilla:
            result = pipeline.generate_vanilla(seed=sample_seed, prompt=prompt)
        else:
            result = pipeline.generate(seed=sample_seed, prompt=prompt)
        samples.append(result.sample)
        last_stats = result.stats
    return np.stack(samples), last_stats


def _conditions(model: BenchmarkModel, prompts: list) -> np.ndarray:
    return np.stack(
        [model.make_pipeline().embed_prompt(p) if model.conditioning
         else np.full((4, 4), i, dtype=float)
         for i, p in enumerate(prompts)]
    )


def _method_metrics(
    method: str,
    reference: np.ndarray,
    batch: np.ndarray,
    stats,
    conditions: np.ndarray,
) -> MethodResult:
    psnrs = [psnr(v, s) for v, s in zip(reference, batch)]
    return MethodResult(
        method=method,
        psnr_mean=float(np.mean(psnrs)),
        psnr_min=float(np.min(psnrs)),
        fid_proxy=fid_proxy(reference, batch),
        is_proxy=inception_score_proxy(batch),
        r_precision=r_precision_proxy(batch, conditions),
        inter_sparsity=stats.ffn_output_sparsity,
        intra_sparsity=stats.attention_output_sparsity,
        ffn_ops_reduction=stats.ffn_ops_reduction,
    )


def evaluate_model(
    name: str,
    n_samples: int = 6,
    iterations: Optional[int] = 15,
    methods: tuple = TABLE1_METHODS,
    *,
    rng: Union[int, np.random.Generator],
) -> EvaluationReport:
    """Run the Table I protocol on one benchmark model."""
    if n_samples < 2:
        raise ValueError("need at least 2 samples for distribution metrics")
    if "vanilla" not in methods:
        raise ValueError("methods must include 'vanilla' as the reference")
    rng = as_rng(rng)
    model_seed, seeds = _draw_seeds(rng, n_samples)
    model = build_model(name, seed=model_seed, total_iterations=iterations)
    prompts = _prompts(n_samples)

    batches: dict = {}
    stats_by_method: dict = {}
    for method in methods:
        pipeline, vanilla = _pipeline_for(model, method)
        batches[method], stats_by_method[method] = _sample_batch(
            pipeline, vanilla, seeds, prompts
        )

    reference = batches["vanilla"]
    conditions = _conditions(model, prompts)

    report = EvaluationReport(model=name, n_samples=n_samples)
    for method in methods:
        report.methods.append(
            _method_metrics(method, reference, batches[method],
                            stats_by_method[method], conditions)
        )
    return report


def evaluate_config(
    name: str,
    config: ExionConfig,
    n_samples: int = 2,
    iterations: Optional[int] = 15,
    activation_bits: Optional[int] = None,
    label: str = "custom",
    *,
    rng: Union[int, np.random.Generator],
) -> MethodResult:
    """Score one arbitrary configuration against its vanilla reference.

    The generalization of :func:`evaluate_model` the explorer's accuracy
    objective uses: instead of the named Table I ladder, any
    :class:`~repro.core.config.ExionConfig` point is evaluated over an
    aligned batch (same model seed, same generation seeds as the vanilla
    reference drawn from ``rng``).
    """
    if n_samples < 2:
        raise ValueError("need at least 2 samples for distribution metrics")
    rng = as_rng(rng)
    model_seed, seeds = _draw_seeds(rng, n_samples)
    model = build_model(name, seed=model_seed, total_iterations=iterations)
    prompts = _prompts(n_samples)

    vanilla_pipeline = ExionPipeline(model, ExionConfig.for_model(name))
    reference, _ = _sample_batch(vanilla_pipeline, True, seeds, prompts)
    pipeline = ExionPipeline(model, config, activation_bits=activation_bits)
    batch, stats = _sample_batch(pipeline, False, seeds, prompts)
    return _method_metrics(label, reference, batch, stats,
                           _conditions(model, prompts))
