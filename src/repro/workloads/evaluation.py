"""Multi-sample evaluation harness (the Table I protocol).

Generates aligned sample batches (same seeds) under several optimization
configurations and computes the full proxy-metric suite per configuration.
Factored out of the Table I bench so examples, tests and future sweeps can
reuse the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.models.zoo import BenchmarkModel, build_model
from repro.workloads.metrics import (
    fid_proxy,
    inception_score_proxy,
    psnr,
    r_precision_proxy,
)


@dataclass
class MethodResult:
    """Metrics of one optimization configuration over a sample batch."""

    method: str
    psnr_mean: float
    psnr_min: float
    fid_proxy: float
    is_proxy: float
    r_precision: float
    inter_sparsity: float
    intra_sparsity: float
    ffn_ops_reduction: float


@dataclass
class EvaluationReport:
    """All configurations' metrics for one model."""

    model: str
    n_samples: int
    methods: list = field(default_factory=list)

    def method(self, name: str) -> MethodResult:
        for entry in self.methods:
            if entry.method == name:
                return entry
        raise KeyError(name)


#: The Table I configuration ladder.
TABLE1_METHODS = ("vanilla", "ffn_reuse", "ffn_reuse_ep", "ffn_reuse_ep_quant")


def _pipeline_for(model: BenchmarkModel, method: str) -> tuple:
    name = model.spec.name
    if method == "vanilla":
        return ExionPipeline(model, ExionConfig.for_model(name)), True
    if method == "ffn_reuse":
        return (
            ExionPipeline(
                model,
                ExionConfig.for_model(name, enable_eager_prediction=False),
            ),
            False,
        )
    if method == "ffn_reuse_ep":
        return ExionPipeline(model, ExionConfig.for_model(name)), False
    if method == "ffn_reuse_ep_quant":
        return (
            ExionPipeline(
                model, ExionConfig.for_model(name), activation_bits=12
            ),
            False,
        )
    raise ValueError(f"unknown method {method!r}")


def _prompts(n: int) -> list:
    base = [
        "a corgi dog surfing a wave",
        "he jumped over the fence in one smooth motion",
        "an anemone fish swimming through coral",
        "a red bicycle leaning on a brick wall",
        "rain falling on a neon-lit street",
        "a wooden cabin in deep snow",
        "a hummingbird hovering at a flower",
        "city skyline at golden hour",
    ]
    return [base[i % len(base)] for i in range(n)]


def evaluate_model(
    name: str,
    n_samples: int = 6,
    iterations: Optional[int] = 15,
    methods: tuple = TABLE1_METHODS,
    seed: int = 0,
) -> EvaluationReport:
    """Run the Table I protocol on one benchmark model."""
    if n_samples < 2:
        raise ValueError("need at least 2 samples for distribution metrics")
    model = build_model(name, seed=seed, total_iterations=iterations)
    prompts = _prompts(n_samples)
    seeds = list(range(100, 100 + n_samples))

    batches: dict = {}
    stats_by_method: dict = {}
    for method in methods:
        pipeline, vanilla = _pipeline_for(model, method)
        samples = []
        last_stats = None
        for sample_seed, prompt in zip(seeds, prompts):
            if vanilla:
                result = pipeline.generate_vanilla(seed=sample_seed,
                                                   prompt=prompt)
            else:
                result = pipeline.generate(seed=sample_seed, prompt=prompt)
            samples.append(result.sample)
            last_stats = result.stats
        batches[method] = np.stack(samples)
        stats_by_method[method] = last_stats

    if "vanilla" not in batches:
        raise ValueError("methods must include 'vanilla' as the reference")
    reference = batches["vanilla"]
    conditions = np.stack(
        [model.make_pipeline().embed_prompt(p) if model.conditioning
         else np.full((4, 4), i, dtype=float)
         for i, p in enumerate(prompts)]
    )

    report = EvaluationReport(model=name, n_samples=n_samples)
    for method in methods:
        batch = batches[method]
        stats = stats_by_method[method]
        psnrs = [psnr(v, s) for v, s in zip(reference, batch)]
        report.methods.append(
            MethodResult(
                method=method,
                psnr_mean=float(np.mean(psnrs)),
                psnr_min=float(np.min(psnrs)),
                fid_proxy=fid_proxy(reference, batch),
                is_proxy=inception_score_proxy(batch),
                r_precision=r_precision_proxy(batch, conditions),
                inter_sparsity=stats.ffn_output_sparsity,
                intra_sparsity=stats.attention_output_sparsity,
                ffn_ops_reduction=stats.ffn_ops_reduction,
            )
        )
    return report
