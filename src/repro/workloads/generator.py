"""Synthetic paper-scale workload generation.

The runnable substrate is simulation-scale; the hardware evaluation needs
output-sparsity *masks* at the published model dimensions (e.g. Stable
Diffusion's 1024-token, 2560-hidden FFN). This module synthesizes bitmasks
with the two structural properties the paper's data exhibits:

- **FFN masks** have column structure: some hidden features stay below the
  reuse threshold for *every* token (these are what condensing removes),
  while active features are non-sparse for only a small fraction of tokens
  (paper Figs. 7-8);
- **attention keep-masks** concentrate on popular key columns (top-k rows
  agree on important keys) with fully-skipped one-hot rows, which is what
  makes EP's K/V-projection skipping possible (Section II-B).

Every generator takes an **explicit** RNG: pass a seeded
``numpy.random.Generator`` (or an integer seed, normalized through
:func:`as_rng`). There is deliberately no hidden ``default_rng(0)``
fallback — serve and cluster runs must propagate one seed end to end to
stay reproducible, so a forgotten RNG is an error, not a silent default.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.core.bitmask import Bitmask


def as_rng(rng: Union[int, np.random.Generator]) -> np.random.Generator:
    """Normalize an explicit seed or generator into a ``Generator``.

    ``None`` is rejected on purpose: callers must say where their
    randomness comes from.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        "pass an explicit int seed or numpy.random.Generator "
        f"(got {rng!r}); the hidden default_rng(0) fallback was removed"
    )


def ffn_output_bitmask(
    rows: int,
    cols: int,
    sparsity: float,
    dead_col_fraction: float = 0.25,
    *,
    rng: Union[int, np.random.Generator],
) -> Bitmask:
    """FFN-Reuse bitmask with column-correlated sparsity.

    ``dead_col_fraction`` of columns are fully sparse (condensable); the
    remaining columns carry Bernoulli occupancy tuned so the overall
    element sparsity equals ``sparsity``.
    """
    rng = as_rng(rng)
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError("sparsity must be in [0, 1]")
    if not 0.0 <= dead_col_fraction < 1.0:
        raise ValueError("dead_col_fraction must be in [0, 1)")
    live_fraction = 1.0 - dead_col_fraction
    # Element sparsity within live columns that hits the overall target.
    live_sparsity = 1.0 - (1.0 - sparsity) / live_fraction
    live_sparsity = min(max(live_sparsity, 0.0), 1.0)

    dead = rng.random(cols) < dead_col_fraction
    # Per-column activity rates vary (features differ in importance).
    col_scale = rng.beta(2.0, 2.0, size=cols) * 2.0
    keep_prob = np.clip((1.0 - live_sparsity) * col_scale, 0.0, 1.0)
    mask = rng.random((rows, cols)) < keep_prob[None, :]
    mask[:, dead] = False
    # Renormalize achieved sparsity toward the target by random flips.
    _tune_sparsity(mask, sparsity, dead, rng)
    return Bitmask(mask)


def _tune_sparsity(
    mask: np.ndarray, target: float, dead: np.ndarray, rng: np.random.Generator
) -> None:
    """Flip random live-column elements until sparsity ~= target."""
    size = mask.size
    want_nnz = int(round((1.0 - target) * size))
    live_cols = np.flatnonzero(~dead)
    if live_cols.size == 0:
        return
    current = int(mask.sum())
    if current < want_nnz:
        # Need more non-sparse elements among live columns.
        candidates = np.argwhere(~mask[:, live_cols])
        need = min(want_nnz - current, len(candidates))
        if need > 0:
            pick = rng.choice(len(candidates), size=need, replace=False)
            for idx in pick:
                r, c = candidates[idx]
                mask[r, live_cols[c]] = True
    elif current > want_nnz:
        candidates = np.argwhere(mask)
        drop = min(current - want_nnz, len(candidates))
        if drop > 0:
            pick = rng.choice(len(candidates), size=drop, replace=False)
            for idx in pick:
                r, c = candidates[idx]
                mask[r, c] = False


def attention_keepmask(
    tq: int,
    tk: int,
    top_k_ratio: float,
    one_hot_rate: float = 0.0,
    concentration: float = 1.5,
    *,
    rng: Union[int, np.random.Generator],
) -> Bitmask:
    """EP keep-mask: per-row top-k over shared key-popularity scores.

    ``one_hot_rate`` rows are dominance-collapsed (entirely skipped);
    ``concentration`` > 0 skews rows toward agreeing on the same keys
    (higher = more agreement = more condensable key columns).
    """
    rng = as_rng(rng)
    if not 0.0 < top_k_ratio <= 1.0:
        raise ValueError("top_k_ratio must be in (0, 1]")
    if not 0.0 <= one_hot_rate <= 1.0:
        raise ValueError("one_hot_rate must be in [0, 1]")
    keep_count = max(1, int(np.ceil(top_k_ratio * tk)))
    popularity = rng.gamma(shape=1.0 / max(concentration, 1e-6), size=tk)
    mask = np.zeros((tq, tk), dtype=bool)
    for row in range(tq):
        if rng.random() < one_hot_rate:
            continue  # one-hot row: exact computation fully skipped
        scores = popularity * rng.gamma(shape=2.0, size=tk)
        top = np.argpartition(-scores, keep_count - 1)[:keep_count]
        mask[row, top] = True
    return Bitmask(mask)


def denoising_trajectory(
    tokens: int,
    dim: int,
    iterations: int,
    smoothness: float = 0.9,
    *,
    rng: Union[int, np.random.Generator],
) -> np.ndarray:
    """A synthetic latent trajectory with inter-iteration smoothness.

    Returns ``(iterations, tokens, dim)``; adjacent iterations have cosine
    similarity roughly ``smoothness``, emulating the reverse-denoising
    drift of Fig. 7 for substrate-free experiments.
    """
    rng = as_rng(rng)
    if not 0.0 <= smoothness < 1.0:
        raise ValueError("smoothness must be in [0, 1)")
    out = np.empty((iterations, tokens, dim))
    x = rng.standard_normal((tokens, dim))
    out[0] = x
    noise_scale = float(np.sqrt(1.0 - smoothness**2))
    for i in range(1, iterations):
        x = smoothness * x + noise_scale * rng.standard_normal((tokens, dim))
        out[i] = x
    return out
