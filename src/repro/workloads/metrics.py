"""Evaluation metrics and dataset-metric proxies.

The paper reports FID, IS, R-Precision, FAD, Beat-Align, PFC, VQA and
PSNR-versus-vanilla per model (Table I). Real datasets and pretrained
feature extractors are unavailable offline, so this module provides:

- exact **PSNR vs vanilla** (identical to the paper's metric: both runs use
  the same seed, so divergence is purely the optimization error);
- **proxy metrics** that measure the same vanilla-vs-optimized divergence
  through the statistical lenses the original metrics use (Frechet distance
  for FID/FAD, retrieval precision for R-Precision, entropy for IS, beat
  correlation for Beat-Align). See DESIGN.md, substitutions table.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg


def psnr(reference: np.ndarray, test: np.ndarray, data_range: float = 0.0) -> float:
    """Peak signal-to-noise ratio of ``test`` against ``reference`` in dB."""
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError("psnr inputs must have identical shapes")
    mse = float(np.mean((reference - test) ** 2))
    if mse == 0.0:
        return float("inf")
    if data_range <= 0.0:
        data_range = float(reference.max() - reference.min())
        if data_range == 0.0:
            data_range = 1.0
    return 10.0 * float(np.log10(data_range**2 / mse))


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two flattened tensors."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(a @ b) / (na * nb)


def _feature_projection(dim_in: int, dim_out: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((dim_in, dim_out)) / np.sqrt(dim_in)


def random_features(samples: np.ndarray, dim_out: int = 16, seed: int = 7) -> np.ndarray:
    """Random-projection + tanh feature extractor (stands in for Inception).

    ``samples`` is ``(n, ...)``; features are ``(n, dim_out)``.
    """
    samples = np.asarray(samples, dtype=np.float64)
    flat = samples.reshape(samples.shape[0], -1)
    proj = _feature_projection(flat.shape[1], dim_out, seed)
    return np.tanh(flat @ proj)


def frechet_distance(
    mu1: np.ndarray, sigma1: np.ndarray, mu2: np.ndarray, sigma2: np.ndarray
) -> float:
    """Frechet distance between two Gaussians (the FID formula)."""
    diff = mu1 - mu2
    covmean = np.real(linalg.sqrtm(sigma1 @ sigma2))
    value = diff @ diff + np.trace(sigma1 + sigma2 - 2.0 * covmean)
    return float(max(value, 0.0))


def fid_proxy(
    reference: np.ndarray, generated: np.ndarray, feature_dim: int = 16, seed: int = 7
) -> float:
    """FID-style Frechet distance over random-projection features.

    Both inputs are ``(n, ...)`` stacks of samples.
    """
    ref_feat = random_features(reference, feature_dim, seed)
    gen_feat = random_features(generated, feature_dim, seed)
    mu1, mu2 = ref_feat.mean(axis=0), gen_feat.mean(axis=0)
    sigma1 = np.cov(ref_feat, rowvar=False) + 1e-6 * np.eye(feature_dim)
    sigma2 = np.cov(gen_feat, rowvar=False) + 1e-6 * np.eye(feature_dim)
    return frechet_distance(mu1, sigma1, mu2, sigma2)


def inception_score_proxy(generated: np.ndarray, classes: int = 8, seed: int = 11) -> float:
    """IS-style exp(mean KL(p(y|x) || p(y))) over a random classifier head."""
    feats = random_features(generated, classes, seed)
    exps = np.exp(feats - feats.max(axis=1, keepdims=True))
    probs = exps / exps.sum(axis=1, keepdims=True)
    marginal = probs.mean(axis=0)
    kl = np.sum(probs * (np.log(probs + 1e-12) - np.log(marginal + 1e-12)), axis=1)
    return float(np.exp(kl.mean()))


def r_precision_proxy(
    generated: np.ndarray, condition_embeddings: np.ndarray, top_k: int = 1
) -> float:
    """Retrieval precision: does sample i match its own condition embedding?

    Both inputs are ``(n, ...)``; a match is counted when the true condition
    ranks in the top-k by feature cosine similarity, mirroring the paper's
    text-motion R-Precision protocol.
    """
    gen_feat = random_features(generated, 16, seed=13)
    cond_feat = random_features(condition_embeddings, 16, seed=13)
    n = gen_feat.shape[0]
    sims = gen_feat @ cond_feat.T
    hits = 0
    for i in range(n):
        order = np.argsort(-sims[i])
        if i in order[:top_k]:
            hits += 1
    return hits / n


def beat_alignment_proxy(motion: np.ndarray, beats_period: int = 8) -> float:
    """Beat-Align-style score: energy autocorrelation at the beat period.

    ``motion`` is ``(frames, channels)``; the score is the normalized
    autocorrelation of frame-wise motion energy at ``beats_period``.
    """
    motion = np.asarray(motion, dtype=np.float64)
    energy = np.linalg.norm(np.diff(motion, axis=0), axis=1)
    if energy.size <= beats_period or float(energy.std()) == 0.0:
        return 0.0
    centered = energy - energy.mean()
    ac = float(
        centered[:-beats_period] @ centered[beats_period:]
    ) / (float(centered @ centered) + 1e-12)
    return 0.5 * (1.0 + ac)


def physical_foot_contact_proxy(motion: np.ndarray) -> float:
    """PFC-style score: mean squared acceleration (lower is smoother)."""
    motion = np.asarray(motion, dtype=np.float64)
    if motion.shape[0] < 3:
        return 0.0
    accel = np.diff(motion, n=2, axis=0)
    return float(np.mean(accel**2))
