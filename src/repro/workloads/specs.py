"""Benchmark model specifications.

Seven diffusion models spanning the paper's three network types
(Table I, Fig. 4). Each spec carries:

- **sim dims** — small, runnable dimensions for the numpy substrate; the
  sparsity algorithms operate on these activations directly;
- **paper dims** — the published model scale, used only for analytic
  operation counting (Fig. 4) and for driving the hardware simulator with
  realistic tile counts;
- **EXION configuration** — the per-model FFN-Reuse period ``N``,
  eager-prediction ``(q_th, k)`` and the paper's reported sparsity levels
  (Table I) used as calibration targets and reference points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ModelSpec:
    """Static description of one benchmark diffusion model."""

    name: str
    display_name: str
    task: str
    dataset: str
    network_type: int  # 1, 2 or 3 per paper Fig. 3 (a)

    # Runnable (simulation) dimensions.
    tokens: int
    dim: int
    num_heads: int
    depth: int
    ffn_mult: int
    activation: str
    context_dim: Optional[int]
    use_adaln: bool
    total_iterations: int

    # Published model scale, for analytic op counting and HW tiling.
    paper_tokens: int
    paper_dim: int
    paper_heads: int
    paper_depth: int
    paper_ffn_mult: int
    paper_context_tokens: Optional[int]
    paper_total_ops: float  # ops per iteration, paper Fig. 4
    paper_transformer_share: float  # fraction of ops in transformer blocks

    # EXION configuration (paper Table I).
    sparse_iters_n: int  # sparse iterations per dense iteration
    target_inter_sparsity: float  # FFN-Reuse output sparsity
    target_intra_sparsity: float  # EP attention output sparsity
    q_threshold: float  # EP dominance threshold q_th
    top_k_ratio: float  # EP top-k keep ratio k

    # Reference results for benches (paper Fig. 6 and Section II-B).
    paper_ffn_ops_reduction: float

    # Video models: frames per latent. When set, the lowering pipeline
    # (:mod:`repro.program.lower`) factorizes self-attention into
    # per-frame spatial attention plus a temporal-attention group across
    # frames; ``paper_tokens`` must be divisible by this. ``None`` for
    # image/motion/audio models.
    paper_temporal_frames: Optional[int] = None

    @property
    def has_cross_attention(self) -> bool:
        return self.context_dim is not None

    @property
    def has_temporal_attention(self) -> bool:
        return self.paper_temporal_frames is not None

    @property
    def has_resblocks(self) -> bool:
        return self.network_type == 2

    @property
    def dense_period(self) -> int:
        """Iterations per FFN-Reuse period: one dense plus N sparse."""
        return self.sparse_iters_n + 1


MODEL_SPECS: dict[str, ModelSpec] = {
    "mld": ModelSpec(
        name="mld",
        display_name="MLD",
        task="text-to-motion",
        dataset="HumanML3D",
        network_type=1,
        tokens=4,
        dim=64,
        num_heads=4,
        depth=3,
        ffn_mult=4,
        activation="gelu",
        context_dim=64,
        use_adaln=False,
        total_iterations=50,
        paper_tokens=4,
        paper_dim=256,
        paper_heads=4,
        paper_depth=9,
        paper_ffn_mult=4,
        paper_context_tokens=4,
        paper_total_ops=9.1e7,
        paper_transformer_share=0.30,
        sparse_iters_n=9,
        target_inter_sparsity=0.95,
        target_intra_sparsity=0.30,
        q_threshold=0.3,
        top_k_ratio=0.7,
        paper_ffn_ops_reduction=0.7758,
    ),
    "mdm": ModelSpec(
        name="mdm",
        display_name="MDM",
        task="text-to-motion",
        dataset="HumanML3D",
        network_type=3,
        tokens=24,
        dim=64,
        num_heads=4,
        depth=3,
        ffn_mult=4,
        activation="gelu",
        context_dim=None,
        use_adaln=False,
        total_iterations=50,
        paper_tokens=196,
        paper_dim=512,
        paper_heads=8,
        paper_depth=8,
        paper_ffn_mult=4,
        paper_context_tokens=None,
        paper_total_ops=1.2e11,
        paper_transformer_share=0.91,
        sparse_iters_n=5,
        target_inter_sparsity=0.95,
        target_intra_sparsity=0.95,
        q_threshold=0.3,
        top_k_ratio=0.05,
        paper_ffn_ops_reduction=0.7951,
    ),
    "edge": ModelSpec(
        name="edge",
        display_name="EDGE",
        task="music-to-motion",
        dataset="AIST++",
        network_type=3,
        tokens=20,
        dim=64,
        num_heads=4,
        depth=3,
        ffn_mult=4,
        activation="gelu",
        context_dim=64,
        use_adaln=False,
        total_iterations=50,
        paper_tokens=150,
        paper_dim=512,
        paper_heads=8,
        paper_depth=12,
        paper_ffn_mult=4,
        paper_context_tokens=77,
        paper_total_ops=9.1e9,
        paper_transformer_share=0.46,
        sparse_iters_n=5,
        target_inter_sparsity=0.95,
        target_intra_sparsity=0.50,
        q_threshold=0.9,
        top_k_ratio=0.5,
        paper_ffn_ops_reduction=0.7786,
    ),
    "make_an_audio": ModelSpec(
        name="make_an_audio",
        display_name="Make-an-Audio",
        task="text-to-audio",
        dataset="AudioCaps",
        network_type=2,
        tokens=16,
        dim=64,
        num_heads=4,
        depth=2,
        ffn_mult=4,
        activation="gelu",
        context_dim=64,
        use_adaln=False,
        total_iterations=50,
        paper_tokens=256,
        paper_dim=640,
        paper_heads=8,
        paper_depth=8,
        paper_ffn_mult=4,
        paper_context_tokens=77,
        paper_total_ops=1.9e11,
        paper_transformer_share=0.67,
        sparse_iters_n=5,
        target_inter_sparsity=0.97,
        target_intra_sparsity=0.80,
        q_threshold=0.7,
        top_k_ratio=0.2,
        paper_ffn_ops_reduction=0.5279,
    ),
    "stable_diffusion": ModelSpec(
        name="stable_diffusion",
        display_name="Stable Diffusion",
        task="text-to-image",
        dataset="COCO 2014",
        network_type=2,
        tokens=16,
        dim=64,
        num_heads=4,
        depth=2,
        ffn_mult=4,
        activation="geglu",
        context_dim=64,
        use_adaln=False,
        total_iterations=50,
        paper_tokens=1024,
        paper_dim=640,
        paper_heads=8,
        paper_depth=16,
        paper_ffn_mult=4,
        paper_context_tokens=77,
        paper_total_ops=3.6e11,
        paper_transformer_share=0.55,
        sparse_iters_n=4,
        target_inter_sparsity=0.97,
        target_intra_sparsity=0.20,
        q_threshold=0.8,
        top_k_ratio=0.8,
        paper_ffn_ops_reduction=0.5247,
    ),
    "dit": ModelSpec(
        name="dit",
        display_name="DiT",
        task="class-to-image",
        dataset="ImageNet 2012",
        network_type=3,
        tokens=16,
        dim=64,
        num_heads=4,
        depth=4,
        ffn_mult=4,
        activation="gelu",
        context_dim=None,
        use_adaln=True,
        total_iterations=100,
        paper_tokens=256,
        paper_dim=1152,
        paper_heads=16,
        paper_depth=28,
        paper_ffn_mult=4,
        paper_context_tokens=None,
        paper_total_ops=2.5e13,
        paper_transformer_share=1.00,
        sparse_iters_n=2,
        target_inter_sparsity=0.80,
        target_intra_sparsity=0.95,
        q_threshold=0.15,
        top_k_ratio=0.05,
        paper_ffn_ops_reduction=0.8541,
    ),
    "videocrafter2": ModelSpec(
        name="videocrafter2",
        display_name="VideoCrafter2",
        task="text-to-video",
        dataset="ECTV",
        network_type=2,
        tokens=16,
        dim=64,
        num_heads=4,
        depth=2,
        ffn_mult=4,
        activation="gelu",
        context_dim=64,
        use_adaln=False,
        total_iterations=50,
        paper_tokens=2048,
        paper_dim=1024,
        paper_heads=16,
        paper_depth=16,
        paper_ffn_mult=4,
        paper_context_tokens=77,
        paper_total_ops=2.1e12,
        paper_transformer_share=0.93,
        sparse_iters_n=3,
        target_inter_sparsity=0.70,
        target_intra_sparsity=0.50,
        q_threshold=2.0,
        top_k_ratio=0.5,
        paper_ffn_ops_reduction=0.7789,
    ),
    # ------------------------------------------------------------------
    # Extended scenarios beyond the paper's Table I. These exercise the
    # lowering pipeline (repro.program): registering a spec here is all
    # it takes to run a model on every backend — the EXION configs, the
    # GPU/Cambricon-D/Delta-DiT baselines, `repro explore` and
    # `repro cluster` all price the lowered IR with no per-model code.
    # ------------------------------------------------------------------
    "latte_video_dit": ModelSpec(
        name="latte_video_dit",
        display_name="Latte-class video DiT",
        task="text-to-video",
        dataset="WebVid-class",
        network_type=3,
        tokens=32,
        dim=64,
        num_heads=4,
        depth=3,
        ffn_mult=4,
        activation="gelu",
        context_dim=None,
        use_adaln=True,
        total_iterations=50,
        paper_tokens=4096,  # 16 frames x 256 spatial tokens
        paper_dim=1152,
        paper_heads=16,
        paper_depth=28,
        paper_ffn_mult=4,
        paper_context_tokens=None,
        paper_total_ops=4.6e13,
        paper_transformer_share=1.00,
        sparse_iters_n=3,
        target_inter_sparsity=0.80,
        target_intra_sparsity=0.90,
        q_threshold=0.2,
        top_k_ratio=0.1,
        paper_ffn_ops_reduction=0.80,
        paper_temporal_frames=16,
    ),
    "sdxl_unet": ModelSpec(
        name="sdxl_unet",
        display_name="SDXL-class UNet",
        task="text-to-image",
        dataset="COCO 2014",
        network_type=2,
        tokens=16,
        dim=64,
        num_heads=4,
        depth=2,
        ffn_mult=4,
        activation="geglu",
        context_dim=64,
        use_adaln=False,
        total_iterations=50,
        paper_tokens=4096,
        paper_dim=1280,
        paper_heads=20,
        paper_depth=10,
        paper_ffn_mult=4,
        paper_context_tokens=77,
        paper_total_ops=3.0e12,
        paper_transformer_share=0.72,
        sparse_iters_n=4,
        target_inter_sparsity=0.95,
        target_intra_sparsity=0.30,
        q_threshold=0.8,
        top_k_ratio=0.7,
        paper_ffn_ops_reduction=0.55,
    ),
}

BENCHMARK_ORDER: tuple[str, ...] = (
    "mld",
    "mdm",
    "edge",
    "make_an_audio",
    "stable_diffusion",
    "dit",
    "videocrafter2",
)

#: Models beyond the paper's Table I set, enabled purely by the lowering
#: pipeline (no backend-specific code anywhere).
EXTENDED_ORDER: tuple[str, ...] = (
    "latte_video_dit",
    "sdxl_unet",
)

#: Every registered model: the Table I benchmarks plus the extended set.
ALL_MODEL_ORDER: tuple[str, ...] = BENCHMARK_ORDER + EXTENDED_ORDER


def get_spec(name: str) -> ModelSpec:
    """Look up a benchmark model spec by name.

    Raises ``KeyError`` with the list of known names on a miss.
    """
    try:
        return MODEL_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_SPECS))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None
