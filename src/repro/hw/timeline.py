"""Per-iteration simulation timelines.

``simulate_timeline`` mirrors :meth:`ExionAccelerator.simulate_plan` but
returns the per-iteration latency/energy/bound records, exposing the
dense/sparse cadence the FFN-Reuse schedule creates — dense iterations
are visibly longer (full FFN compute + CAU work + full weight fetch),
which is the microarchitectural signature of the algorithm. Like the
accelerator, it prices a lowered :class:`~repro.program.ir.PhasePlan`
rather than walking the model itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hw.accelerator import ExionAccelerator
from repro.hw.profile import SparsityProfile
from repro.workloads.specs import ModelSpec


@dataclass
class IterationRecord:
    """One denoising iteration's simulated execution."""

    index: int
    is_dense: bool
    compute_s: float
    dram_s: float
    latency_s: float
    dram_bytes: int
    macs_computed: int

    @property
    def bound(self) -> str:
        return "compute" if self.compute_s >= self.dram_s else "memory"


@dataclass
class Timeline:
    """All iteration records of one simulated generation."""

    accelerator: str
    model: str
    records: list = field(default_factory=list)

    @property
    def total_latency_s(self) -> float:
        return sum(r.latency_s for r in self.records)

    def dense_records(self) -> list:
        return [r for r in self.records if r.is_dense]

    def sparse_records(self) -> list:
        return [r for r in self.records if not r.is_dense]

    @property
    def dense_sparse_latency_ratio(self) -> float:
        """Mean dense-iteration latency over mean sparse-iteration latency
        (steady-state, excluding the first iteration's weight fill)."""
        dense = [r.latency_s for r in self.dense_records() if r.index > 0]
        sparse = [r.latency_s for r in self.sparse_records() if r.index > 0]
        if not dense or not sparse:
            return 1.0
        return (sum(dense) / len(dense)) / (sum(sparse) / len(sparse))


def phase_segments(timeline: Timeline) -> list:
    """Contiguous trace segments of a priced timeline, in plan order.

    Each iteration becomes one segment dict shaped for
    :meth:`repro.obs.observer.Observer.on_phase_segment`: start/end are
    cumulative latency offsets from generation start (iteration k begins
    when k-1's latency ends — the accelerator serializes iterations), so
    the segments tile ``[0, total_latency_s)`` exactly.
    """
    segments = []
    clock = 0.0
    for record in timeline.records:
        segments.append({
            "start_s": clock,
            "end_s": clock + record.latency_s,
            "phase": "dense" if record.is_dense else "sparse",
            "bound": record.bound,
            "index": record.index,
            "dram_bytes": record.dram_bytes,
            "macs_computed": record.macs_computed,
        })
        clock += record.latency_s
    return segments


def simulate_timeline(
    accelerator: ExionAccelerator,
    spec: ModelSpec,
    profile: Optional[SparsityProfile] = None,
    enable_ffn_reuse: bool = True,
    enable_eager_prediction: bool = True,
    batch: int = 1,
    iterations: Optional[int] = None,
) -> Timeline:
    """Per-iteration records of one simulated generation.

    The lowering and profile synthesis go through the process-wide
    :class:`~repro.program.cache.PlanCache`, so a timeline over an
    already-priced configuration re-lowers nothing.
    """
    from repro.program.cache import get_plan_cache

    cache = get_plan_cache()
    if profile is None:
        profile = cache.profile(spec)
    plan = cache.plan(
        spec,
        enable_ffn_reuse=enable_ffn_reuse,
        enable_eager_prediction=enable_eager_prediction,
        iterations=iterations,
        batch=batch,
    )

    # One pricing substrate: the same per-phase costs, residency fraction
    # and per-step DRAM math simulate_plan uses.
    costs, cached_fraction = accelerator._phase_costs(plan, profile)

    timeline = Timeline(accelerator=accelerator.name, model=spec.name)
    for step in plan.steps:
        cost = costs[step.is_dense]
        compute_s, _ = accelerator._compute_seconds(cost)
        dram_bytes = accelerator._step_dram_bytes(cost, step, cached_fraction)
        dram_s = accelerator.dram.transfer_seconds(dram_bytes)
        timeline.records.append(
            IterationRecord(
                index=step.index,
                is_dense=step.is_dense,
                compute_s=compute_s,
                dram_s=dram_s,
                latency_s=max(compute_s, dram_s),
                dram_bytes=dram_bytes,
                macs_computed=cost.macs_computed,
            )
        )
    return timeline
