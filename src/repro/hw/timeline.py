"""Per-iteration simulation timelines.

``simulate_timeline`` mirrors :meth:`ExionAccelerator.simulate` but returns
the per-iteration latency/energy/bound records, exposing the dense/sparse
cadence the FFN-Reuse schedule creates — dense iterations are visibly
longer (full FFN compute + CAU work + full weight fetch), which is the
microarchitectural signature of the algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.ffn_reuse import schedule_phases
from repro.hw.accelerator import ExionAccelerator
from repro.hw.profile import SparsityProfile, estimate_profile
from repro.workloads.specs import ModelSpec


@dataclass
class IterationRecord:
    """One denoising iteration's simulated execution."""

    index: int
    is_dense: bool
    compute_s: float
    dram_s: float
    latency_s: float
    dram_bytes: int
    macs_computed: int

    @property
    def bound(self) -> str:
        return "compute" if self.compute_s >= self.dram_s else "memory"


@dataclass
class Timeline:
    """All iteration records of one simulated generation."""

    accelerator: str
    model: str
    records: list = field(default_factory=list)

    @property
    def total_latency_s(self) -> float:
        return sum(r.latency_s for r in self.records)

    def dense_records(self) -> list:
        return [r for r in self.records if r.is_dense]

    def sparse_records(self) -> list:
        return [r for r in self.records if not r.is_dense]

    @property
    def dense_sparse_latency_ratio(self) -> float:
        """Mean dense-iteration latency over mean sparse-iteration latency
        (steady-state, excluding the first iteration's weight fill)."""
        dense = [r.latency_s for r in self.dense_records() if r.index > 0]
        sparse = [r.latency_s for r in self.sparse_records() if r.index > 0]
        if not dense or not sparse:
            return 1.0
        return (sum(dense) / len(dense)) / (sum(sparse) / len(sparse))


def simulate_timeline(
    accelerator: ExionAccelerator,
    spec: ModelSpec,
    profile: Optional[SparsityProfile] = None,
    enable_ffn_reuse: bool = True,
    enable_eager_prediction: bool = True,
    batch: int = 1,
    iterations: Optional[int] = None,
) -> Timeline:
    """Per-iteration records of one simulated generation."""
    if profile is None:
        profile = estimate_profile(spec)
    total_iters = iterations if iterations is not None else spec.total_iterations
    if enable_ffn_reuse:
        phases = schedule_phases(total_iters, spec.sparse_iters_n)
    else:
        phases = [True] * total_iters

    costs = {
        False: accelerator.dsc.iteration_cost(
            spec, profile, enable_ffn_reuse, enable_eager_prediction,
            sparse_phase=True, batch=batch,
        ),
        True: accelerator.dsc.iteration_cost(
            spec, profile, enable_ffn_reuse, enable_eager_prediction,
            sparse_phase=False, batch=batch,
        ),
    }
    weight_bytes_iter = costs[True].weight_bytes
    cached_fraction = min(
        1.0, accelerator.gsc_bytes / max(weight_bytes_iter, 1)
    )

    timeline = Timeline(accelerator=accelerator.name, model=spec.name)
    for index, is_dense in enumerate(phases):
        cost = costs[is_dense]
        compute_s, _ = accelerator._compute_seconds(cost)
        dram_bytes = cost.activation_bytes
        if index == 0:
            dram_bytes += cost.weight_bytes
        else:
            dram_bytes += int(cost.weight_bytes * (1.0 - cached_fraction))
        dram_s = accelerator.dram.transfer_seconds(dram_bytes)
        timeline.records.append(
            IterationRecord(
                index=index,
                is_dense=is_dense,
                compute_s=compute_s,
                dram_s=dram_s,
                latency_s=max(compute_s, dram_s),
                dram_bytes=dram_bytes,
                macs_computed=cost.macs_computed,
            )
        )
    return timeline
