"""On-chip SRAM models: IMEM / WMEM / OMEM / CVMEM / GSC (paper Fig. 10-11).

These are bookkeeping models: capacity checks, bank counts and the
double/triple buffering scheme that hides fetch latency and feeds the
broadcast lines. Access energy is folded into the Table III "memories"
power figure (see :mod:`repro.hw.energy`), so banks only count accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SRAM:
    """A banked scratchpad with N-way buffering."""

    name: str
    size_bytes: int
    banks: int
    buffering: int = 1  # 1 = single, 2 = double, 3 = triple

    reads: int = 0
    writes: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.banks <= 0:
            raise ValueError("size and banks must be positive")
        if self.buffering not in (1, 2, 3):
            raise ValueError("buffering must be 1, 2 or 3")

    @property
    def bank_bytes(self) -> int:
        return self.size_bytes // self.banks

    @property
    def total_bytes(self) -> int:
        """Physical capacity including all buffer copies."""
        return self.size_bytes * self.buffering

    def fits(self, num_bytes: int) -> bool:
        """Does one buffer hold ``num_bytes``?"""
        return 0 <= num_bytes <= self.size_bytes

    def tiles_required(self, num_bytes: int) -> int:
        """How many refills are needed to stream ``num_bytes`` through."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0
        return -(-num_bytes // self.size_bytes)

    def record_read(self, count: int = 1) -> None:
        self.reads += count

    def record_write(self, count: int = 1) -> None:
        self.writes += count


@dataclass
class DSCMemories:
    """The memory complement of one DSC (paper Figs. 10 and 11)."""

    imem: SRAM = field(
        default_factory=lambda: SRAM("IMEM", 24 * 1024, banks=16, buffering=2)
    )
    wmem: SRAM = field(
        default_factory=lambda: SRAM("WMEM", 192 * 1024, banks=16, buffering=3)
    )
    omem: SRAM = field(
        default_factory=lambda: SRAM("OMEM", 24 * 1024, banks=16, buffering=1)
    )
    cvmem: SRAM = field(
        default_factory=lambda: SRAM("CVMEM", 50 * 1024, banks=16, buffering=1)
    )
    operand: SRAM = field(
        default_factory=lambda: SRAM("OperandMem", 96 * 1024, banks=4, buffering=1)
    )
    instmem: SRAM = field(
        default_factory=lambda: SRAM("INSTMEM", 3 * 1024, banks=1, buffering=1)
    )

    def all_srams(self) -> list:
        return [self.imem, self.wmem, self.omem, self.cvmem, self.operand,
                self.instmem]

    @property
    def total_bytes(self) -> int:
        return sum(s.total_bytes for s in self.all_srams())


#: Global scratchpad per DSC cluster (Fig. 10).
GSC_BYTES = 512 * 1024
