"""Instruction-driven DSC execution.

Runs the top controller's instruction stream (:mod:`repro.hw.controller`)
against the engine cycle models, producing per-engine cycle totals for one
iteration. Instruction streams are generated from the lowered
:class:`~repro.program.ir.IterationProgram`, so this is the
microarchitectural cross-check for the analytic
:class:`repro.hw.dsc.DSCModel`: both views of the same lowered iteration
must agree on SDUE cycles for the dense configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.cfse import CFSEModel
from repro.hw.controller import Instruction, Opcode, ProgramBuilder
from repro.hw.dpu import dot_product_cycles
from repro.hw.epre import EPREModel
from repro.hw.sdue import SDUEModel
from repro.workloads.specs import ModelSpec


@dataclass
class ExecutionTrace:
    """Per-engine cycle totals from one instruction-stream execution."""

    sdue_cycles: int = 0
    epre_cycles: int = 0
    cfse_cycles: int = 0
    cau_cycles: int = 0
    load_cycles: int = 0
    store_cycles: int = 0
    instructions: int = 0
    by_opcode: dict = field(default_factory=dict)

    @property
    def engine_critical_path(self) -> int:
        """Slowest engine (they pipeline against each other)."""
        return max(self.sdue_cycles, self.epre_cycles, self.cfse_cycles)


class InstructionExecutor:
    """Dispatches controller instructions onto the engine cycle models.

    Loads and stores are assumed hidden by double/triple buffering
    (their cycles are tracked but excluded from the critical path, matching
    the paper's buffering scheme).
    """

    def __init__(self, spec: ModelSpec) -> None:
        self.spec = spec
        self.sdue = SDUEModel()
        self.epre = EPREModel()
        self.cfse = CFSEModel()

    def execute(self, program: list) -> ExecutionTrace:
        """Execute one instruction stream and return its cycle trace."""
        trace = ExecutionTrace()
        for inst in program:
            trace.instructions += 1
            trace.by_opcode[inst.opcode] = (
                trace.by_opcode.get(inst.opcode, 0) + 1
            )
            for _ in range(inst.repeat):
                self._dispatch(inst, trace)
        return trace

    def _dispatch(self, inst: Instruction, trace: ExecutionTrace) -> None:
        op = inst.opcode
        if op is Opcode.RUN_SDUE_DENSE:
            trace.sdue_cycles += self.sdue.dense_cycles(
                inst.operand0, inst.operand1, inst.operand2
            )
        elif op is Opcode.RUN_SDUE_MERGED:
            # Merged execution is bounded above by dense execution; the
            # instruction-level model prices the dense bound (the analytic
            # model refines with the ConMerge remaining ratio).
            trace.sdue_cycles += self.sdue.dense_cycles(
                inst.operand0, inst.operand1, inst.operand2
            )
        elif op is Opcode.RUN_EPRE:
            trace.epre_cycles += self.epre.prediction_cycles(
                inst.operand0, inst.operand1, inst.operand2
            )
        elif op is Opcode.RUN_CFSE:
            elements = max(inst.operand0 * inst.operand1, 1)
            trace.cfse_cycles += self.cfse.function_cycles(
                "softmax", elements
            )
        elif op is Opcode.RUN_CAU:
            # One classify cycle per output column per row tile.
            row_tiles = -(-inst.operand0 // 16)
            trace.cau_cycles += inst.operand1 * row_tiles
        elif op is Opcode.LOAD_INPUT:
            trace.load_cycles += dot_product_cycles(
                inst.operand0 * inst.operand1
            )
        elif op is Opcode.LOAD_WEIGHT:
            trace.load_cycles += dot_product_cycles(
                inst.operand0 * inst.operand1
            )
        elif op is Opcode.STORE_OUTPUT:
            trace.store_cycles += dot_product_cycles(
                inst.operand0 * inst.operand1
            )
        elif op is Opcode.SYNC:
            pass
        else:  # pragma: no cover - exhaustive over the ISA
            raise ValueError(f"unknown opcode {op}")


def execute_iteration(spec: ModelSpec, sparse_phase: bool) -> ExecutionTrace:
    """Build and execute one iteration's instruction stream."""
    program = ProgramBuilder(spec).build_iteration(sparse_phase)
    return InstructionExecutor(spec).execute(program)
