"""External DRAM model (the paper integrates Ramulator; see DESIGN.md).

A stream-level bandwidth/latency/energy model is sufficient here: the
accelerator's DRAM traffic is long sequential weight and activation bursts,
for which achieved bandwidth and per-bit transfer energy dominate. Energy
constants follow the vendor figures the paper cites for LPDDR5/GDDR6
([14], [17]).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRAMModel:
    """Bandwidth / latency / energy of one external-memory configuration."""

    name: str
    bandwidth_gbps: float  # GB/s achieved for streaming bursts
    energy_pj_per_bit: float
    base_latency_ns: float = 100.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.energy_pj_per_bit < 0:
            raise ValueError("energy must be non-negative")

    def transfer_seconds(self, num_bytes: float) -> float:
        """Time to stream ``num_bytes`` (burst latency + bandwidth term)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.base_latency_ns * 1e-9 + num_bytes / (self.bandwidth_gbps * 1e9)

    def transfer_energy_j(self, num_bytes: float) -> float:
        """Energy to move ``num_bytes`` across the interface."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes * 8.0 * self.energy_pj_per_bit * 1e-12

    def scaled(self, bandwidth_gbps: float) -> "DRAMModel":
        """Same technology at a different aggregate bandwidth."""
        return DRAMModel(
            name=self.name,
            bandwidth_gbps=bandwidth_gbps,
            energy_pj_per_bit=self.energy_pj_per_bit,
            base_latency_ns=self.base_latency_ns,
        )


#: LPDDR5 as used by EXION4 and the Jetson Orin Nano (edge setting).
LPDDR5 = DRAMModel(name="LPDDR5", bandwidth_gbps=51.0, energy_pj_per_bit=4.0)

#: GDDR6 as used by EXION24 and the RTX 6000 Ada (server setting).
GDDR6 = DRAMModel(name="GDDR6", bandwidth_gbps=819.0, energy_pj_per_bit=7.0)

#: HBM2e for the EXION42 / A100 comparison (Fig. 19 (b)).
HBM2E = DRAMModel(name="HBM2e", bandwidth_gbps=1935.0, energy_pj_per_bit=3.5)

#: Memory technologies by lower-case name, for custom accelerator configs
#: and the design-space explorer's ``dram`` knob.
DRAM_TECHNOLOGIES = {
    "lpddr5": LPDDR5,
    "gddr6": GDDR6,
    "hbm2e": HBM2E,
}


def get_dram(name: str) -> DRAMModel:
    """Resolve a technology name (case-insensitive) into its model."""
    try:
        return DRAM_TECHNOLOGIES[str(name).lower()]
    except KeyError:
        raise ValueError(
            f"unknown DRAM technology {name!r}; "
            f"known: {', '.join(sorted(DRAM_TECHNOLOGIES))}"
        ) from None
