"""Data mapping: compatibility facade over the unified lowering pipeline.

The per-iteration MMUL workload extraction that used to live here moved
to :mod:`repro.program.lower` — the repository's single model-structure
traversal. This module keeps the historical ``repro.hw.mapping`` names
importable for existing call sites; it contains **no** traversal of its
own:

- :class:`MMULWorkload` is the IR's :class:`~repro.program.ir.Op`;
- :func:`transformer_block_workloads` / :func:`iteration_workloads` /
  :func:`iteration_macs` delegate to the paper-scale lowering.
"""

from __future__ import annotations

from repro.program.ir import (
    MMUL_BYTES_PER_ELEMENT,
    Op as MMULWorkload,
    WEIGHT_BYTES_PER_ELEMENT,
)
from repro.program.lower import lower_program, spec_block_ops
from repro.workloads.specs import ModelSpec


def transformer_block_workloads(spec: ModelSpec) -> list:
    """MMULs of one transformer block at paper scale."""
    return spec_block_ops(spec, scale="paper")


def iteration_workloads(spec: ModelSpec) -> list:
    """All MMULs of one denoising iteration at paper scale."""
    return list(lower_program(spec, scale="paper").ops)


def iteration_macs(spec: ModelSpec) -> dict:
    """MAC totals per Fig. 4 category for one iteration."""
    return lower_program(spec, scale="paper").macs_by_kind()


__all__ = [
    "MMULWorkload",
    "MMUL_BYTES_PER_ELEMENT",
    "WEIGHT_BYTES_PER_ELEMENT",
    "iteration_macs",
    "iteration_workloads",
    "transformer_block_workloads",
]
