"""Data mapping: per-iteration MMUL workload extraction from a model spec.

The accelerator simulator consumes a list of MMUL workloads (with Fig. 4's
operation categories) derived from the *published* model dimensions, so
tile counts and DRAM traffic match the scale the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.specs import ModelSpec

#: Activation operand width on the SDUE datapath (INT12 padded to 16 bit
#: for bank alignment).
MMUL_BYTES_PER_ELEMENT = 2

#: Weight storage width: INT12 packed densely in DRAM/GSC (1.5 bytes).
WEIGHT_BYTES_PER_ELEMENT = 1.5


@dataclass(frozen=True)
class MMULWorkload:
    """One MMUL of shape ``(r, k) @ (k, c)`` repeated ``count`` times."""

    name: str
    kind: str  # qkv | attention | ffn1 | ffn2 | proj | etc
    r: int
    k: int
    c: int
    count: int = 1
    #: False for activation-by-activation MMULs (QK^T, probs @ V), which
    #: fetch no weights from DRAM.
    has_weights: bool = True

    def __post_init__(self) -> None:
        if min(self.r, self.k, self.c) <= 0 or self.count <= 0:
            raise ValueError("workload dimensions must be positive")

    @property
    def macs(self) -> int:
        return self.r * self.k * self.c * self.count

    @property
    def weight_bytes(self) -> int:
        """Weight footprint per execution (INT12-packed)."""
        if not self.has_weights:
            return 0
        return int(self.k * self.c * WEIGHT_BYTES_PER_ELEMENT * self.count)


def transformer_block_workloads(spec: ModelSpec) -> list:
    """MMULs of one transformer block at paper scale."""
    t = spec.paper_tokens
    d = spec.paper_dim
    heads = spec.paper_heads
    head_dim = d // heads
    hidden = spec.paper_ffn_mult * d
    ffn1_cols = 2 * hidden if spec.activation == "geglu" else hidden

    loads = [
        MMULWorkload("q_proj", "qkv", t, d, d),
        MMULWorkload("k_proj", "qkv", t, d, d),
        MMULWorkload("v_proj", "qkv", t, d, d),
        MMULWorkload("attn_score", "attention", t, head_dim, t, count=heads,
                     has_weights=False),
        MMULWorkload("attn_av", "attention", t, t, head_dim, count=heads,
                     has_weights=False),
        MMULWorkload("out_proj", "attention", t, d, d),
        MMULWorkload("ffn_linear1", "ffn1", t, d, ffn1_cols),
        MMULWorkload("ffn_linear2", "ffn2", t, hidden, d),
    ]
    ctx = spec.paper_context_tokens
    if ctx:
        loads.extend(
            [
                MMULWorkload("xattn_q_proj", "qkv", t, d, d),
                MMULWorkload("xattn_k_proj", "qkv", ctx, d, d),
                MMULWorkload("xattn_v_proj", "qkv", ctx, d, d),
                MMULWorkload(
                    "xattn_score", "attention", t, head_dim, ctx, count=heads,
                    has_weights=False,
                ),
                MMULWorkload(
                    "xattn_av", "attention", t, ctx, head_dim, count=heads,
                    has_weights=False,
                ),
                MMULWorkload("xattn_out_proj", "attention", t, d, d),
            ]
        )
    return loads


def iteration_workloads(spec: ModelSpec) -> list:
    """All MMULs of one denoising iteration at paper scale.

    Transformer blocks repeat ``paper_depth`` times; the non-transformer
    remainder (ResBlocks, projections, VAE/conditioning amortized per
    iteration) is modelled as one dense ``etc`` workload sized from the
    spec's transformer share — matching Fig. 4's "Etc." category, which
    EXION executes densely (no sparsity optimization applies there).
    """
    from dataclasses import replace

    block_loads = transformer_block_workloads(spec)
    loads = [
        replace(load, count=load.count * spec.paper_depth)
        for load in block_loads
    ]
    transformer_macs = sum(load.macs for load in loads)
    share = spec.paper_transformer_share
    if share < 1.0:
        etc_macs = transformer_macs * (1.0 - share) / share
        # Shape the remainder as square-ish MMUL tiles at the model width.
        k = spec.paper_dim
        c = spec.paper_dim
        r = max(1, int(round(etc_macs / (k * c))))
        loads.append(MMULWorkload("non_transformer", "etc", r, k, c))
    return loads


def iteration_macs(spec: ModelSpec) -> dict:
    """MAC totals per Fig. 4 category for one iteration."""
    totals = {"qkv": 0, "attention": 0, "ffn": 0, "etc": 0}
    for load in iteration_workloads(spec):
        kind = load.kind
        if kind in ("ffn1", "ffn2"):
            kind = "ffn"
        totals[kind] += load.macs
    return totals
