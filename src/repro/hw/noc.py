"""Network-on-chip between the DSCs and the global scratchpad (Fig. 10).

The paper's architecture connects the GSC to the DSCs via a NoC; weights
broadcast to all DSCs (each DSC works on different output rows of the same
layer) while activations unicast. The model prices both patterns and
reports whether the NoC ever throttles the DRAM stream — with the paper's
configuration it should not (the NoC is provisioned above DRAM bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NoCConfig:
    """Link/topology parameters."""

    num_dscs: int
    link_bytes_per_cycle: int = 64  # per-DSC link width
    clock_hz: float = 800e6

    def __post_init__(self) -> None:
        if self.num_dscs <= 0 or self.link_bytes_per_cycle <= 0:
            raise ValueError("NoC parameters must be positive")

    @property
    def link_bandwidth_gbps(self) -> float:
        return self.link_bytes_per_cycle * self.clock_hz / 1e9

    @property
    def aggregate_bandwidth_gbps(self) -> float:
        return self.link_bandwidth_gbps * self.num_dscs


class NoCModel:
    """Cycle/latency model for GSC <-> DSC transfers."""

    def __init__(self, config: NoCConfig) -> None:
        self.config = config

    def broadcast_seconds(self, num_bytes: int) -> float:
        """One copy of the data reaches every DSC (weight broadcast).

        A broadcast occupies every link for the payload duration once.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        cycles = -(-num_bytes // self.config.link_bytes_per_cycle)
        return cycles / self.config.clock_hz

    def unicast_seconds(self, num_bytes_per_dsc: int) -> float:
        """Distinct payloads to each DSC (activation distribution).

        Links run in parallel, so the time is one link's payload time.
        """
        if num_bytes_per_dsc < 0:
            raise ValueError("num_bytes must be non-negative")
        cycles = -(-num_bytes_per_dsc // self.config.link_bytes_per_cycle)
        return cycles / self.config.clock_hz

    def gather_seconds(self, num_bytes_per_dsc: int) -> float:
        """Outputs back to the GSC; symmetric with unicast."""
        return self.unicast_seconds(num_bytes_per_dsc)

    def throttles_dram(self, dram_bandwidth_gbps: float) -> bool:
        """Would this NoC bottleneck a DRAM stream of the given rate?

        Broadcast traffic needs only one link's bandwidth (every link
        carries the same stream), so the check is per-link.
        """
        return self.config.link_bandwidth_gbps < dram_bandwidth_gbps


def exion_noc(num_dscs: int) -> NoCModel:
    """The NoC of an EXIONx instance (provisioned above DRAM bandwidth)."""
    return NoCModel(NoCConfig(num_dscs=num_dscs))
