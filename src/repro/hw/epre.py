"""Eager-prediction engine: LD_DPU array with one-hot adder trees.

The EPRE computes attention-score predictions in the log domain
(paper Fig. 15): TS-LOD decomposes each operand into its two leading
powers of two, multiplications become shift operations whose outputs are
one-hot, and the one-hot partials reduce through OR-gate trees before a
low-precision accumulation. Its latency hides behind SDUE/CFSE execution
via pipelining (Section IV-A); the model still reports its cycles for the
energy account.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.logdomain import (
    approximate,
    decompose_powers,
    quantize_symmetric,
)
from repro.hw.dpu import dot_product_cycles


def one_hot_or_add(values: list) -> int:
    """OR-gate reduction of one-hot operands.

    Valid only while operands have disjoint set bits — the property the
    TS-LOD datapath guarantees within one shift group. Raises when operands
    collide, which the hardware would resolve through the low-precision
    adder stage instead.
    """
    acc = 0
    for value in values:
        if value < 0:
            raise ValueError("one-hot operands are unsigned")
        if acc & value:
            raise ValueError("operands overlap; not one-hot disjoint")
        acc |= value
    return acc


def shift_products(a: int, b: int, max_terms: int = 2) -> list:
    """Partial products of ``|a| * |b|`` as the LD_DPU produces them.

    Each combination of leading-one positions becomes one shifted one-hot
    value; TS-LOD yields up to ``max_terms ** 2`` partials ("operands of
    addition have been quadrupled", Fig. 15).
    """
    pa = decompose_powers(abs(a), max_terms)
    pb = decompose_powers(abs(b), max_terms)
    return [1 << (x + y) for x in pa for y in pb]


@dataclass
class EPREStats:
    cycles: int = 0
    predictions: int = 0
    log_domain_ops: int = 0


class EPREModel:
    """Functional + cycle model of the eager-prediction engine."""

    def __init__(self, rows: int = 16, cols: int = 16, lane_length: int = 16,
                 mode: str = "ts_lod", bits: int = 12) -> None:
        self.rows = rows
        self.cols = cols
        self.lane_length = lane_length
        self.mode = mode
        self.bits = bits
        self.stats = EPREStats()

    def predict_matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Approximate ``a @ b`` exactly as the LD_DPU array would."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        a_int, a_scale = quantize_symmetric(a, self.bits)
        b_int, b_scale = quantize_symmetric(b, self.bits)
        a_approx = approximate(a_int, self.mode).astype(np.float64)
        b_approx = approximate(b_int, self.mode).astype(np.float64)
        out = (a_approx @ b_approx) * (a_scale * b_scale)

        r, k = a.shape
        c = b.shape[1]
        row_tiles = -(-r // self.rows)
        col_tiles = -(-c // self.cols)
        self.stats.cycles += row_tiles * col_tiles * dot_product_cycles(
            k, self.lane_length
        )
        self.stats.predictions += r * c
        self.stats.log_domain_ops += r * c * k
        return out

    def prediction_cycles(self, r: int, k: int, c: int) -> int:
        """Cycle count of one prediction MMUL without executing it."""
        row_tiles = -(-r // self.rows)
        col_tiles = -(-c // self.cols)
        return row_tiles * col_tiles * dot_product_cycles(k, self.lane_length)
