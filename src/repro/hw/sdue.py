"""Sparse-dense unified engine: executes dense tiles and merged blocks.

The SDUE is a ``rows x cols`` DPU array (16x16 in the paper's
configuration). Dense MMUL tiles map one output element per DPU; ConMerge
merged blocks map through the cv_sw / i_sw / w_sw switch fabric: each cell
reads either its lane's original input row or the lane's single conflict
row, and one of up to three broadcast weight columns (paper Fig. 11).

The functional paths produce bit-exact results against numpy matmul (dense)
and against the masked reference (merged), which the test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.dpu import LANE_LENGTH, dot_product_cycles


@dataclass
class SDUEStats:
    """Cycle and activity accounting for one SDUE instance."""

    cycles: int = 0
    tiles: int = 0
    active_cell_cycles: int = 0
    total_cell_cycles: int = 0
    macs: int = 0

    @property
    def utilization(self) -> float:
        if self.total_cell_cycles == 0:
            return 0.0
        return self.active_cell_cycles / self.total_cell_cycles


class SDUEModel:
    """Functional + cycle model of the SDUE DPU array."""

    def __init__(self, rows: int = 16, cols: int = 16,
                 lane_length: int = LANE_LENGTH) -> None:
        if rows <= 0 or cols <= 0 or lane_length <= 0:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.lane_length = lane_length
        self.stats = SDUEStats()

    # ------------------------------------------------------------------
    # dense path
    # ------------------------------------------------------------------
    def run_dense(self, inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Dense MMUL ``inputs @ weights`` with tile-level cycle counting.

        ``inputs`` is ``(R, K)``, ``weights`` is ``(K, C)``.
        """
        inputs = np.asarray(inputs)
        weights = np.asarray(weights)
        if inputs.ndim != 2 or weights.ndim != 2:
            raise ValueError("operands must be matrices")
        if inputs.shape[1] != weights.shape[0]:
            raise ValueError("inner dimensions must agree")
        r, k = inputs.shape
        c = weights.shape[1]

        out = inputs @ weights

        row_tiles = -(-r // self.rows)
        col_tiles = -(-c // self.cols)
        depth_cycles = dot_product_cycles(k, self.lane_length)
        tile_count = row_tiles * col_tiles
        cycles = tile_count * depth_cycles
        cells = self.rows * self.cols

        self.stats.tiles += tile_count
        self.stats.cycles += cycles
        self.stats.total_cell_cycles += cycles * cells
        # Edge tiles leave cells idle; exact active count:
        full_rows = r // self.rows
        full_cols = c // self.cols
        active = 0
        for rt in range(row_tiles):
            tile_r = self.rows if rt < full_rows else r - full_rows * self.rows
            for ct in range(col_tiles):
                tile_c = self.cols if ct < full_cols else c - full_cols * self.cols
                active += tile_r * tile_c * depth_cycles
        self.stats.active_cell_cycles += active
        self.stats.macs += r * c * k
        return out

    def dense_cycles(self, r: int, k: int, c: int) -> int:
        """Cycle count of a dense ``(r, k) @ (k, c)`` without executing it."""
        row_tiles = -(-r // self.rows)
        col_tiles = -(-c // self.cols)
        return row_tiles * col_tiles * dot_product_cycles(k, self.lane_length)

    # ------------------------------------------------------------------
    # merged (ConMerge) path
    # ------------------------------------------------------------------
    def run_merged_block(
        self,
        block,
        inputs: np.ndarray,
        weights: np.ndarray,
        output: np.ndarray,
    ) -> None:
        """Execute one ConMerge tile block and scatter into ``output``.

        ``block`` is a :class:`repro.core.conmerge.blocks.TileBlock` whose
        lanes index rows of ``inputs`` (a row-tile slice); ``weights`` is
        the full ``(K, C_original)`` weight matrix; results scatter to
        ``output[input_row, origin_col]``.
        """
        if block.rows > inputs.shape[0]:
            raise ValueError("block lanes exceed input rows")
        k = inputs.shape[1]
        depth_cycles = dot_product_cycles(k, self.lane_length)
        entries = block.entries()
        for cell in entries:
            value = float(inputs[cell.input_row] @ weights[:, cell.origin_col])
            output[cell.input_row, cell.origin_col] = value
        cells = self.rows * self.cols
        self.stats.tiles += 1
        self.stats.cycles += depth_cycles
        self.stats.total_cell_cycles += depth_cycles * cells
        self.stats.active_cell_cycles += depth_cycles * len(entries)
        self.stats.macs += len(entries) * k

    def run_conmerge(
        self,
        tiled_result,
        inputs: np.ndarray,
        weights: np.ndarray,
        baseline: np.ndarray,
    ) -> np.ndarray:
        """Execute a tiled ConMerge result over the full output matrix.

        ``baseline`` provides values for skipped (sparse) elements — the
        reused data of FFN-Reuse or zeros for eager prediction. Rows tile
        in the same order ``conmerge_tiled`` produced.
        """
        output = np.array(baseline, dtype=np.float64, copy=True)
        tile_rows = self.rows
        for index, tile in enumerate(tiled_result.tile_results):
            start = index * tile_rows
            tile_inputs = inputs[start : start + tile.rows]
            view = output[start : start + tile.rows]
            for block in tile.blocks:
                self.run_merged_block(block, tile_inputs, weights, view)
        return output
