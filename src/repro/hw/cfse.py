"""Configurable SIMD engine: special functions at full precision.

The CFSE computes layer normalization, Softmax, non-linear functions and
residual additions (paper Fig. 10). Its ALUs run either one-way 32-bit or
two-way 16-bit for double throughput; MMULs never run here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.activations import gelu, softmax


@dataclass
class CFSEStats:
    cycles: int = 0
    elements: int = 0


class CFSEModel:
    """Functional + cycle model of the SIMD special-function engine."""

    #: Approximate ALU ops per element for each supported function.
    OPS_PER_ELEMENT = {
        "softmax": 4,  # max-subtract, exp, sum, divide
        "layernorm": 5,
        "gelu": 3,
        "residual_add": 1,
        "scale": 1,
    }

    def __init__(self, lanes: int = 16, two_way_16bit: bool = True) -> None:
        if lanes <= 0:
            raise ValueError("lanes must be positive")
        self.lanes = lanes
        self.two_way_16bit = two_way_16bit
        self.stats = CFSEStats()

    @property
    def throughput_per_cycle(self) -> int:
        """Elements processed per cycle (two-way mode doubles it)."""
        return self.lanes * (2 if self.two_way_16bit else 1)

    def _account(self, function: str, elements: int) -> None:
        if function not in self.OPS_PER_ELEMENT:
            raise KeyError(f"unsupported CFSE function {function!r}")
        ops = elements * self.OPS_PER_ELEMENT[function]
        self.stats.cycles += -(-ops // self.throughput_per_cycle)
        self.stats.elements += elements

    def function_cycles(self, function: str, elements: int) -> int:
        ops = elements * self.OPS_PER_ELEMENT[function]
        return -(-ops // self.throughput_per_cycle)

    # ------------------------------------------------------------------
    # functional paths (used by the HW-in-the-loop integration tests)
    # ------------------------------------------------------------------
    def run_softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        self._account("softmax", int(np.asarray(x).size))
        return softmax(x, axis=axis)

    def run_gelu(self, x: np.ndarray) -> np.ndarray:
        self._account("gelu", int(np.asarray(x).size))
        return gelu(x)

    def run_layernorm(self, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._account("layernorm", int(x.size))
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        return (x - mean) / np.sqrt(var + eps)

    def run_residual_add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.float64)
        self._account("residual_add", int(a.size))
        return a + np.asarray(b, dtype=np.float64)
