"""Banked DRAM timing model (the detailed substrate behind ``dram.py``).

The paper integrates Ramulator for DRAM latency. The stream-level model in
:mod:`repro.hw.dram` assumes the accelerator's traffic achieves near-peak
bandwidth; this module justifies that assumption with a bank/row-buffer
timing model: sequential weight/activation bursts hit open rows almost
always, while random access patterns collapse to a fraction of peak. Tests
and a bench quantify the gap.

Timing parameters follow LPDDR5/GDDR6 datasheet classes (tRCD / tRP / tCL
in nanoseconds, per-bank row buffers, interleaved banks).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRAMTimings:
    """Core timing/geometry parameters of one DRAM device class.

    ``io_gbps`` is the *per-channel* interface rate; high-bandwidth
    memory systems aggregate many channels (``channels``), each with its
    own banks and row buffers.
    """

    name: str
    banks: int
    row_bytes: int
    burst_bytes: int
    io_gbps: float  # per-channel interface bandwidth
    t_rcd_ns: float  # activate -> column command
    t_rp_ns: float  # precharge
    t_cl_ns: float  # column access latency
    channels: int = 1

    def __post_init__(self) -> None:
        if self.banks <= 0 or self.row_bytes <= 0 or self.burst_bytes <= 0:
            raise ValueError("geometry must be positive")
        if self.burst_bytes > self.row_bytes:
            raise ValueError("burst cannot exceed a row")
        if self.channels <= 0:
            raise ValueError("channels must be positive")

    @property
    def aggregate_gbps(self) -> float:
        return self.io_gbps * self.channels

    @property
    def burst_transfer_ns(self) -> float:
        """Data-transfer time of one burst at the per-channel IO rate."""
        return self.burst_bytes / self.io_gbps


LPDDR5_TIMINGS = DRAMTimings(
    name="LPDDR5",
    banks=16,
    row_bytes=2048,
    burst_bytes=64,
    io_gbps=51.0,
    t_rcd_ns=18.0,
    t_rp_ns=18.0,
    t_cl_ns=17.0,
)

#: GDDR6 system of the EXION24 setting: 13 channels x 63 GB/s = 819 GB/s.
GDDR6_TIMINGS = DRAMTimings(
    name="GDDR6",
    banks=32,
    row_bytes=2048,
    burst_bytes=64,
    io_gbps=63.0,
    t_rcd_ns=14.0,
    t_rp_ns=14.0,
    t_cl_ns=14.0,
    channels=13,
)


@dataclass
class BankState:
    open_row: int = -1  # -1 = precharged


@dataclass
class AccessStats:
    row_hits: int = 0
    row_misses: int = 0
    bursts: int = 0
    busy_ns: float = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class BankedDRAM:
    """Open-row banked DRAM with per-burst timing.

    Address mapping interleaves consecutive bursts across banks (the usual
    accelerator-friendly mapping): sequential streams keep every bank's row
    open; random access thrashes the row buffers.
    """

    def __init__(self, timings: DRAMTimings) -> None:
        self.timings = timings
        self.banks = [BankState() for _ in range(timings.banks)]
        self.stats = AccessStats()

    def _locate(self, address: int) -> tuple:
        t = self.timings
        burst_index = address // t.burst_bytes
        bank = burst_index % t.banks
        row = (burst_index // t.banks) * t.burst_bytes // t.row_bytes
        return bank, row

    def access_burst(self, address: int) -> float:
        """Time one burst access; returns its latency in nanoseconds."""
        if address < 0:
            raise ValueError("address must be non-negative")
        t = self.timings
        bank, row = self._locate(address)
        state = self.banks[bank]
        latency = t.t_cl_ns + t.burst_transfer_ns
        if state.open_row == row:
            self.stats.row_hits += 1
        else:
            self.stats.row_misses += 1
            if state.open_row != -1:
                latency += t.t_rp_ns  # precharge the old row
            latency += t.t_rcd_ns  # activate the new row
            state.open_row = row
        self.stats.bursts += 1
        self.stats.busy_ns += latency
        return latency

    # ------------------------------------------------------------------
    # traffic patterns
    # ------------------------------------------------------------------
    def stream(self, num_bytes: int, start_address: int = 0) -> float:
        """Sequential read of ``num_bytes``; returns seconds.

        Bank interleaving overlaps activates with transfers: the modelled
        stream time is data transfer plus the (rare) row-miss overhead
        amortized across banks.
        """
        t = self.timings
        bursts = -(-num_bytes // t.burst_bytes)
        transfer_ns = 0.0
        overhead_ns = 0.0
        for i in range(bursts):
            address = start_address + i * t.burst_bytes
            bank, row = self._locate(address)
            state = self.banks[bank]
            if state.open_row == row:
                self.stats.row_hits += 1
            else:
                self.stats.row_misses += 1
                overhead_ns += t.t_rcd_ns + (
                    t.t_rp_ns if state.open_row != -1 else 0.0
                )
                state.open_row = row
            transfer_ns += t.burst_transfer_ns
            self.stats.bursts += 1
        # With N banks, up to N activates hide behind transfers.
        hidden = min(overhead_ns, transfer_ns * (1.0 - 1.0 / t.banks))
        total_ns = transfer_ns + (overhead_ns - hidden) + t.t_cl_ns
        self.stats.busy_ns += total_ns
        return total_ns * 1e-9

    def random_access(self, addresses: list) -> float:
        """Serial random bursts; returns seconds (no overlap credit)."""
        total_ns = sum(self.access_burst(a) for a in addresses)
        return total_ns * 1e-9

    def effective_bandwidth_gbps(self, num_bytes: int, seconds: float) -> float:
        if seconds <= 0:
            return 0.0
        return num_bytes / seconds / 1e9


def validate_stream_assumption(
    timings: DRAMTimings, megabytes: int = 4
) -> dict:
    """Quantify sequential vs random effective bandwidth for one device.

    Returns a dict with ``sequential_gbps``, ``random_gbps`` and
    ``sequential_fraction_of_peak`` — the justification for the
    stream-level model the accelerator simulation uses.
    """
    # Channels stream independent shards; model one channel's share.
    num_bytes = megabytes * 1024 * 1024 // timings.channels
    seq = BankedDRAM(timings)
    seq_seconds = seq.stream(num_bytes)
    rng_dram = BankedDRAM(timings)
    # Strided pattern defeating the row buffer: jump a row every burst.
    stride = timings.row_bytes * timings.banks + timings.burst_bytes
    count = num_bytes // timings.burst_bytes // 64
    addresses = [(i * stride) % (1 << 30) for i in range(count)]
    random_seconds = rng_dram.random_access(addresses)
    random_bytes = count * timings.burst_bytes
    return {
        "sequential_gbps": seq.effective_bandwidth_gbps(num_bytes, seq_seconds),
        "random_gbps": rng_dram.effective_bandwidth_gbps(
            random_bytes, random_seconds
        ),
        "sequential_fraction_of_peak": (
            seq.effective_bandwidth_gbps(num_bytes, seq_seconds)
            / timings.io_gbps  # per-channel fraction
        ),
        "sequential_hit_rate": seq.stats.hit_rate,
    }
