"""Sparsity profiles: what the performance model knows about a workload.

A profile captures the output-sparsity structure EXION's algorithms produce
for one model — either measured from a simulation-scale run
(:func:`profile_from_stats`) or estimated at paper scale by synthesizing
masks and running real ConMerge passes over sampled tiles
(:func:`estimate_profile`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bitmask import Bitmask
from repro.core.conmerge.cvg import conmerge_tiled
from repro.core.sparsity import RunStats
from repro.workloads.generator import attention_keepmask, ffn_output_bitmask
from repro.workloads.specs import ModelSpec

#: Paper Section II-B averages, used when no measured rates are available.
DEFAULT_Q_SKIP = 0.26
DEFAULT_KV_SKIP = 0.22

#: Fraction of hidden features fully reusable across all tokens (drives the
#: condensing behaviour of Fig. 8; Stable Diffusion's measured 77.4%
#: remaining columns implies roughly a quarter of columns are dead).
DEFAULT_DEAD_COL_FRACTION = 0.25


@dataclass
class SparsityProfile:
    """Inputs to the DSC performance model for one benchmark model."""

    name: str
    dense_period: int
    # FFN (inter-iteration) structure during sparse iterations.
    ffn_sparsity: float
    ffn_condense_ratio: float  # columns left after condensing (per tile)
    ffn_remaining_ratio: float  # columns left after full ConMerge
    ffn_utilization: float  # active-DPU fraction of merged blocks
    # Attention (intra-iteration) structure, every iteration.
    attn_sparsity: float
    attn_condense_ratio: float
    attn_remaining_ratio: float
    attn_utilization: float
    q_skip: float
    kv_skip: float

    def __post_init__(self) -> None:
        for field_name in (
            "ffn_sparsity",
            "ffn_condense_ratio",
            "ffn_remaining_ratio",
            "ffn_utilization",
            "attn_sparsity",
            "attn_condense_ratio",
            "attn_remaining_ratio",
            "attn_utilization",
            "q_skip",
            "kv_skip",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name}={value} out of [0, 1]")


def one_hot_rate_from_spec(spec: ModelSpec) -> float:
    """Dominance-skip rate consistent with Table I's sparsity and k.

    Total intra sparsity decomposes as
    ``one_hot + (1 - one_hot) * (1 - k)``; solving for ``one_hot`` and
    clamping keeps the synthetic masks consistent with the paper's figures.
    """
    k = spec.top_k_ratio
    s = spec.target_intra_sparsity
    if k <= 0.0:
        return 0.0
    rate = (s - (1.0 - k)) / k
    return float(min(max(rate, 0.0), 1.0))


def _conmerge_summary(mask: Bitmask) -> tuple:
    result = conmerge_tiled(mask, tile_rows=16, width=16, sort=True)
    return (
        result.condense_ratio,
        result.remaining_column_ratio,
        result.utilization,
    )


def estimate_profile(
    spec: ModelSpec,
    seed: int = 0,
    sample_rows: int = 64,
    sample_cols: int = 512,
    dead_col_fraction: float = DEFAULT_DEAD_COL_FRACTION,
    q_skip: float = DEFAULT_Q_SKIP,
    kv_skip: float = DEFAULT_KV_SKIP,
) -> SparsityProfile:
    """Paper-scale profile from synthetic masks + real ConMerge passes.

    Sampling keeps the pass cheap: ConMerge statistics are per-tile, so a
    row/column sample of the full output matrix estimates them unbiasedly.
    """
    rng = np.random.default_rng(seed)
    hidden = spec.paper_ffn_mult * spec.paper_dim
    rows = min(spec.paper_tokens, sample_rows)
    cols = min(hidden, sample_cols)
    ffn_mask = ffn_output_bitmask(
        rows,
        cols,
        spec.target_inter_sparsity,
        dead_col_fraction=dead_col_fraction,
        rng=rng,
    )
    ffn_cond, ffn_remain, ffn_util = _conmerge_summary(ffn_mask)

    tq = min(spec.paper_tokens, sample_rows)
    tk = min(spec.paper_tokens, sample_cols)
    attn_mask = attention_keepmask(
        tq,
        tk,
        spec.top_k_ratio,
        one_hot_rate=one_hot_rate_from_spec(spec),
        rng=rng,
    )
    attn_cond, attn_remain, attn_util = _conmerge_summary(attn_mask)

    return SparsityProfile(
        name=spec.name,
        dense_period=spec.dense_period,
        ffn_sparsity=spec.target_inter_sparsity,
        ffn_condense_ratio=ffn_cond,
        ffn_remaining_ratio=ffn_remain,
        ffn_utilization=ffn_util,
        attn_sparsity=spec.target_intra_sparsity,
        attn_condense_ratio=attn_cond,
        attn_remaining_ratio=attn_remain,
        attn_utilization=attn_util,
        q_skip=q_skip,
        kv_skip=kv_skip,
    )


def profile_from_stats(
    spec: ModelSpec,
    stats: RunStats,
    seed: int = 0,
) -> SparsityProfile:
    """Profile using *measured* sparsities from a simulation-scale run.

    ConMerge compaction ratios still come from paper-scale synthetic masks
    (tile structure depends on matrix size), but the element sparsities and
    projection skip rates are the run's own.
    """
    base = estimate_profile(spec, seed=seed)
    ffn_s = stats.ffn_output_sparsity or base.ffn_sparsity
    attn_s = stats.attention_output_sparsity or base.attn_sparsity
    return SparsityProfile(
        name=spec.name,
        dense_period=spec.dense_period,
        ffn_sparsity=ffn_s,
        ffn_condense_ratio=base.ffn_condense_ratio,
        ffn_remaining_ratio=base.ffn_remaining_ratio,
        ffn_utilization=base.ffn_utilization,
        attn_sparsity=attn_s,
        attn_condense_ratio=base.attn_condense_ratio,
        attn_remaining_ratio=base.attn_remaining_ratio,
        attn_utilization=base.attn_utilization,
        q_skip=stats.q_projection_skip_rate or DEFAULT_Q_SKIP,
        kv_skip=stats.kv_projection_skip_rate or DEFAULT_KV_SKIP,
    )
