"""Power and area model of one DSC, seeded with the paper's Table III.

The RTL-synthesis numbers (14 nm, 0.8 V, 800 MHz) are the ground truth the
simulator's energy accounting is anchored to: each component's synthesized
power is converted to energy-per-busy-cycle, and clock gating scales the
idle fraction down (paper Section IV-B applies clock gating to all SDUE
datapath registers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Clock frequency / voltage of the synthesized design.
CLOCK_HZ = 800e6
VOLTAGE = 0.8

#: Table III area breakdown [mm^2] for a single-DSC EXION.
DSC_AREA_MM2 = {
    "sdue": 1.35,
    "cau": 0.04,
    "epre": 0.81,
    "cfse": 0.32,
    "memories": 1.79,
    "top_dma_etc": 0.06,
}

#: Table III power breakdown [mW] at 800 MHz, 0.8 V.
DSC_POWER_MW = {
    "sdue": 957.97,
    "cau": 16.03,
    "epre": 265.15,
    "cfse": 160.61,
    "memories": 60.41,
    "top_dma_etc": 51.27,
}

TOTAL_DSC_AREA_MM2 = round(sum(DSC_AREA_MM2.values()), 2)  # 4.37
TOTAL_DSC_POWER_MW = round(sum(DSC_POWER_MW.values()), 2)  # 1511.44 (~1511.43)

#: Fraction of a component's power still drawn when clock-gated idle.
IDLE_POWER_FRACTION = 0.04


@dataclass
class ComponentActivity:
    """Busy/idle cycle counts for one hardware component."""

    busy_cycles: int = 0
    idle_cycles: int = 0
    #: Mean fraction of the datapath active during busy cycles (clock
    #: gating of individual registers, e.g. gated DPC cells in merged
    #: blocks that stay partially empty).
    activity: float = 1.0


@dataclass
class EnergyModel:
    """Accumulates component activity and converts it to energy."""

    clock_hz: float = CLOCK_HZ
    power_mw: dict = field(default_factory=lambda: dict(DSC_POWER_MW))
    idle_fraction: float = IDLE_POWER_FRACTION
    _activities: dict = field(default_factory=dict)
    dram_energy_j: float = 0.0

    def record(
        self,
        component: str,
        busy_cycles: int,
        idle_cycles: int = 0,
        activity: float = 1.0,
    ) -> None:
        if component not in self.power_mw:
            raise KeyError(f"unknown component {component!r}")
        if busy_cycles < 0 or idle_cycles < 0:
            raise ValueError("cycle counts must be non-negative")
        if not 0.0 <= activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        entry = self._activities.setdefault(component, ComponentActivity())
        # Weighted running activity over busy cycles.
        total_busy = entry.busy_cycles + busy_cycles
        if total_busy > 0:
            entry.activity = (
                entry.activity * entry.busy_cycles + activity * busy_cycles
            ) / total_busy
        entry.busy_cycles = total_busy
        entry.idle_cycles += idle_cycles

    def add_dram_energy(self, joules: float) -> None:
        if joules < 0:
            raise ValueError("energy must be non-negative")
        self.dram_energy_j += joules

    def _cycle_energy_j(self, component: str) -> float:
        return (self.power_mw[component] * 1e-3) / self.clock_hz

    def component_energy_j(self, component: str) -> float:
        """Energy of one component: busy at its activity, idle gated."""
        entry = self._activities.get(component)
        if entry is None:
            return 0.0
        per_cycle = self._cycle_energy_j(component)
        busy_act = max(entry.activity, self.idle_fraction)
        busy = entry.busy_cycles * per_cycle * busy_act
        idle = entry.idle_cycles * per_cycle * self.idle_fraction
        return busy + idle

    def total_energy_j(self) -> float:
        """On-chip plus DRAM energy."""
        on_chip = sum(self.component_energy_j(c) for c in self.power_mw)
        return on_chip + self.dram_energy_j

    def breakdown_j(self) -> dict:
        out = {c: self.component_energy_j(c) for c in self.power_mw}
        out["dram"] = self.dram_energy_j
        return out


def apportion_op_class_energy(
    component_energy_j: float, op_class_cycles: dict
) -> dict:
    """Split one component's energy across IR op classes by cycle share.

    ``op_class_cycles`` maps op-class names (the
    :class:`repro.program.ir.OpKind` values: ``qkv`` / ``attention`` /
    ``ffn1`` / ``ffn2`` / ``etc``) to busy-cycle totals — the
    ``per_kind_cycles`` accounting the DSC cost model keeps. Energy is
    apportioned proportionally, so the breakdown sums to the component
    total exactly (up to float addition).
    """
    total_cycles = sum(op_class_cycles.values())
    if total_cycles <= 0:
        return {kind: 0.0 for kind in op_class_cycles}
    return {
        kind: component_energy_j * cycles / total_cycles
        for kind, cycles in op_class_cycles.items()
    }
