"""Dot-product unit: the SDUE's compute element (paper Fig. 11).

Each DPU multiplies a 16-element input slice with a 16-element weight slice
(integer multipliers), reduces through a Wallace-tree adder and accumulates
into clock-gated registers. The functional model reproduces the integer
arithmetic; cycle behaviour lives in :mod:`repro.hw.sdue`.
"""

from __future__ import annotations

import numpy as np

#: Elements each DPU consumes per cycle (the "lane length" of Fig. 11).
LANE_LENGTH = 16


def wallace_tree_sum(values: np.ndarray) -> int:
    """Reduce integer partial products as the Wallace tree does.

    A Wallace tree computes the exact sum; pairwise reduction here mirrors
    its log-depth structure so tests can compare against plain ``sum``.
    """
    vals = [int(v) for v in np.asarray(values).ravel()]
    if not vals:
        return 0
    while len(vals) > 1:
        nxt = []
        for i in range(0, len(vals) - 1, 2):
            nxt.append(vals[i] + vals[i + 1])
        if len(vals) % 2 == 1:
            nxt.append(vals[-1])
        vals = nxt
    return vals[0]


class DPU:
    """One dot-product unit with an accumulation register."""

    def __init__(self) -> None:
        self.accumulator = 0
        self.mac_count = 0

    def reset(self) -> None:
        self.accumulator = 0

    def step(self, inputs: np.ndarray, weights: np.ndarray) -> int:
        """One cycle: multiply up to ``LANE_LENGTH`` pairs and accumulate."""
        inputs = np.asarray(inputs, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if inputs.shape != weights.shape:
            raise ValueError("input/weight slices must match")
        if inputs.size > LANE_LENGTH:
            raise ValueError(f"at most {LANE_LENGTH} elements per cycle")
        products = inputs * weights
        self.accumulator += wallace_tree_sum(products)
        self.mac_count += int(inputs.size)
        return self.accumulator


def dot_product_cycles(depth: int, lane_length: int = LANE_LENGTH) -> int:
    """Cycles for one DPU to finish a ``depth``-long dot product."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    return -(-depth // lane_length)
