"""Diffusion-sparsity-aware core: per-iteration cost model.

Combines the engine models (SDUE / EPRE / CFSE / CAU) into the cycle,
activity and traffic cost of one denoising iteration, for the dense and
sparse phases of the FFN-Reuse schedule and the four ablation settings
(Base / EP / FFNR / All).

The DSC prices the IR: :meth:`DSCModel.iteration_cost` consumes an
:class:`~repro.program.ir.IterationProgram` (the single lowering's
output) and dispatches on each op's :class:`~repro.program.ir.OpKind`;
it never walks the model structure itself. A bare
:class:`~repro.workloads.specs.ModelSpec` is accepted for convenience
and lowered through the same :func:`repro.program.lower.lower_program`
entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.hw.cfse import CFSEModel
from repro.hw.epre import EPREModel
from repro.hw.profile import SparsityProfile
from repro.hw.sdue import SDUEModel
from repro.program.ir import IterationProgram, MMUL_BYTES_PER_ELEMENT
from repro.program.lower import lower_program
from repro.workloads.specs import ModelSpec


@dataclass
class IterationCost:
    """Cycle/traffic cost of one denoising iteration on one DSC's engines.

    Cycle counts are totals (undivided); the accelerator model splits them
    across DSCs. ``per_kind_cycles`` keys SDUE cycles by IR op class.
    """

    sdue_cycles: int = 0
    epre_cycles: int = 0
    cfse_cycles: int = 0
    cau_cycles: int = 0
    sdue_active_cell_cycles: float = 0.0
    sdue_total_cell_cycles: float = 0.0
    weight_bytes: int = 0
    activation_bytes: int = 0
    macs_dense_equivalent: int = 0
    macs_computed: int = 0
    per_kind_cycles: dict = field(default_factory=dict)

    @property
    def sdue_activity(self) -> float:
        if self.sdue_total_cell_cycles == 0:
            return 1.0
        return self.sdue_active_cell_cycles / self.sdue_total_cell_cycles

    def add_sdue(self, cycles: int, activity: float, kind: str) -> None:
        self.sdue_cycles += cycles
        cells = cycles * 256  # 16x16 array
        self.sdue_total_cell_cycles += cells
        self.sdue_active_cell_cycles += cells * activity
        self.per_kind_cycles[kind] = self.per_kind_cycles.get(kind, 0) + cycles


class DSCModel:
    """Cost model of one DSC (Fig. 10) over a lowered iteration program."""

    def __init__(self) -> None:
        self.sdue = SDUEModel()
        self.epre = EPREModel()
        self.cfse = CFSEModel()

    # ------------------------------------------------------------------
    def iteration_cost(
        self,
        program: Union[IterationProgram, ModelSpec],
        profile: SparsityProfile,
        enable_ffn_reuse: bool,
        enable_eager_prediction: bool,
        sparse_phase: bool,
        batch: int = 1,
    ) -> IterationCost:
        """Cost of one iteration at paper scale.

        ``sparse_phase`` selects the FFN-Reuse sparse iteration (only
        meaningful when ``enable_ffn_reuse``).
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if isinstance(program, ModelSpec):
            program = lower_program(program, scale="paper")
        cost = IterationCost()
        ep = enable_eager_prediction
        ffnr_sparse = enable_ffn_reuse and sparse_phase

        for op in program.ops:
            r = op.r * batch
            k, c, count = op.k, op.c, op.count
            dense_cycles = self.sdue.dense_cycles(r, k, c) * count
            weight_bytes = op.weight_bytes
            macs = r * k * c * count
            cost.macs_dense_equivalent += macs

            kind = op.kind.value
            if kind == "qkv" and ep:
                skip = profile.q_skip if op.name.endswith("q_proj") else profile.kv_skip
                r_eff = max(1, int(round(r * (1.0 - skip))))
                cycles = self.sdue.dense_cycles(r_eff, k, c) * count
                # Rows skipped inside a 16-row tile save no cycles but are
                # clock-gated (paper IV-B: gating handles residual sparsity).
                tile_rows = -(-r_eff // 16) * 16
                activity = min(1.0, r * (1.0 - skip) / tile_rows)
                cost.add_sdue(cycles, activity, kind)
                cost.macs_computed += r_eff * k * c * count
                # EPRE predicts Q and K in the log domain.
                cost.epre_cycles += self.epre.prediction_cycles(r, k, c) * count
            elif kind == "attention" and ep and "score" in op.name:
                cycles = max(1, int(round(dense_cycles * profile.attn_remaining_ratio)))
                cost.add_sdue(cycles, profile.attn_utilization, kind)
                kept = 1.0 - profile.attn_sparsity
                cost.macs_computed += int(macs * kept)
                cost.epre_cycles += self.epre.prediction_cycles(r, k, c) * count
            elif kind == "attention" and ep and "av" in op.name:
                k_eff = max(1, int(round(k * (1.0 - profile.attn_sparsity))))
                cycles = self.sdue.dense_cycles(r, k_eff, c) * count
                cost.add_sdue(cycles, 1.0, kind)
                cost.macs_computed += r * k_eff * c * count
            elif kind == "ffn1" and ffnr_sparse:
                cycles = max(1, int(round(dense_cycles * profile.ffn_remaining_ratio)))
                cost.add_sdue(cycles, profile.ffn_utilization, kind)
                cost.macs_computed += int(macs * (1.0 - profile.ffn_sparsity))
                # Condensing also avoids fetching dead columns' weights.
                weight_bytes = int(weight_bytes * profile.ffn_condense_ratio)
            elif kind == "ffn2" and ffnr_sparse:
                k_eff = max(1, int(round(k * (1.0 - profile.ffn_sparsity))))
                cycles = self.sdue.dense_cycles(r, k_eff, c) * count
                cost.add_sdue(cycles, 1.0, kind)
                cost.macs_computed += r * k_eff * c * count
                # Only W2 rows of hidden features with any recomputed
                # element are touched (same structure condensing exposes).
                weight_bytes = int(weight_bytes * profile.ffn_condense_ratio)
            else:
                cost.add_sdue(dense_cycles, 1.0, kind)
                cost.macs_computed += macs

            cost.weight_bytes += weight_bytes

        cost.cfse_cycles = self._cfse_cycles(program, profile, ep, ffnr_sparse, batch)
        if enable_ffn_reuse and not sparse_phase:
            cost.cau_cycles = self._cau_cycles(program, batch)
        cost.activation_bytes = self._activation_bytes(program, batch)
        return cost

    # ------------------------------------------------------------------
    def _cfse_cycles(
        self,
        program: IterationProgram,
        profile: SparsityProfile,
        ep: bool,
        ffnr_sparse: bool,
        batch: int,
    ) -> int:
        t = program.tokens * batch
        d = program.dim
        hidden = program.hidden
        depth = program.depth
        softmax_elems = t * program.tokens * batch  # per block, all heads
        if ep:
            softmax_elems = int(softmax_elems * (1.0 - profile.attn_sparsity))
        gelu_elems = t * hidden
        if ffnr_sparse:
            gelu_elems = int(gelu_elems * (1.0 - profile.ffn_sparsity))
        cycles = 0
        cycles += self.cfse.function_cycles("softmax", max(softmax_elems, 1)) * depth
        cycles += self.cfse.function_cycles("gelu", max(gelu_elems, 1)) * depth
        cycles += self.cfse.function_cycles("layernorm", t * d) * 2 * depth
        cycles += self.cfse.function_cycles("residual_add", t * d) * 3 * depth
        return cycles

    def _cau_cycles(self, program: IterationProgram, batch: int) -> int:
        # Classification streams one column per lane-group cycle while the
        # SDUE computes; CVG merge work is ~2 attempts per block pair.
        hidden = program.hidden
        row_tiles = -(-program.tokens * batch // 16)
        classify = hidden * row_tiles
        merge = (hidden // 16) * row_tiles * 2
        return (classify + merge) * program.depth

    def _activation_bytes(self, program: IterationProgram, batch: int) -> int:
        # Latent in/out plus per-block spill through the GSC.
        t = program.tokens * batch
        d = program.dim
        latent = 2 * t * d * MMUL_BYTES_PER_ELEMENT
        spill = 2 * t * d * MMUL_BYTES_PER_ELEMENT * program.depth
        return latent + spill
