"""Multi-DSC EXION accelerator: end-to-end latency/energy simulation.

Instantiates the paper's configurations (Table II):

- ``ExionAccelerator.exion4()`` — 4 DSCs, 51 GB/s LPDDR5 (edge setting);
- ``ExionAccelerator.exion24()`` — 24 DSCs, 819 GB/s GDDR6, 64 MB GSC
  (server setting);
- ``ExionAccelerator.exion42()`` — 42 DSCs, 1935 GB/s (A100 comparison).

The simulator prices the IR: :meth:`ExionAccelerator.simulate_plan`
consumes a :class:`~repro.program.ir.PhasePlan` (the single lowering's
full per-iteration schedule), prices each phase through
:class:`repro.hw.dsc.DSCModel`, overlaps compute with DRAM via the
double/triple-buffered memories, and accounts energy against the
Table III power model. :meth:`simulate` is the spec-level convenience
wrapper — it lowers through :func:`repro.program.lower.lower_plan` and
delegates; there is no model-structure traversal here. A key effect the
plan's residency annotations capture: diffusion reuses identical weights
every iteration, so models whose INT12 weights fit in the GSC fetch them
from DRAM only once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.hw.dram import DRAMModel, GDDR6, HBM2E, LPDDR5, get_dram
from repro.hw.dsc import DSCModel, IterationCost
from repro.hw.energy import (
    CLOCK_HZ,
    EnergyModel,
    TOTAL_DSC_POWER_MW,
    apportion_op_class_energy,
)
from repro.hw.profile import SparsityProfile
from repro.program.cache import get_plan_cache
from repro.program.ir import PhasePlan
from repro.workloads.specs import ModelSpec

#: Paper Table II: per-DSC normalized throughput.
DSC_PEAK_TOPS = 9.8

#: Multi-DSC work-partitioning efficiency (synchronization, load skew).
SCALING_EFFICIENCY = 0.92

#: GSC capacity per DSC (EXION24 carries 64 MB for 24 DSCs).
GSC_BYTES_PER_DSC = int(64 * 1024 * 1024 / 24)


def _validate_num_dscs(num_dscs) -> int:
    """Shared DSC-count validation for the constructor and ``custom``."""
    if isinstance(num_dscs, bool) or not isinstance(num_dscs, int):
        raise ValueError(
            f"num_dscs must be a positive integer, got {num_dscs!r}"
        )
    if num_dscs < 1:
        raise ValueError(f"need at least one DSC (num_dscs={num_dscs})")
    return num_dscs


@dataclass
class AcceleratorReport:
    """Result of simulating one model on one EXION configuration."""

    accelerator: str
    model: str
    batch: int
    iterations: int
    latency_s: float
    energy_j: float
    dense_equivalent_ops: int
    computed_ops: int
    energy_breakdown_j: dict = field(default_factory=dict)
    compute_bound_fraction: float = 0.0
    #: SDUE energy apportioned across IR op classes (qkv / attention /
    #: ffn1 / ffn2 / etc) by their share of SDUE cycles.
    op_class_energy_j: dict = field(default_factory=dict)

    @property
    def effective_tops(self) -> float:
        """Dense-equivalent throughput (skipped work counts as done)."""
        return self.dense_equivalent_ops / self.latency_s / 1e12

    @property
    def tops_per_watt(self) -> float:
        """Dense-equivalent energy efficiency, the Fig. 18 metric."""
        return self.dense_equivalent_ops / self.energy_j / 1e12

    @property
    def average_power_w(self) -> float:
        return self.energy_j / self.latency_s

    @property
    def ops_reduction(self) -> float:
        if self.dense_equivalent_ops == 0:
            return 0.0
        return 1.0 - self.computed_ops / self.dense_equivalent_ops


class ExionAccelerator:
    """An EXIONx instance: ``num_dscs`` DSC cores sharing a DRAM channel."""

    def __init__(
        self,
        num_dscs: int,
        dram: DRAMModel,
        name: Optional[str] = None,
        clock_hz: float = CLOCK_HZ,
        gsc_bytes_per_dsc: int = GSC_BYTES_PER_DSC,
    ) -> None:
        _validate_num_dscs(num_dscs)
        if not isinstance(dram, DRAMModel):
            raise ValueError(
                f"dram must be a DRAMModel (or use ExionAccelerator.custom "
                f"with a technology name), got {dram!r}"
            )
        if clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {clock_hz!r}")
        if gsc_bytes_per_dsc < 0:
            raise ValueError(
                f"gsc_bytes_per_dsc must be >= 0, got {gsc_bytes_per_dsc!r}"
            )
        self.num_dscs = num_dscs
        self.dram = dram
        self.name = name or f"EXION{num_dscs}"
        self.clock_hz = clock_hz
        self.gsc_bytes = gsc_bytes_per_dsc * num_dscs
        self.dsc = DSCModel()

    # ------------------------------------------------------------------
    # paper configurations (Table II)
    # ------------------------------------------------------------------
    @classmethod
    def exion4(cls) -> "ExionAccelerator":
        return cls(num_dscs=4, dram=LPDDR5, name="EXION4")

    @classmethod
    def exion24(cls) -> "ExionAccelerator":
        return cls(num_dscs=24, dram=GDDR6, name="EXION24")

    @classmethod
    def exion42(cls) -> "ExionAccelerator":
        return cls(num_dscs=42, dram=HBM2E, name="EXION42")

    # ------------------------------------------------------------------
    # custom configurations (the design-space explorer's substrate)
    # ------------------------------------------------------------------
    @classmethod
    def custom(
        cls,
        num_dscs: int,
        dram: Union[str, DRAMModel] = "gddr6",
        bandwidth_gbps: Optional[float] = None,
        gsc_mb: Optional[float] = None,
        name: Optional[str] = None,
        clock_hz: float = CLOCK_HZ,
    ) -> "ExionAccelerator":
        """A validated configuration anywhere in the Table II design space.

        ``dram`` names a memory technology (``lpddr5``/``gddr6``/``hbm2e``,
        setting per-bit energy and burst latency) or is a full
        :class:`~repro.hw.dram.DRAMModel`; ``bandwidth_gbps`` rescales its
        aggregate bandwidth; ``gsc_mb`` fixes the *total* global-shared-cache
        capacity (default: the per-DSC Table II provisioning). The three
        paper factories remain byte-identical shortcuts of this method.
        """
        # Validated here too: gsc_mb conversion divides by num_dscs
        # before __init__ would get the chance to reject it.
        _validate_num_dscs(num_dscs)
        model = get_dram(dram) if isinstance(dram, str) else dram
        if bandwidth_gbps is not None:
            if bandwidth_gbps <= 0:
                raise ValueError(
                    f"bandwidth_gbps must be positive, got {bandwidth_gbps!r}"
                )
            model = model.scaled(float(bandwidth_gbps))
        if gsc_mb is None:
            gsc_bytes_per_dsc = GSC_BYTES_PER_DSC
        else:
            if gsc_mb < 0:
                raise ValueError(f"gsc_mb must be >= 0, got {gsc_mb!r}")
            gsc_bytes_per_dsc = int(gsc_mb * 1024 * 1024 / num_dscs)
        return cls(
            num_dscs=num_dscs,
            dram=model,
            name=name or f"EXION{num_dscs}c",
            clock_hz=clock_hz,
            gsc_bytes_per_dsc=gsc_bytes_per_dsc,
        )

    @property
    def peak_tops(self) -> float:
        return DSC_PEAK_TOPS * self.num_dscs

    @property
    def peak_power_w(self) -> float:
        return TOTAL_DSC_POWER_MW * 1e-3 * self.num_dscs

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        spec: ModelSpec,
        profile: Optional[SparsityProfile] = None,
        enable_ffn_reuse: bool = True,
        enable_eager_prediction: bool = True,
        batch: int = 1,
        iterations: Optional[int] = None,
    ) -> AcceleratorReport:
        """Simulate one full generation of ``spec`` on this instance.

        Convenience wrapper: lowers the spec through the process-wide
        :class:`~repro.program.cache.PlanCache` (plan, profile and
        pricing are all interned — repeated simulations of equal keys
        replay one cold computation) and prices the plan with
        :meth:`simulate_plan`.
        """
        cache = get_plan_cache()
        if profile is None:
            profile = cache.profile(spec)
        plan = cache.plan(
            spec,
            enable_ffn_reuse=enable_ffn_reuse,
            enable_eager_prediction=enable_eager_prediction,
            iterations=iterations,
            batch=batch,
        )
        return cache.price(self, plan, profile)

    def simulate_plan(
        self,
        plan: PhasePlan,
        profile: SparsityProfile,
    ) -> AcceleratorReport:
        """Price one lowered phase plan on this instance.

        The plan fully determines the work: per-iteration ops (the
        program), dense/sparse phase per iteration, batch, and
        weight-residency annotations. Iteration costs repeat, so each
        phase kind is priced once through the DSC model.
        """
        costs, cached_fraction = self._phase_costs(plan, profile)

        energy = EnergyModel(clock_hz=self.clock_hz)
        latency = 0.0
        dense_ops = 0
        computed_ops = 0
        compute_bound_iters = 0
        op_class_cycles: dict = {}

        for step in plan.steps:
            cost = costs[step.is_dense]
            compute_s, busy = self._compute_seconds(cost)
            dram_bytes = self._step_dram_bytes(cost, step, cached_fraction)
            dram_s = self.dram.transfer_seconds(dram_bytes)
            # Double/triple buffering overlaps compute and memory.
            iter_s = max(compute_s, dram_s)
            latency += iter_s
            if compute_s >= dram_s:
                compute_bound_iters += 1

            self._record_energy(energy, cost, busy, iter_s)
            energy.add_dram_energy(self.dram.transfer_energy_j(dram_bytes))
            dense_ops += 2 * cost.macs_dense_equivalent
            computed_ops += 2 * cost.macs_computed
            for kind, cycles in cost.per_kind_cycles.items():
                op_class_cycles[kind] = op_class_cycles.get(kind, 0) + cycles

        return AcceleratorReport(
            accelerator=self.name,
            model=plan.program.model,
            batch=plan.batch,
            iterations=plan.iterations,
            latency_s=latency,
            energy_j=energy.total_energy_j(),
            dense_equivalent_ops=dense_ops,
            computed_ops=computed_ops,
            energy_breakdown_j=energy.breakdown_j(),
            compute_bound_fraction=(
                compute_bound_iters / max(plan.iterations, 1)
            ),
            op_class_energy_j=apportion_op_class_energy(
                energy.component_energy_j("sdue"), op_class_cycles
            ),
        )

    # ------------------------------------------------------------------
    def _phase_costs(self, plan: PhasePlan, profile: SparsityProfile) -> tuple:
        """DSC cost per phase kind plus the GSC-cached weight fraction.

        The single per-step pricing substrate shared by
        :meth:`simulate_plan` and :func:`repro.hw.timeline.simulate_timeline`.
        Weight residency: the plan marks every iteration after the cold
        first fetch as "resident" — the GSC-cached fraction is fetched
        from DRAM once; only the uncached remainder streams thereafter.
        """
        costs = {
            is_dense: self.dsc.iteration_cost(
                plan.program, profile, plan.enable_ffn_reuse,
                plan.enable_eager_prediction, sparse_phase=not is_dense,
                batch=plan.batch,
            )
            for is_dense in (False, True)
        }
        weight_bytes_iter = costs[True].weight_bytes
        cached_fraction = min(1.0, self.gsc_bytes / max(weight_bytes_iter, 1))
        return costs, cached_fraction

    def _step_dram_bytes(
        self, cost: IterationCost, step, cached_fraction: float
    ) -> int:
        """DRAM traffic of one phase step under its residency annotation."""
        dram_bytes = cost.activation_bytes
        if step.weight_fetch == "cold":
            dram_bytes += cost.weight_bytes
        else:
            dram_bytes += int(cost.weight_bytes * (1.0 - cached_fraction))
        return dram_bytes

    def _compute_seconds(self, cost: IterationCost) -> tuple:
        """Iteration compute time with work split across DSCs.

        Engines pipeline against each other (paper IV-A: EPRE latency is
        mostly hidden), so the iteration takes the slowest engine's time.
        """
        scale = self.num_dscs * SCALING_EFFICIENCY
        sdue_c = cost.sdue_cycles / scale
        epre_c = cost.epre_cycles / scale
        cfse_c = cost.cfse_cycles / scale
        cau_c = cost.cau_cycles / scale
        # CAU classification overlaps the SDUE; only excess CVG work shows.
        critical = max(sdue_c, epre_c, cfse_c, cau_c * 0.25)
        busy = {
            "sdue": cost.sdue_cycles,
            "epre": cost.epre_cycles,
            "cfse": cost.cfse_cycles,
            "cau": cost.cau_cycles,
        }
        return critical / self.clock_hz, busy

    def _record_energy(
        self, energy: EnergyModel, cost: IterationCost, busy: dict, iter_s: float
    ) -> None:
        iter_cycles_all = int(iter_s * self.clock_hz * self.num_dscs)
        for component, cycles in busy.items():
            idle = max(iter_cycles_all - int(cycles), 0)
            activity = cost.sdue_activity if component == "sdue" else 1.0
            energy.record(component, int(cycles), idle_cycles=idle,
                          activity=activity)
        # Memories and control are active alongside any engine activity.
        energy.record("memories", iter_cycles_all, activity=0.4)
        energy.record("top_dma_etc", iter_cycles_all, activity=0.3)
