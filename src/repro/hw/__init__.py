"""Cycle-level simulator of the EXION hardware architecture (paper IV, V).

Component map (paper Fig. 10):

- :mod:`repro.hw.dpu` / :mod:`repro.hw.sdue` — the sparse-dense unified
  engine: a 16x16 dot-product-unit array executing dense tiles and
  ConMerge-merged blocks through cv_sw / i_sw / w_sw switching;
- :mod:`repro.hw.epre` — eager-prediction engine (log-domain LD_DPUs with
  one-hot OR-gate adder trees);
- :mod:`repro.hw.cfse` — configurable SIMD engine for softmax, norms,
  non-linearities and residual adds (1x32b or 2x16b);
- :mod:`repro.hw.cau` — ConMerge assistant unit (SortBuffer + CVG cycles);
- :mod:`repro.hw.memory` / :mod:`repro.hw.dram` — on-chip SRAMs with
  double/triple buffering and the external DRAM model;
- :mod:`repro.hw.dsc` / :mod:`repro.hw.accelerator` — the
  diffusion-sparsity-aware core and the multi-DSC EXIONx instances;
- :mod:`repro.hw.energy` — power/area model seeded with Table III.
"""

from repro.hw.accelerator import AcceleratorReport, ExionAccelerator
from repro.hw.cau import CAUModel
from repro.hw.cfse import CFSEModel
from repro.hw.dram import DRAM_TECHNOLOGIES, DRAMModel, GDDR6, HBM2E, LPDDR5, get_dram
from repro.hw.dram_detail import BankedDRAM, DRAMTimings
from repro.hw.dsc import DSCModel
from repro.hw.energy import DSC_AREA_MM2, DSC_POWER_MW, EnergyModel
from repro.hw.epre import EPREModel
from repro.hw.executor import InstructionExecutor, execute_iteration
from repro.hw.noc import NoCModel, exion_noc
from repro.hw.sdue import SDUEModel
from repro.hw.timeline import Timeline, simulate_timeline

__all__ = [
    "AcceleratorReport",
    "BankedDRAM",
    "CAUModel",
    "CFSEModel",
    "DRAMModel",
    "DRAMTimings",
    "DRAM_TECHNOLOGIES",
    "DSCModel",
    "DSC_AREA_MM2",
    "DSC_POWER_MW",
    "EPREModel",
    "EnergyModel",
    "ExionAccelerator",
    "GDDR6",
    "HBM2E",
    "InstructionExecutor",
    "LPDDR5",
    "NoCModel",
    "SDUEModel",
    "Timeline",
    "execute_iteration",
    "exion_noc",
    "get_dram",
    "simulate_timeline",
]
