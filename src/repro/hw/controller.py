"""Top controller: instruction stream driving the DSC engines (Fig. 10).

The controller fetches instructions from INSTMEM, configures the tiling of
each MMUL onto the SDUE, and sequences dense/sparse iterations. The model
here is a small ISA plus a program generator: benches and tests use it to
verify that a generated program covers a model's iteration exactly once and
to size INSTMEM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.program.ir import IterationProgram
from repro.program.lower import lower_program
from repro.workloads.specs import ModelSpec


class Opcode(enum.Enum):
    """Instruction set of the top controller."""

    LOAD_INPUT = "load_input"  # DRAM/GSC -> IMEM
    LOAD_WEIGHT = "load_weight"  # DRAM/GSC -> WMEM
    RUN_SDUE_DENSE = "run_sdue_dense"
    RUN_SDUE_MERGED = "run_sdue_merged"
    RUN_EPRE = "run_epre"
    RUN_CFSE = "run_cfse"
    RUN_CAU = "run_cau"
    STORE_OUTPUT = "store_output"  # OMEM -> GSC/DRAM
    SYNC = "sync"


@dataclass(frozen=True)
class Instruction:
    """One 12-byte instruction word.

    Three operand fields plus a repeat count — the controller loops an
    instruction ``repeat`` times (e.g. once per transformer block), which
    is what keeps per-iteration programs within the 3 KB INSTMEM.
    """

    opcode: Opcode
    operand0: int = 0
    operand1: int = 0
    operand2: int = 0
    repeat: int = 1

    ENCODED_BYTES = 12


class ProgramBuilder:
    """Generates the instruction stream for one denoising iteration.

    Instructions are generated from the lowered
    :class:`~repro.program.ir.IterationProgram` — the same IR every
    other backend prices — so the instruction stream and the analytic
    cost model can never disagree about what work an iteration contains.
    """

    def __init__(self, spec: Union[ModelSpec, IterationProgram]) -> None:
        if isinstance(spec, IterationProgram):
            self.program = spec
        else:
            self.program = lower_program(spec, scale="paper")

    def build_iteration(self, sparse_phase: bool) -> list:
        """Program for one iteration (dense or sparse phase)."""
        program: list = []
        for load in self.program.ops:
            n = load.count
            program.append(
                Instruction(Opcode.LOAD_INPUT, load.r, load.k, repeat=n)
            )
            if load.has_weights:
                program.append(
                    Instruction(Opcode.LOAD_WEIGHT, load.k, load.c, repeat=n)
                )
            if load.kind in ("qkv", "attention"):
                program.append(
                    Instruction(Opcode.RUN_EPRE, load.r, load.k, load.c,
                                repeat=n)
                )
            if sparse_phase and load.kind in ("ffn1", "ffn2"):
                program.append(
                    Instruction(Opcode.RUN_SDUE_MERGED, load.r, load.k,
                                load.c, repeat=n)
                )
            else:
                program.append(
                    Instruction(Opcode.RUN_SDUE_DENSE, load.r, load.k,
                                load.c, repeat=n)
                )
            if load.kind == "attention":
                program.append(
                    Instruction(Opcode.RUN_CFSE, load.r, load.c, repeat=n)
                )
            if load.kind == "ffn1":
                program.append(
                    Instruction(Opcode.RUN_CFSE, load.r, load.c, repeat=n)
                )
                if not sparse_phase:
                    program.append(
                        Instruction(Opcode.RUN_CAU, load.r, load.c, repeat=n)
                    )
            program.append(
                Instruction(Opcode.STORE_OUTPUT, load.r, load.c, repeat=n)
            )
        program.append(Instruction(Opcode.SYNC))
        return program

    def program_bytes(self, sparse_phase: bool) -> int:
        """Encoded size; must fit the 3 KB INSTMEM (paper Fig. 10)."""
        return len(self.build_iteration(sparse_phase)) * Instruction.ENCODED_BYTES
