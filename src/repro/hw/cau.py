"""ConMerge assistant unit: sorting + vector-generation cycle model.

The CAU streams output-column bitmasks through the sparsity-level
classifier and SortBuffer while the SDUE runs the dense iteration (so
classification cycles overlap compute), then the CVG resolves merges. Its
cycle cost is what the Fig. 12 sorting study measures; its silicon cost is
0.94% of the DSC (Table III: 0.04 / 4.37 mm^2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bitmask import Bitmask
from repro.core.conmerge.cvg import (
    TiledConMergeResult,
    conmerge,
    conmerge_tiled,
)


@dataclass
class CAUReport:
    """Outcome of one CAU pass over an output bitmask."""

    result: TiledConMergeResult
    classify_cycles: int  # overlapped with SDUE dense execution
    merge_cycles: int  # CVG conflict-resolution work
    cvmem_words: int  # conflict vectors + control maps written

    @property
    def total_cycles(self) -> int:
        return self.classify_cycles + self.merge_cycles


class CAUModel:
    """Drives ConMerge and accounts its cycles and CVMEM traffic."""

    def __init__(self, rows: int = 16, width: int = 16,
                 class_capacity: int = 256) -> None:
        self.rows = rows
        self.width = width
        self.class_capacity = class_capacity

    def process(self, mask: Bitmask, sort: bool = True) -> CAUReport:
        """Run ConMerge over a (possibly multi-tile) output bitmask."""
        result = conmerge_tiled(
            mask,
            tile_rows=self.rows,
            width=self.width,
            sort=sort,
            class_capacity=self.class_capacity,
        )
        # One classify/insert cycle per column per row-tile.
        tiles = len(result.tile_results)
        classify_cycles = mask.cols * tiles
        merge_cycles = result.cycles
        # CVMEM stores one conflict vector per lane plus one control map
        # per occupied cell for every merged block.
        words = 0
        for tile in result.tile_results:
            for block in tile.blocks:
                words += block.rows + block.num_elements
        return CAUReport(
            result=result,
            classify_cycles=classify_cycles,
            merge_cycles=merge_cycles,
            cvmem_words=words,
        )

    def single_tile(self, mask: Bitmask, sort: bool = True):
        """Convenience wrapper for masks that fit one row-tile."""
        if mask.rows > self.rows:
            raise ValueError("mask exceeds one row-tile; use process()")
        return conmerge(mask, width=self.width, sort=sort,
                        class_capacity=self.class_capacity)
