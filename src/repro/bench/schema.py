"""Machine-readable benchmark result schema.

Every bench in ``benchmarks/`` builds one :class:`BenchResult`: the raw
numbers the paper comparison gates on (``metrics``), the human tables the
bench prints (``series`` — presentation strings, rendered through
:func:`repro.analysis.report.format_table`), free-form trailing ``notes``,
the wall-clock ``timing`` the regression gate watches, and an ``env``
fingerprint identifying the machine that produced the numbers.

The JSON layout is pinned by :data:`BENCH_RESULT_SCHEMA` (a standard JSON
Schema document). :func:`validate_result` checks a result dict against it
with ``jsonschema`` when available and falls back to a built-in
interpreter of the same schema subset otherwise, so validation never
silently disappears on a machine without the dependency.

Directions and tolerances live *on the metric*: ``lower_better`` metrics
(latencies, error measures) regress upward, ``higher_better`` metrics
(sparsity, PSNR, speedups) regress downward, and ``two_sided`` metrics
(paper constants) regress in either direction, each beyond the metric's
relative ``tolerance``.
"""

from __future__ import annotations

import math
import os
import platform
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.report import format_table

SCHEMA_VERSION = 1

DIRECTIONS = ("higher_better", "lower_better", "two_sided")

_METRIC_SCHEMA = {
    "type": "object",
    "required": ["value", "direction", "tolerance"],
    "properties": {
        "value": {"type": "number"},
        "unit": {"type": "string"},
        "paper": {"type": ["number", "null"]},
        "direction": {"enum": list(DIRECTIONS)},
        "tolerance": {"type": "number", "minimum": 0},
    },
    "additionalProperties": False,
}

_SERIES_SCHEMA = {
    "type": "object",
    "required": ["title", "headers", "rows"],
    "properties": {
        "title": {"type": "string"},
        "headers": {"type": "array", "items": {"type": "string"}},
        "rows": {
            "type": "array",
            "items": {"type": "array", "items": {"type": ["string", "number"]}},
        },
    },
    "additionalProperties": False,
}

BENCH_RESULT_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "EXION reproduction bench result",
    "type": "object",
    "required": [
        "schema_version", "name", "model", "tags",
        "metrics", "series", "notes", "timing", "env",
    ],
    "properties": {
        "schema_version": {"type": "integer", "minimum": 1},
        "name": {"type": "string", "minLength": 1},
        "model": {"type": "string"},
        "tags": {"type": "array", "items": {"type": "string"}},
        "metrics": {
            "type": "object",
            "additionalProperties": _METRIC_SCHEMA,
        },
        "series": {"type": "array", "items": _SERIES_SCHEMA},
        "notes": {"type": "array", "items": {"type": "string"}},
        "timing": {
            "type": "object",
            "required": ["wall_s"],
            "properties": {"wall_s": {"type": "number", "minimum": 0}},
            "additionalProperties": False,
        },
        "env": {"type": "object"},
    },
    "additionalProperties": False,
}

AGGREGATE_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "EXION reproduction aggregate bench results",
    "type": "object",
    "required": ["schema_version", "env", "results"],
    "properties": {
        "schema_version": {"type": "integer", "minimum": 1},
        "env": {"type": "object"},
        "results": {
            "type": "object",
            "additionalProperties": BENCH_RESULT_SCHEMA,
        },
    },
    "additionalProperties": False,
}


class SchemaError(ValueError):
    """A bench result dict does not conform to the published schema."""


def env_fingerprint() -> dict:
    """Identify the machine/toolchain that produced a result set."""
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 0,
    }


@dataclass
class Metric:
    """One gated number: a value, its unit, and its regression contract."""

    value: float
    unit: str = ""
    paper: Optional[float] = None
    direction: str = "two_sided"
    tolerance: float = 0.05

    def __post_init__(self):
        if self.direction not in DIRECTIONS:
            raise ValueError(f"unknown direction {self.direction!r}")
        if not math.isfinite(self.value):
            raise ValueError(f"metric value must be finite, got {self.value!r}")
        if self.paper is not None and not math.isfinite(self.paper):
            raise ValueError(f"paper reference must be finite, got {self.paper!r}")
        if self.tolerance < 0:
            raise ValueError("tolerance must be >= 0")

    def to_dict(self) -> dict:
        return {
            "value": float(self.value),
            "unit": self.unit,
            "paper": None if self.paper is None else float(self.paper),
            "direction": self.direction,
            "tolerance": float(self.tolerance),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Metric":
        return cls(
            value=data["value"],
            unit=data.get("unit", ""),
            paper=data.get("paper"),
            direction=data.get("direction", "two_sided"),
            tolerance=data.get("tolerance", 0.05),
        )


@dataclass
class BenchSeries:
    """One printable table: presentation strings backed by the result."""

    title: str
    headers: list
    rows: list

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)

    def to_dict(self) -> dict:
        return {
            "title": self.title,
            "headers": [str(h) for h in self.headers],
            "rows": [list(row) for row in self.rows],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchSeries":
        return cls(title=data["title"], headers=list(data["headers"]),
                   rows=[list(row) for row in data["rows"]])


@dataclass
class BenchResult:
    """Everything one bench produced, ready to print, store, and diff."""

    name: str
    model: str = ""
    tags: tuple = ()
    metrics: dict = field(default_factory=dict)
    series: list = field(default_factory=list)
    notes: list = field(default_factory=list)
    timing: dict = field(default_factory=lambda: {"wall_s": 0.0})
    env: dict = field(default_factory=dict)

    def add_metric(self, name: str, value: float, unit: str = "",
                   paper: Optional[float] = None,
                   direction: str = "two_sided",
                   tolerance: float = 0.05) -> Metric:
        """Record one gated number; non-finite values are rejected."""
        if name in self.metrics:
            raise ValueError(f"duplicate metric {name!r} in bench {self.name!r}")
        metric = Metric(value=float(value), unit=unit, paper=paper,
                        direction=direction, tolerance=tolerance)
        self.metrics[name] = metric
        return metric

    def metric(self, name: str) -> Metric:
        return self.metrics[name]

    def value(self, name: str) -> float:
        return self.metrics[name].value

    def add_series(self, title: str, headers: list, rows: list) -> BenchSeries:
        series = BenchSeries(title=title, headers=list(headers),
                             rows=[list(row) for row in rows])
        self.series.append(series)
        return series

    def add_note(self, text: str) -> None:
        self.notes.append(str(text))

    def render_blocks(self) -> list:
        """The bench's printable output: one string per table, then notes."""
        return [series.render() for series in self.series] + list(self.notes)

    def render(self) -> str:
        return "\n\n".join(self.render_blocks())

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "model": self.model,
            "tags": list(self.tags),
            "metrics": {k: m.to_dict() for k, m in self.metrics.items()},
            "series": [s.to_dict() for s in self.series],
            "notes": list(self.notes),
            "timing": {"wall_s": float(self.timing.get("wall_s", 0.0))},
            "env": dict(self.env),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchResult":
        validate_result(data)
        result = cls(name=data["name"], model=data.get("model", ""),
                     tags=tuple(data.get("tags", ())))
        for key, metric in data.get("metrics", {}).items():
            result.metrics[key] = Metric.from_dict(metric)
        result.series = [BenchSeries.from_dict(s) for s in data.get("series", [])]
        result.notes = list(data.get("notes", []))
        result.timing = dict(data.get("timing", {"wall_s": 0.0}))
        result.env = dict(data.get("env", {}))
        return result


def _fallback_validate(data, schema, path="$"):
    """Interpret the subset of JSON Schema used by this module."""
    types = schema.get("type")
    if types is not None:
        if isinstance(types, str):
            types = [types]
        type_map = {
            "object": dict, "array": list, "string": str,
            "number": (int, float), "integer": int, "null": type(None),
        }
        allowed = tuple(
            t for name in types for t in (
                type_map[name] if isinstance(type_map[name], tuple)
                else (type_map[name],)
            )
        )
        if not isinstance(data, allowed) or (
            isinstance(data, bool) and bool not in allowed
        ):
            raise SchemaError(f"{path}: expected {types}, got {type(data).__name__}")
    if "enum" in schema and data not in schema["enum"]:
        raise SchemaError(f"{path}: {data!r} not in {schema['enum']}")
    if isinstance(data, (int, float)) and not isinstance(data, bool):
        if "minimum" in schema and data < schema["minimum"]:
            raise SchemaError(f"{path}: {data} below minimum {schema['minimum']}")
    if isinstance(data, str) and "minLength" in schema:
        if len(data) < schema["minLength"]:
            raise SchemaError(f"{path}: string shorter than {schema['minLength']}")
    if isinstance(data, dict):
        for key in schema.get("required", ()):
            if key not in data:
                raise SchemaError(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, value in data.items():
            if key in properties:
                _fallback_validate(value, properties[key], f"{path}.{key}")
            elif isinstance(additional, dict):
                _fallback_validate(value, additional, f"{path}.{key}")
            elif additional is False:
                raise SchemaError(f"{path}: unexpected key {key!r}")
    if isinstance(data, list) and "items" in schema:
        for i, item in enumerate(data):
            _fallback_validate(item, schema["items"], f"{path}[{i}]")


def _validate(data: dict, schema: dict) -> None:
    try:
        import jsonschema
    except ImportError:
        _fallback_validate(data, schema)
        return
    try:
        jsonschema.validate(data, schema)
    except jsonschema.ValidationError as exc:
        raise SchemaError(str(exc)) from exc


def validate_result(data: dict) -> None:
    """Raise :class:`SchemaError` unless ``data`` is a valid bench result."""
    _validate(data, BENCH_RESULT_SCHEMA)


def validate_aggregate(data: dict) -> None:
    """Raise :class:`SchemaError` unless ``data`` is a valid aggregate."""
    _validate(data, AGGREGATE_SCHEMA)


__all__ = [
    "AGGREGATE_SCHEMA",
    "BENCH_RESULT_SCHEMA",
    "BenchResult",
    "BenchSeries",
    "DIRECTIONS",
    "Metric",
    "SCHEMA_VERSION",
    "SchemaError",
    "env_fingerprint",
    "validate_aggregate",
    "validate_result",
]
