"""Structured benchmark harness with machine-readable results.

The subsystem behind ``python -m repro bench`` and the perf-regression
gate in CI:

- :mod:`repro.bench.schema` — the :class:`BenchResult` document every
  bench produces (metrics with per-metric regression contracts, the
  printable tables, timing, env fingerprint) plus JSON Schema validation;
- :mod:`repro.bench.registry` — ``@register_bench`` and the process
  registry the ``benchmarks/`` modules populate on import;
- :mod:`repro.bench.context` — shared lazily-computed inputs (model
  sparsity profiles);
- :mod:`repro.bench.runner` — discovery, execution, and the
  ``BENCH_<name>.json`` / ``BENCH_repro.json`` writers;
- :mod:`repro.bench.compare` — the baseline diff ``tools/bench_compare.py``
  and CI call to flag metric/latency regressions.

Minimal use::

    from repro.bench import BenchContext, discover, run_benches

    discover()                       # imports benchmarks/bench_*.py
    results = run_benches("tag:smoke", out_dir="bench_results")
"""

from repro.bench.compare import (
    CompareReport,
    compare_results,
    format_report,
    load_results,
)
from repro.bench.context import BenchContext
from repro.bench.registry import REGISTRY, BenchmarkRegistry, register_bench
from repro.bench.runner import discover, run_benches, write_results
from repro.bench.schema import (
    BenchResult,
    BenchSeries,
    Metric,
    SchemaError,
    validate_aggregate,
    validate_result,
)

__all__ = [
    "BenchContext",
    "BenchResult",
    "BenchSeries",
    "BenchmarkRegistry",
    "CompareReport",
    "Metric",
    "REGISTRY",
    "SchemaError",
    "compare_results",
    "discover",
    "format_report",
    "load_results",
    "register_bench",
    "run_benches",
    "validate_aggregate",
    "validate_result",
    "write_results",
]
