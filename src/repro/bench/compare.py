"""Diff two bench result sets and flag regressions.

The comparator is the repo's perf gate: given a *baseline* result set
(normally the committed ``benchmarks/baseline/BENCH_repro.json``) and a
*current* one (a fresh ``python -m repro bench --run all``), it walks
every bench present in the baseline and checks

- **metrics** against each metric's own contract — ``direction`` says
  which way is worse, ``tolerance`` how far relative drift may go;
- **latency** (``timing.wall_s``) against a global relative tolerance
  *and* an absolute slack floor — sub-second benches jitter by large
  relative factors run to run, so a slowdown must clear both the
  relative tolerance and ``latency_min_abs_s`` of real wall time before
  it counts. Speedups clearing both are reported as improvements.

Benches or metrics missing from the current set are notes by default
and regressions under ``strict``. Identical result sets always compare
clean: every rule is a pure function of the two documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.analysis.report import format_table

#: Default relative wall-clock slack before a bench counts as slower.
DEFAULT_LATENCY_TOLERANCE = 0.10

#: Minimum absolute wall-clock delta (seconds) before latency drift
#: counts at all; filters run-to-run jitter on millisecond benches.
DEFAULT_LATENCY_MIN_ABS_S = 0.25

_EPS = 1e-12


@dataclass(frozen=True)
class Finding:
    """One comparison outcome for a single metric or timing."""

    bench: str
    kind: str  # "metric" | "latency" | "coverage"
    name: str
    baseline: Optional[float]
    current: Optional[float]
    delta_rel: Optional[float]
    message: str


@dataclass
class CompareReport:
    """All findings of one baseline-vs-current comparison."""

    regressions: list = field(default_factory=list)
    improvements: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def exit_code(self) -> int:
        return 0 if self.ok else 1


def _results_of(document: dict) -> dict:
    """Accept an aggregate document or a single bench result."""
    if "results" in document:
        return dict(document["results"])
    if "name" in document:
        return {document["name"]: document}
    raise ValueError("document is neither an aggregate nor a bench result")


def load_results(path) -> dict:
    """Load ``{bench_name: result_dict}`` from a file or directory.

    A directory is read through its ``BENCH_repro.json`` aggregate when
    present, else by merging every ``BENCH_*.json`` inside.
    """
    import json

    path = Path(path)
    if path.is_dir():
        aggregate = path / "BENCH_repro.json"
        if aggregate.is_file():
            return _results_of(json.loads(aggregate.read_text()))
        merged: dict = {}
        for file in sorted(path.glob("BENCH_*.json")):
            merged.update(_results_of(json.loads(file.read_text())))
        if not merged:
            raise FileNotFoundError(f"no BENCH_*.json files under {path}")
        return merged
    return _results_of(json.loads(path.read_text()))


def _rel_delta(old: float, new: float) -> float:
    return (new - old) / max(abs(old), _EPS)


def _compare_metric(bench: str, name: str, old: dict, new: dict,
                    report: CompareReport) -> None:
    old_value = float(old["value"])
    new_value = float(new["value"])
    tolerance = float(old.get("tolerance", 0.05))
    direction = old.get("direction", "two_sided")
    rel = _rel_delta(old_value, new_value)

    if direction == "lower_better":
        regressed = rel > tolerance
        improved = rel < -tolerance
    elif direction == "higher_better":
        regressed = rel < -tolerance
        improved = rel > tolerance
    else:  # two_sided
        regressed = abs(rel) > tolerance
        improved = False

    if not regressed and not improved:
        return
    unit = f" {old['unit']}" if old.get("unit") else ""
    finding = Finding(
        bench=bench, kind="metric", name=name,
        baseline=old_value, current=new_value, delta_rel=rel,
        message=(
            f"{bench}:{name} {old_value:.6g} -> {new_value:.6g}{unit} "
            f"({rel:+.1%}, {direction}, tol {tolerance:.0%})"
        ),
    )
    (report.regressions if regressed else report.improvements).append(finding)


def _compare_latency(bench: str, old: dict, new: dict,
                     latency_tolerance: float,
                     latency_min_abs_s: float,
                     report: CompareReport) -> None:
    old_wall = float(old.get("timing", {}).get("wall_s", 0.0))
    new_wall = float(new.get("timing", {}).get("wall_s", 0.0))
    if old_wall <= 0.0:
        return
    rel = _rel_delta(old_wall, new_wall)
    if abs(rel) <= latency_tolerance:
        return
    if abs(new_wall - old_wall) <= latency_min_abs_s:
        return
    finding = Finding(
        bench=bench, kind="latency", name="wall_s",
        baseline=old_wall, current=new_wall, delta_rel=rel,
        message=(
            f"{bench}: wall {old_wall:.3f}s -> {new_wall:.3f}s "
            f"({rel:+.1%}, tol {latency_tolerance:.0%})"
        ),
    )
    (report.regressions if rel > 0 else report.improvements).append(finding)


def compare_results(baseline: dict, current: dict,
                    latency_tolerance: float = DEFAULT_LATENCY_TOLERANCE,
                    latency_min_abs_s: float = DEFAULT_LATENCY_MIN_ABS_S,
                    strict: bool = False) -> CompareReport:
    """Compare two ``{name: result_dict}`` sets; baseline defines the gate."""
    report = CompareReport()
    for bench, old in sorted(baseline.items()):
        new = current.get(bench)
        if new is None:
            finding = Finding(
                bench=bench, kind="coverage", name="bench",
                baseline=None, current=None, delta_rel=None,
                message=f"{bench}: present in baseline, missing from current",
            )
            (report.regressions if strict else report.notes).append(finding)
            continue
        for metric_name, old_metric in sorted(old.get("metrics", {}).items()):
            new_metric = new.get("metrics", {}).get(metric_name)
            if new_metric is None:
                finding = Finding(
                    bench=bench, kind="coverage", name=metric_name,
                    baseline=float(old_metric["value"]), current=None,
                    delta_rel=None,
                    message=(f"{bench}:{metric_name} missing from "
                             f"current result"),
                )
                (report.regressions if strict else report.notes).append(finding)
                continue
            _compare_metric(bench, metric_name, old_metric, new_metric, report)
        _compare_latency(bench, old, new, latency_tolerance,
                         latency_min_abs_s, report)
    for bench in sorted(set(current) - set(baseline)):
        report.notes.append(Finding(
            bench=bench, kind="coverage", name="bench",
            baseline=None, current=None, delta_rel=None,
            message=f"{bench}: new bench, absent from baseline",
        ))
    return report


def format_report(report: CompareReport) -> str:
    """Human summary of a comparison, one section per severity."""
    lines = []
    sections = (
        ("REGRESSIONS", report.regressions),
        ("improvements", report.improvements),
        ("notes", report.notes),
    )
    for label, findings in sections:
        if not findings:
            continue
        lines.append(f"{label} ({len(findings)}):")
        lines.extend(f"  - {finding.message}" for finding in findings)
    if not lines:
        lines.append("no differences beyond tolerances")
    counts = [["regressions", len(report.regressions)],
              ["improvements", len(report.improvements)],
              ["notes", len(report.notes)]]
    lines.append("")
    lines.append(format_table(["severity", "count"], counts,
                              title="bench_compare summary"))
    return "\n".join(lines)


__all__ = [
    "CompareReport",
    "DEFAULT_LATENCY_MIN_ABS_S",
    "DEFAULT_LATENCY_TOLERANCE",
    "Finding",
    "compare_results",
    "format_report",
    "load_results",
]
