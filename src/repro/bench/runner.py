"""Discovery and execution of registered benches.

Discovery imports every ``benchmarks/bench_*.py`` module (as the
namespace package ``benchmarks.*``), which populates the global
:data:`~repro.bench.registry.REGISTRY` via ``@register_bench``. The
runner then executes any selection, times each builder, validates every
result against :data:`~repro.bench.schema.BENCH_RESULT_SCHEMA`, and
writes one ``BENCH_<name>.json`` per bench plus the aggregate
``BENCH_repro.json`` that CI diffs against the committed baseline.
"""

from __future__ import annotations

import importlib
import json
import sys
import time
from pathlib import Path
from typing import Callable, Optional

from repro.bench.context import BenchContext
from repro.bench.registry import REGISTRY, BenchmarkRegistry
from repro.bench.schema import (
    SCHEMA_VERSION,
    BenchResult,
    env_fingerprint,
    validate_aggregate,
    validate_result,
)

AGGREGATE_FILENAME = "BENCH_repro.json"


def find_benchmarks_dir(start: Optional[Path] = None) -> Path:
    """Locate the repo's ``benchmarks/`` directory.

    Prefers the directory adjacent to this installed package (the normal
    in-repo layout ``<root>/src/repro/bench/runner.py`` ->
    ``<root>/benchmarks``), falling back to the current working
    directory.
    """
    candidates = []
    if start is not None:
        candidates.append(Path(start))
    candidates.append(Path(__file__).resolve().parents[3] / "benchmarks")
    candidates.append(Path.cwd() / "benchmarks")
    for candidate in candidates:
        if candidate.is_dir():
            return candidate
    raise FileNotFoundError(
        "could not locate a benchmarks/ directory; looked at "
        + ", ".join(str(c) for c in candidates)
    )


def discover(benchmarks_dir: Optional[Path] = None) -> BenchmarkRegistry:
    """Import all bench modules, populating the global registry."""
    bench_dir = find_benchmarks_dir(benchmarks_dir)
    root = str(bench_dir.parent)
    if root not in sys.path:
        sys.path.insert(0, root)
    for path in sorted(bench_dir.glob("bench_*.py")):
        importlib.import_module(f"{bench_dir.name}.{path.stem}")
    return REGISTRY


def bench_filename(name: str) -> str:
    return f"BENCH_{name}.json"


def run_benches(
    selector: str = "all",
    out_dir: Optional[Path] = None,
    ctx: Optional[BenchContext] = None,
    registry: Optional[BenchmarkRegistry] = None,
    progress: Optional[Callable] = None,
) -> dict:
    """Execute a selection of benches; return ``{name: BenchResult}``.

    Every result is schema-validated before anything is written; with
    ``out_dir`` set, per-bench JSON files and the aggregate are written
    there (the directory is created if needed).
    """
    registry = registry if registry is not None else REGISTRY
    ctx = ctx if ctx is not None else BenchContext()
    env = env_fingerprint()
    # Materialize shared lazy state before the per-bench timers start:
    # otherwise the profile warm-up lands on whichever bench runs first
    # and skews its wall_s against baselines taken with a different
    # selection.
    if progress is not None:
        progress("preparing shared context (sparsity profiles) ...")
    ctx.profiles
    results: dict = {}
    for entry in registry.select(selector):
        if progress is not None:
            progress(f"running {entry.name} ...")
        start = time.perf_counter()
        result = entry.builder(ctx)
        wall_s = time.perf_counter() - start
        if not isinstance(result, BenchResult):
            raise TypeError(
                f"bench {entry.name!r} builder returned "
                f"{type(result).__name__}, expected BenchResult"
            )
        result.timing["wall_s"] = wall_s
        result.env = dict(env)
        if not result.tags:
            result.tags = entry.tags
        validate_result(result.to_dict())
        results[entry.name] = result
        if progress is not None:
            progress(
                f"  {entry.name}: {len(result.metrics)} metrics, "
                f"{len(result.series)} series, {wall_s:.2f}s"
            )
    if out_dir is not None:
        write_results(results, out_dir)
    return results


def aggregate_dict(results: dict) -> dict:
    """Bundle per-bench results into the aggregate document."""
    return {
        "schema_version": SCHEMA_VERSION,
        "env": env_fingerprint(),
        "results": {name: result.to_dict()
                    for name, result in sorted(results.items())},
    }


def write_results(results: dict, out_dir: Path) -> list:
    """Write one ``BENCH_<name>.json`` per bench plus the aggregate."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name, result in sorted(results.items()):
        data = result.to_dict()
        validate_result(data)
        path = out_dir / bench_filename(name)
        path.write_text(
            json.dumps(data, indent=2, sort_keys=True, allow_nan=False) + "\n"
        )
        written.append(path)
    aggregate = aggregate_dict(results)
    validate_aggregate(aggregate)
    aggregate_path = out_dir / AGGREGATE_FILENAME
    aggregate_path.write_text(
        json.dumps(aggregate, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )
    written.append(aggregate_path)
    return written


__all__ = [
    "AGGREGATE_FILENAME",
    "aggregate_dict",
    "bench_filename",
    "discover",
    "find_benchmarks_dir",
    "run_benches",
    "write_results",
]
