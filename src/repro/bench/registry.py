"""Benchmark registry and the ``@register_bench`` decorator.

Each ``benchmarks/bench_*.py`` module registers one builder per logical
bench (one per paper figure/table panel). A builder is a callable
``(ctx: BenchContext) -> BenchResult`` that computes the bench's numbers
and returns them structured; it never asserts and never prints — the
pytest wrapper asserts on the result's metrics, and the runner/CLI decide
what to write where.

Selection syntax (used by ``python -m repro bench --run``): a
comma-separated list of tokens, each either ``all``, an exact bench
name, or ``tag:<tag>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class RegisteredBench:
    """One registry entry: the bench's identity and its builder."""

    name: str
    builder: Callable
    tags: tuple = ()
    module: str = ""


class BenchmarkRegistry:
    """Name -> builder mapping with tag-based selection."""

    def __init__(self):
        self._benches: dict = {}

    def register(self, name: str, builder: Callable, tags=(),
                 module: Optional[str] = None, replace: bool = False) -> RegisteredBench:
        if name in self._benches and not replace:
            raise ValueError(f"bench {name!r} already registered")
        entry = RegisteredBench(
            name=name, builder=builder, tags=tuple(tags),
            module=module if module is not None
            else getattr(builder, "__module__", ""),
        )
        self._benches[name] = entry
        return entry

    def get(self, name: str) -> RegisteredBench:
        try:
            return self._benches[name]
        except KeyError:
            raise KeyError(
                f"unknown bench {name!r}; known: {', '.join(self.names())}"
            ) from None

    def names(self) -> list:
        return sorted(self._benches)

    def tags(self) -> list:
        return sorted({t for b in self._benches.values() for t in b.tags})

    def __len__(self) -> int:
        return len(self._benches)

    def __contains__(self, name: str) -> bool:
        return name in self._benches

    def select(self, selector: str) -> list:
        """Resolve a selection expression to a sorted list of entries."""
        chosen: dict = {}
        for token in str(selector).split(","):
            token = token.strip()
            if not token:
                continue
            if token == "all":
                chosen.update(self._benches)
            elif token.startswith("tag:"):
                tag = token[len("tag:"):]
                matches = {n: b for n, b in self._benches.items()
                           if tag in b.tags}
                if not matches:
                    raise KeyError(
                        f"no bench carries tag {tag!r}; "
                        f"known tags: {', '.join(self.tags())}"
                    )
                chosen.update(matches)
            else:
                chosen[token] = self.get(token)
        return [chosen[name] for name in sorted(chosen)]


#: Process-global registry the ``benchmarks/`` modules populate on import.
REGISTRY = BenchmarkRegistry()


def register_bench(name: str, tags=()):
    """Register ``fn`` as a bench builder under ``name``.

    Registration is idempotent (``replace=True``) because benchmark
    modules can legitimately be imported twice — once by pytest and once
    by the runner's discovery — in a single process.
    """

    def decorator(fn):
        REGISTRY.register(name, fn, tags=tags, replace=True)
        fn.bench_name = name
        return fn

    return decorator


__all__ = [
    "BenchmarkRegistry",
    "REGISTRY",
    "RegisteredBench",
    "register_bench",
]
