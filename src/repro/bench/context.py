"""Shared state handed to every bench builder.

The context exists so expensive session-wide inputs — today the
paper-scale sparsity profiles of all seven benchmark models — are
computed once per process whether the benches run under pytest (the
``bench_ctx`` session fixture) or under ``python -m repro bench``.
"""

from __future__ import annotations

from typing import Optional


class BenchContext:
    """Lazily-computed shared inputs for bench builders."""

    def __init__(self, profiles: Optional[dict] = None):
        self._profiles = profiles

    @property
    def profiles(self) -> dict:
        """Paper-scale sparsity profiles for all benchmark models."""
        if self._profiles is None:
            from repro.hw.profile import estimate_profile
            from repro.workloads.specs import BENCHMARK_ORDER, get_spec

            self._profiles = {
                name: estimate_profile(get_spec(name), seed=0)
                for name in BENCHMARK_ORDER
            }
        return self._profiles


__all__ = ["BenchContext"]
