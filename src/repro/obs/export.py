"""Exporters: Chrome trace-event JSON (Perfetto) and flat JSONL.

The Chrome trace-event format is the lingua franca of timeline viewers:
the emitted document loads directly in `Perfetto <https://ui.perfetto.
dev>`_ or ``chrome://tracing``. Mapping from :class:`~repro.obs.trace.
Tracer`:

- each **track** becomes one thread row (``pid`` 1, ``tid`` = rank of
  the track name in sorted order), named by an ``M`` (metadata) event;
- each **closed span** becomes an ``X`` (complete) event with ``ts`` /
  ``dur`` in microseconds; parent links ride in ``args.parent_id``;
- each **open span** becomes a ``b`` (async begin) event — visible in
  the viewer, explicitly unterminated;
- each **event** becomes an ``i`` (instant) event with thread scope.

Everything is serialized canonically (sorted keys, fixed separators,
trailing newline), so a deterministic tracer yields a byte-identical
``trace.json`` across runs — the property ``python -m repro trace``
gates on. :func:`validate_chrome_trace` is the structural check used by
tests and the trace CLI.
"""

from __future__ import annotations

import json

from repro.obs.trace import Tracer

_MICRO = 1e6
#: Phases emitted by :func:`chrome_trace` (subset of the spec).
_PHASES = ("M", "X", "i", "b", "e")


def _us(seconds: float) -> float:
    """Seconds -> microseconds, rounded to fixed precision.

    Rounding to 1e-3 us keeps the JSON free of float-repr noise without
    losing resolution any viewer can display.
    """
    return round(seconds * _MICRO, 3)


def chrome_trace(tracer: Tracer, process_name: str = "repro") -> dict:
    """Render a tracer as a Chrome trace-event document (dict)."""
    tracks = tracer.tracks()
    tids = {track: tid for tid, track in enumerate(tracks, start=1)}
    trace_events: list[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "tid": 0,
        "args": {"name": process_name},
    }]
    for track in tracks:
        trace_events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tids[track],
            "args": {"name": track},
        })
    for record in tracer.records():
        args = dict(record["args"])
        if record["type"] == "span":
            args["span_id"] = record["span_id"]
            if record["parent_id"] is not None:
                args["parent_id"] = record["parent_id"]
            if record["end_s"] is None:
                trace_events.append({
                    "name": record["name"],
                    "ph": "b",
                    "cat": "span",
                    "id": record["span_id"],
                    "pid": 1,
                    "tid": tids[record["track"]],
                    "ts": _us(record["start_s"]),
                    "args": args,
                })
            else:
                trace_events.append({
                    "name": record["name"],
                    "ph": "X",
                    "pid": 1,
                    "tid": tids[record["track"]],
                    "ts": _us(record["start_s"]),
                    "dur": _us(record["end_s"] - record["start_s"]),
                    "args": args,
                })
        else:
            if record["span_id"] is not None:
                args["span_id"] = record["span_id"]
            trace_events.append({
                "name": record["name"],
                "ph": "i",
                "s": "t",
                "pid": 1,
                "tid": tids[record["track"]],
                "ts": _us(record["ts_s"]),
                "args": args,
            })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }


def chrome_trace_json(tracer: Tracer, process_name: str = "repro") -> str:
    """Canonical JSON serialization of :func:`chrome_trace`."""
    return (
        json.dumps(
            chrome_trace(tracer, process_name=process_name),
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )
        + "\n"
    )


def validate_chrome_trace(doc: dict) -> int:
    """Structurally validate a trace-event document.

    Returns the number of trace events; raises :class:`ValueError` on
    the first malformed entry. This is the schema gate used by the
    ``trace`` CLI and the obs test suite — it checks exactly the
    invariants the viewers rely on, nothing stricter.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("trace document must have a traceEvents list")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        ph = event.get("ph")
        if ph not in _PHASES:
            raise ValueError(f"{where} has unknown phase {ph!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where} needs a non-empty name")
        for key in ("pid", "tid"):
            value = event.get(key)
            # bool is an int subclass; a True tid is still malformed.
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"{where} needs integer {key}")
        if ph != "M":
            ts = event.get("ts")
            if (
                not isinstance(ts, (int, float))
                or isinstance(ts, bool)
                or ts != ts  # NaN
                or ts in (float("inf"), float("-inf"))
                or ts < 0
            ):
                raise ValueError(f"{where} needs finite ts >= 0")
        if ph == "X":
            dur = event.get("dur")
            if (
                not isinstance(dur, (int, float))
                or isinstance(dur, bool)
                or dur != dur
                or dur in (float("inf"), float("-inf"))
                or dur < 0
            ):
                raise ValueError(f"{where} needs finite dur >= 0")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            raise ValueError(f"{where} needs instant scope s in t/p/g")
        if ph == "M":
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                raise ValueError(f"{where} metadata needs args.name")
        if ph in ("b", "e") and "id" not in event:
            raise ValueError(f"{where} async event needs an id")
    return len(events)


def events_jsonl(tracer: Tracer) -> str:
    """Flat JSONL log: one canonical JSON record per span/event.

    Records are in global timestamp order (:meth:`Tracer.records`), so
    the log reads as a chronological narrative and diffs stably.
    """
    lines = [
        json.dumps(
            record, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
        for record in tracer.records()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


__all__ = [
    "chrome_trace",
    "chrome_trace_json",
    "events_jsonl",
    "validate_chrome_trace",
]
