"""Structured tracing: spans and events with deterministic identity.

A :class:`Tracer` collects two primitive shapes:

- :class:`Span` — a named interval ``[start_s, end_s)`` on a *track*
  (one row in the rendered timeline: a replica, the live batch, the hw
  pipeline), optionally linked to a parent span;
- :class:`Event` — a named instant at ``ts_s`` on a track (a join, an
  eviction, an SLO violation), optionally linked to the span it
  happened inside.

**Time never comes from the tracer.** Every ``begin_span``/``event``
call is passed a timestamp by the owning layer — the cluster's
:class:`~repro.cluster.replica.SimClock`, a server's simulated tick
accumulator, or the hw timeline's priced seconds — so two same-seed
runs produce byte-identical traces. Span and event ids are sequence
numbers in emission order, which the same determinism argument makes
stable too.

The tracer stores; exporters (:mod:`repro.obs.export`) render — Chrome
trace-event JSON for Perfetto / ``chrome://tracing``, or a flat JSONL
event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


def _clean_args(args: Optional[dict]) -> dict:
    """Sort arg keys so serialized forms are order-independent."""
    if not args:
        return {}
    return {key: args[key] for key in sorted(args)}


@dataclass
class Span:
    """A named interval on a track. ``end_s`` is None while open."""

    span_id: int
    name: str
    track: str
    start_s: float
    end_s: Optional[float] = None
    parent_id: Optional[int] = None
    args: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise ValueError(f"span {self.span_id} ({self.name}) still open")
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "span_id": self.span_id,
            "name": self.name,
            "track": self.track,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "parent_id": self.parent_id,
            "args": _clean_args(self.args),
        }


@dataclass
class Event:
    """A named instant on a track."""

    event_id: int
    name: str
    track: str
    ts_s: float
    span_id: Optional[int] = None
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "type": "event",
            "event_id": self.event_id,
            "name": self.name,
            "track": self.track,
            "ts_s": self.ts_s,
            "span_id": self.span_id,
            "args": _clean_args(self.args),
        }


class Tracer:
    """Accumulates spans and events in deterministic emission order."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.events: list[Event] = []
        self._next_span_id = 0
        self._next_event_id = 0

    def __len__(self) -> int:
        return len(self.spans) + len(self.events)

    # ------------------------------------------------------------------
    def begin_span(
        self,
        name: str,
        track: str,
        start_s: float,
        parent: Optional[Span] = None,
        **args,
    ) -> Span:
        span = Span(
            span_id=self._next_span_id,
            name=name,
            track=track,
            start_s=float(start_s),
            parent_id=None if parent is None else parent.span_id,
            args=_clean_args(args),
        )
        self._next_span_id += 1
        self.spans.append(span)
        return span

    def end_span(self, span: Span, end_s: float, **args) -> Span:
        if span.end_s is not None:
            raise ValueError(
                f"span {span.span_id} ({span.name}) already ended"
            )
        if end_s < span.start_s:
            raise ValueError(
                f"span {span.span_id} ends at {end_s} before start "
                f"{span.start_s}"
            )
        span.end_s = float(end_s)
        if args:
            span.args = _clean_args({**span.args, **args})
        return span

    def span(
        self,
        name: str,
        track: str,
        start_s: float,
        end_s: float,
        parent: Optional[Span] = None,
        **args,
    ) -> Span:
        """Record an already-closed interval in one call."""
        span = self.begin_span(name, track, start_s, parent=parent, **args)
        return self.end_span(span, end_s)

    def event(
        self,
        name: str,
        track: str,
        ts_s: float,
        span: Optional[Span] = None,
        **args,
    ) -> Event:
        event = Event(
            event_id=self._next_event_id,
            name=name,
            track=track,
            ts_s=float(ts_s),
            span_id=None if span is None else span.span_id,
            args=_clean_args(args),
        )
        self._next_event_id += 1
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    def open_spans(self) -> list[Span]:
        return [span for span in self.spans if span.end_s is None]

    def tracks(self) -> list[str]:
        """Every track name seen, sorted (the exporters' row order)."""
        names = {span.track for span in self.spans}
        names.update(event.track for event in self.events)
        return sorted(names)

    def records(self) -> list[dict]:
        """Every span and event as dicts, in global timestamp order.

        Sort key is (timestamp, spans-before-events, emission id) so the
        order is total and deterministic even with coincident times.
        """
        items = [
            (span.start_s, 0, span.span_id, span.to_dict())
            for span in self.spans
        ]
        items.extend(
            (event.ts_s, 1, event.event_id, event.to_dict())
            for event in self.events
        )
        items.sort(key=lambda item: item[:3])
        return [item[3] for item in items]


__all__ = ["Event", "Span", "Tracer"]
