"""Deterministic simulated serving scenarios for the trace tooling.

``python -m repro trace`` needs a run that is *interesting* (joins,
preemptions, evictions, dense/sparse cadence) yet **byte-deterministic**
— so everything here runs in simulated time: servers read a
:class:`~repro.cluster.replica.SimClock`, tick/batch prices come from
:class:`~repro.cluster.replica.ServiceTimeModel` (the hw latency model),
and request arrivals are laid out on a fixed grid derived from those
prices. No wall clock enters anywhere, which is why the exported trace
and metrics are identical across same-seed runs.

The same helpers back ``python -m repro serve --simulate``: they install
the simulated clock and price hooks on a real (executing or dry-run)
server and drain it by advancing the clock through its own reported
tick/batch durations.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.replica import ServiceTimeModel, SimClock, make_accelerator
from repro.core.config import ExionConfig
from repro.obs.observer import Observer
from repro.serve.continuous import ContinuousPolicy, ContinuousServer
from repro.serve.scheduler import BatchingPolicy
from repro.serve.server import ExionServer
from repro.workloads.specs import get_spec

#: Priority cycle applied to scenario requests (STANDARD, STANDARD,
#: INTERACTIVE, BATCH): the interactive arrival lands on a full batch
#: and exercises boundary preemption.
_PRIORITY_CYCLE = (1, 1, 2, 0)
#: Tenants cycled through by scenario requests (weighted 2:1).
SCENARIO_TENANTS = {"alpha": 2.0, "beta": 1.0}
#: Minimum clock advance when a step served nothing (expiry-only
#: rebalances); keeps the drive loop live without distorting timing.
_IDLE_ADVANCE_S = 1e-6


def make_tick_time(
    service_model: ServiceTimeModel, model: str, ablation: str
):
    """Per-iteration price hook for a :class:`ContinuousServer`."""

    def tick_time(batch_size: int, is_dense: bool) -> float:
        return service_model.tick_latency_s(
            model, ablation, batch_size, "dense" if is_dense else "sparse"
        )

    return tick_time


def make_tick_energy(
    service_model: ServiceTimeModel, model: str, ablation: str
):
    """Per-iteration energy price hook for a :class:`ContinuousServer`."""

    def tick_energy(batch_size: int, is_dense: bool) -> float:
        return service_model.tick_energy_j(
            model, ablation, batch_size, "dense" if is_dense else "sparse"
        )

    return tick_energy


def make_service_time(
    service_model: ServiceTimeModel, model: str, ablation: str
):
    """Per-micro-batch price hook for an :class:`ExionServer`."""

    def service_time(batch) -> float:
        return service_model.latency_s(model, ablation, len(batch))

    return service_time


def drain_simulated(server, clock: SimClock) -> list:
    """Drain a simulated-time server, advancing its clock by its own
    reported durations. Works for both server kinds; results come back
    ordered by request id."""
    results = []
    if hasattr(server, "has_work"):  # ContinuousServer
        while server.has_work:
            results.extend(server.step(now=clock.now))
            clock.now += server.last_tick_s or _IDLE_ADVANCE_S
    else:
        while True:
            served = server.step()
            if served:
                results.extend(served)
                clock.now += served[0].service_s
            elif len(server.queue) == 0:
                break
            else:  # pending but not due: jump past the max-wait window
                clock.now += max(
                    server.scheduler.policy.max_wait_s, _IDLE_ADVANCE_S
                )
    return sorted(results, key=lambda r: r.request_id)


def run_trace_scenario(
    model: str = "dit",
    ablation: str = "all",
    accelerator: str = "exion24",
    continuous: bool = True,
    requests: int = 8,
    iterations: Optional[int] = None,
    batch_size: int = 2,
    seed: int = 0,
    observer: Optional[Observer] = None,
    cold_start: bool = False,
) -> dict:
    """Run one deterministic dry-run serving scenario under an observer.

    Requests arrive on a grid spaced by the hw tick price, cycling
    tenants, priorities and (every fifth request) a tight deadline — so
    a short run still produces joins, preemptions, expiries and both
    phase colors. Returns a key-sorted summary dict; the trace and
    metrics accumulate on ``observer``.
    """
    if requests < 1:
        raise ValueError("need at least one request")
    if observer is None:
        observer = Observer()
    clock = SimClock()
    service_model = ServiceTimeModel(accelerator, iterations=iterations)
    config = ExionConfig.for_model(model).ablation(ablation)

    if continuous:
        server = ContinuousServer(
            model,
            config=config,
            policy=ContinuousPolicy(max_batch_size=batch_size),
            tenant_weights=SCENARIO_TENANTS,
            total_iterations=iterations,
            clock=clock,
            tick_time=make_tick_time(service_model, model, ablation),
            tick_energy=make_tick_energy(service_model, model, ablation),
            cold_start_s=(
                service_model.tick_latency_s(model, ablation, 1, "cold")
                if cold_start
                else None
            ),
            dry_run=True,
            observer=observer,
        )
        gap = 2.0 * service_model.tick_latency_s(model, ablation, 1, "dense")
    else:
        server = ExionServer(
            model,
            config=config,
            policy=BatchingPolicy(max_batch_size=batch_size),
            total_iterations=iterations,
            clock=clock,
            service_time=make_service_time(service_model, model, ablation),
            dry_run=True,
            observer=observer,
        )
        gap = 0.25 * service_model.latency_s(model, ablation, 1)

    tenants = sorted(SCENARIO_TENANTS)
    arrivals = [i * gap for i in range(requests)]
    next_up = 0

    def submit_due() -> None:
        nonlocal next_up
        while next_up < len(arrivals) and arrivals[next_up] <= clock.now:
            i = next_up
            deadline = (
                clock.now + 3.0 * gap if continuous and i % 5 == 4 else None
            )
            server.submit(
                seed=seed + i,
                tenant=tenants[i % len(tenants)],
                priority=_PRIORITY_CYCLE[i % len(_PRIORITY_CYCLE)],
                deadline_s=deadline,
            )
            next_up += 1

    if continuous:
        while next_up < len(arrivals) or server.has_work:
            submit_due()
            if not server.has_work:
                clock.now = arrivals[next_up]
                continue
            server.step(now=clock.now)
            clock.now += server.last_tick_s or _IDLE_ADVANCE_S
    else:
        while next_up < len(arrivals) or len(server.queue):
            submit_due()
            served = server.step()
            if served:
                clock.now += served[0].service_s
            elif next_up < len(arrivals):
                clock.now = arrivals[next_up]

    # The hardware timeline of one generation rides along as its own
    # track: the per-iteration dense/sparse phase segments the paper's
    # figures are drawn from.
    from repro.hw.timeline import simulate_timeline

    timeline = simulate_timeline(
        make_accelerator(accelerator),
        get_spec(model),
        enable_ffn_reuse=config.enable_ffn_reuse,
        enable_eager_prediction=config.enable_eager_prediction,
        iterations=iterations,
    )
    observer.observe_timeline(timeline)

    report = server.report()
    summary = {
        "accelerator": accelerator,
        "ablation": ablation,
        "continuous": continuous,
        "horizon_s": clock.now,
        "model": model,
        "requests": requests,
        "requests_served": report.requests_served,
        "requests_expired": report.requests_expired,
        "busy_s": report.busy_s,
        "spans": len(observer.tracer.spans),
        "events": len(observer.tracer.events),
        "tracks": observer.tracer.tracks(),
    }
    if continuous:
        summary.update(
            ticks=report.ticks,
            joins=report.joins,
            preemptions=report.preemptions,
            deadline_evictions=report.deadline_evictions,
            mean_occupancy=report.mean_occupancy,
        )
    else:
        summary.update(
            batches_served=report.batches_served,
            mean_batch_size=report.mean_batch_size,
        )
    return dict(sorted(summary.items()))


__all__ = [
    "SCENARIO_TENANTS",
    "drain_simulated",
    "make_service_time",
    "make_tick_time",
    "run_trace_scenario",
]
