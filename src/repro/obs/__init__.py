"""Zero-dependency observability: metrics, traces, exporters.

Everything here is deterministic by construction — timestamps come from
the owning layer's simulated clock (never the wall clock), metric
snapshots and trace records iterate in sorted order, and all JSON is
canonical — so traces and metric dumps are byte-identical across
same-seed runs. Instrumentation is nil-by-default: hot layers accept an
optional :class:`Observer` and guard every hook with one ``is not
None`` branch, so an unobserved run does exactly the pre-obs work.
"""

from repro.obs.analyze import (
    AnalysisReport,
    TraceRecords,
    analyze_path,
    analyze_tracer,
    diff_analyses,
    render_html,
)
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    events_jsonl,
    validate_chrome_trace,
)
from repro.obs.metrics import DEFAULT_BUCKETS, MetricFamily, MetricsRegistry
from repro.obs.observer import Observer
from repro.obs.scenario import (
    drain_simulated,
    make_service_time,
    make_tick_time,
    run_trace_scenario,
)
from repro.obs.trace import Event, Span, Tracer

__all__ = [
    "AnalysisReport",
    "DEFAULT_BUCKETS",
    "Event",
    "MetricFamily",
    "MetricsRegistry",
    "Observer",
    "Span",
    "TraceRecords",
    "Tracer",
    "analyze_path",
    "analyze_tracer",
    "chrome_trace",
    "chrome_trace_json",
    "diff_analyses",
    "drain_simulated",
    "events_jsonl",
    "make_service_time",
    "make_tick_time",
    "render_html",
    "run_trace_scenario",
    "validate_chrome_trace",
]
