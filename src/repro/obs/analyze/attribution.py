"""Wait/service attribution and per-tenant cost accounting.

Decomposes every request's end-to-end simulated latency into named
components, **exactly**: all arithmetic is integer nanoseconds over
shared breakpoints (submit/join/evict/complete instants and tick span
edges), so the components of request *r* telescope to
``end_ns - submit_ns`` bit-for-bit — there is no float summation to
drift. The component vocabulary:

- ``queue_wait_ns`` — admission/fairness wait: from the first membership
  boundary after submission until the request actually joined;
- ``join_wait_ns`` — structural wait for a dense-phase boundary (a
  request cannot join mid-phase, however empty the batch);
- ``preempt_ns`` — stalls between a preemption eviction and the next
  rejoin (or terminal expiry of a preempted request);
- ``dense_ns`` / ``sparse_ns`` — tick time spent while a member of the
  live batch, by phase color;
- ``cold_ns`` — cold-start surcharge portions of member ticks;
- ``batch_ns`` — drain-mode micro-batch service (whole generations,
  not phase-split);
- ``other_ns`` — any residual active time not covered by tick spans
  (structurally zero for simulated runs; absorbs wall-clock noise so
  the sum identity holds unconditionally).

Cost accounting answers a different question — where did the *device's*
time go, not each requester's — so there each tick's duration is split
among its members by integer division (remainder to the lowest request
ids), making per-tenant tick-nanosecond totals sum exactly to fleet
busy time. Energy rides along in integer nanojoules when tick spans
carry an ``energy_j`` price.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.analyze.records import TraceRecords, to_ns

#: Component keys, in reporting order.
COMPONENTS = (
    "queue_wait_ns",
    "join_wait_ns",
    "preempt_ns",
    "dense_ns",
    "sparse_ns",
    "cold_ns",
    "batch_ns",
    "other_ns",
)

_MEMBERSHIP_TRACK = "serve/membership"
_BATCH_TRACK = "serve/batch"
_UNATTRIBUTED = "(unattributed)"


@dataclass(frozen=True)
class _Tick:
    """One priced interval of shared device time."""

    span_id: int
    start_ns: int
    end_ns: int
    phase: str  # "dense" | "sparse" | "batch"
    cold_ns: int = 0
    energy_nj: int = 0
    model: str = ""
    replica: str = ""
    #: span started at a membership boundary (hook enrichment arg)
    boundary: bool = False
    #: (request_id, tenant, priority) of every member, when known
    #: directly from span args (cluster dispatches); serve-mode ticks
    #: recover members from membership intervals instead.
    members: tuple = ()

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass
class RequestAttribution:
    """One request's exact latency decomposition."""

    request_id: int
    tenant: str = "default"
    priority: int = 1
    model: str = ""
    outcome: str = "open"  # served | dropped | expired | open
    submit_ns: int = 0
    end_ns: int = 0
    deadline_ns: Optional[int] = None
    components: dict = field(
        default_factory=lambda: dict.fromkeys(COMPONENTS, 0)
    )
    ticks: int = 0
    intervals: list = field(default_factory=list)  # (join_ns, leave_ns)

    @property
    def latency_ns(self) -> int:
        return self.end_ns - self.submit_ns

    @property
    def residual_ns(self) -> int:
        """Components-vs-latency mismatch; 0 by construction."""
        return self.latency_ns - sum(self.components.values())

    @property
    def deadline_met(self) -> Optional[bool]:
        if self.deadline_ns is None:
            return None
        return self.outcome == "served" and self.end_ns <= self.deadline_ns

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "model": self.model,
            "outcome": self.outcome,
            "submit_ns": self.submit_ns,
            "end_ns": self.end_ns,
            "latency_ns": self.latency_ns,
            "deadline_ns": self.deadline_ns,
            "deadline_met": self.deadline_met,
            "components": dict(self.components),
            "residual_ns": self.residual_ns,
            "ticks": self.ticks,
        }


@dataclass
class Attribution:
    """Per-request decompositions plus fleet and tenant rollups."""

    mode: str = "continuous"  # continuous | drain | cluster
    requests: list = field(default_factory=list)  # RequestAttribution
    busy_ns: int = 0
    energy_nj: int = 0
    horizon_ns: int = 0
    tenants: dict = field(default_factory=dict)
    replicas: dict = field(default_factory=dict)
    ticks: list = field(default_factory=list)  # _Tick (analysis internal)

    # ------------------------------------------------------------------
    def fleet_components(self) -> dict:
        totals = dict.fromkeys(COMPONENTS, 0)
        for request in self.requests:
            for key, value in request.components.items():
                totals[key] += value
        return totals

    def outcomes(self) -> dict:
        counts: dict = {}
        for request in self.requests:
            counts[request.outcome] = counts.get(request.outcome, 0) + 1
        return dict(sorted(counts.items()))

    def latency_summary(self) -> dict:
        served = sorted(
            r.latency_ns for r in self.requests if r.outcome == "served"
        )
        if not served:
            return {"count": 0, "p50_ns": 0, "p95_ns": 0, "p99_ns": 0,
                    "mean_ns": 0, "max_ns": 0}

        def rank(q: float) -> int:
            # Nearest-rank: the smallest sample covering quantile q.
            index = max(1, -(-len(served) * q // 100))  # ceil
            return served[int(index) - 1]

        return {
            "count": len(served),
            "p50_ns": rank(50),
            "p95_ns": rank(95),
            "p99_ns": rank(99),
            # Integer mean (floor) keeps the report integral and exact.
            "mean_ns": sum(served) // len(served),
            "max_ns": served[-1],
        }

    def tenant_residual_ns(self) -> int:
        """Fleet busy time minus all tenant tick shares; 0 by construction."""
        return self.busy_ns - sum(
            doc["tick_ns"] for doc in self.tenants.values()
        )

    def max_request_residual_ns(self) -> int:
        return max(
            (abs(r.residual_ns) for r in self.requests), default=0
        )


# ----------------------------------------------------------------------
# trace -> attribution
# ----------------------------------------------------------------------
def analyze_records(records: TraceRecords) -> Attribution:
    """Build the full attribution for one run's trace records."""
    mode = detect_mode(records)
    if mode == "cluster":
        return _analyze_cluster(records)
    return _analyze_serve(records, mode)


def detect_mode(records: TraceRecords) -> str:
    """Which instrumented layer produced this trace."""
    for span in records.spans:
        if span.name.startswith("tick["):
            return "continuous"
    for span in records.spans:
        if span.name.startswith("dispatch["):
            return "cluster"
    for span in records.spans:
        if span.name == "batch" and span.track == _BATCH_TRACK:
            return "drain"
    return "continuous"


def _serve_ticks(records: TraceRecords) -> list:
    ticks = []
    for span in records.spans:
        if span.track != _BATCH_TRACK:
            continue
        if span.name.startswith("tick["):
            phase = span.args.get("phase") or span.name[5:-1]
        elif span.name == "batch":
            phase = "batch"
        else:
            continue
        duration = span.duration_ns
        cold_ns = min(max(to_ns(span.args.get("cold_s", 0.0)), 0), duration)
        ticks.append(_Tick(
            span_id=span.span_id,
            start_ns=span.start_ns,
            end_ns=span.end_ns,
            phase=phase,
            cold_ns=cold_ns,
            energy_nj=round(float(span.args.get("energy_j", 0.0)) * 1e9),
            boundary=bool(span.args.get("boundary", False)),
            members=tuple(span.args.get("request_ids", ())),
        ))
    ticks.sort(key=lambda t: (t.start_ns, t.span_id))
    return ticks


def _analyze_serve(records: TraceRecords, mode: str) -> Attribution:
    ticks = _serve_ticks(records)
    out = Attribution(mode=mode, ticks=ticks,
                      horizon_ns=records.horizon_ns())
    out.busy_ns = sum(t.duration_ns for t in ticks)
    out.energy_nj = sum(t.energy_nj for t in ticks)

    # Membership boundaries: instants at which a queued request could
    # have been (re)considered — tick starts flagged as boundaries plus
    # every membership edit instant (joins/evicts happen only there).
    boundaries = {
        t.start_ns for t in ticks if t.phase == "batch" or t.boundary
    }
    lifecycle: dict = {}
    for event in records.events:
        if event.track != _MEMBERSHIP_TRACK:
            continue
        rid = event.args.get("request_id")
        if rid is None:
            continue
        lifecycle.setdefault(int(rid), []).append(event)
        if event.name in ("join", "evict", "expire"):
            boundaries.add(event.ts_ns)
    boundary_list = sorted(boundaries)

    for rid in sorted(lifecycle):
        events = sorted(lifecycle[rid], key=lambda e: (e.ts_ns, e.event_id))
        out.requests.append(
            _attribute_request(rid, events, ticks, boundary_list,
                               out.horizon_ns, mode)
        )

    _account_tenants(out)
    return out


def _attribute_request(
    rid: int,
    events: list,
    ticks: list,
    boundaries: list,
    horizon_ns: int,
    mode: str,
) -> RequestAttribution:
    request = RequestAttribution(request_id=rid)
    submit = next((e for e in events if e.name == "submit"), None)
    if submit is not None:
        request.submit_ns = submit.ts_ns
        request.tenant = str(submit.args.get("tenant", "default"))
        request.priority = int(submit.args.get("priority", 1))
        request.model = str(submit.args.get("model", ""))
        deadline = submit.args.get("deadline_s")
        if deadline is not None:
            request.deadline_ns = to_ns(deadline)
    else:
        request.submit_ns = events[0].ts_ns

    # Walk the lifecycle into alternating wait/active segments.
    open_join: Optional[int] = None
    intervals: list = []
    terminal: Optional[tuple] = None
    for event in events:
        if event.name == "join" and open_join is None:
            intervals.append([event.ts_ns, None, None])
            open_join = event.ts_ns
        elif event.name in ("evict", "complete") and open_join is not None:
            intervals[-1][1] = event.ts_ns
            intervals[-1][2] = event
            open_join = None
            if event.name == "complete":
                terminal = ("served", event.ts_ns)
            elif event.args.get("reason") == "deadline":
                terminal = ("dropped", event.ts_ns)
        elif event.name == "expire":
            terminal = ("expired", event.ts_ns)
    if open_join is not None:
        intervals[-1][1] = horizon_ns
        intervals[-1][2] = None
    if terminal is None:
        last = intervals[-1][1] if intervals else events[-1].ts_ns
        terminal = ("open", max(last, request.submit_ns))
    request.outcome, request.end_ns = terminal
    request.intervals = [(j, l) for j, l, _ in intervals]

    # Drain mode: membership intervals come from the batch span that
    # carried the request (submit events + request_ids span args).
    if mode == "drain" and not request.intervals:
        for tick in ticks:
            if rid in tick.members and tick.start_ns >= request.submit_ns:
                request.intervals = [(tick.start_ns, tick.end_ns)]
                request.outcome = "served"
                request.end_ns = tick.end_ns
                break

    comp = request.components
    cursor = request.submit_ns
    first_wait = True
    for join_ns, leave_ns in request.intervals:
        if join_ns > cursor or first_wait:
            _split_wait(comp, cursor, join_ns, boundaries, first_wait)
            first_wait = False
        covered = 0
        for tick in ticks:
            if tick.start_ns >= join_ns and tick.end_ns <= leave_ns and (
                not tick.members or rid in tick.members
            ):
                cold = tick.cold_ns
                comp["cold_ns"] += cold
                key = f"{tick.phase}_ns"
                comp[key] = comp.get(key, 0) + tick.duration_ns - cold
                covered += tick.duration_ns
                request.ticks += 1
        comp["other_ns"] += (leave_ns - join_ns) - covered
        cursor = leave_ns
    if request.end_ns > cursor:
        # Tail wait after the last eviction (requeued then expired), or
        # a request that never joined at all.
        _split_wait(comp, cursor, request.end_ns, boundaries, first_wait)
    return request


def _split_wait(
    comp: dict,
    start_ns: int,
    end_ns: int,
    boundaries: list,
    initial: bool,
) -> None:
    """Attribute one waiting segment.

    The initial pre-join wait splits at the first membership boundary
    after submission: before it the request *could not* have joined
    (``join_wait_ns``), after it the scheduler chose not to admit it
    (``queue_wait_ns``). Later gaps are preemption stalls.
    """
    if not initial:
        comp["preempt_ns"] += end_ns - start_ns
        return
    index = bisect_left(boundaries, start_ns)
    boundary = boundaries[index] if index < len(boundaries) else None
    if boundary is None or boundary > end_ns:
        comp["join_wait_ns"] += end_ns - start_ns
    else:
        comp["join_wait_ns"] += boundary - start_ns
        comp["queue_wait_ns"] += end_ns - boundary


def _account_tenants(out: Attribution) -> None:
    """Split every tick's time (and energy) exactly across its members."""
    by_rid = {r.request_id: r for r in out.requests}
    intervals = [
        (j, l, r.request_id)
        for r in out.requests
        for j, l in r.intervals
    ]
    for tick in out.ticks:
        if tick.members:
            members = sorted(int(m) for m in tick.members)
        else:
            members = sorted(
                rid for j, l, rid in intervals
                if j <= tick.start_ns and tick.end_ns <= l
            )
        cold_phase = [("cold", tick.cold_ns),
                      (tick.phase, tick.duration_ns - tick.cold_ns)]
        if not members:
            doc = _tenant_doc(out.tenants, _UNATTRIBUTED)
            doc["tick_ns"] += tick.duration_ns
            doc["energy_nj"] += tick.energy_nj
            for phase, amount in cold_phase:
                if amount:
                    doc["by_phase"][phase] = (
                        doc["by_phase"].get(phase, 0) + amount
                    )
            continue
        shares = dict.fromkeys(members, 0)
        phase_shares = {m: {} for m in members}
        for phase, amount in cold_phase:
            if amount == 0:
                continue
            for member, share in _exact_split(amount, members):
                shares[member] += share
                phase_shares[member][phase] = (
                    phase_shares[member].get(phase, 0) + share
                )
        energy_shares = dict(_exact_split(tick.energy_nj, members))
        for member in members:
            request = by_rid.get(member)
            tenant = request.tenant if request is not None else _UNATTRIBUTED
            doc = _tenant_doc(out.tenants, tenant)
            doc["tick_ns"] += shares[member]
            doc["energy_nj"] += energy_shares[member]
            for phase, amount in phase_shares[member].items():
                doc["by_phase"][phase] = (
                    doc["by_phase"].get(phase, 0) + amount
                )
            priority = str(request.priority if request is not None else 1)
            doc["by_priority"][priority] = (
                doc["by_priority"].get(priority, 0) + shares[member]
            )
            model = (request.model if request is not None else "") or (
                tick.model or "?"
            )
            doc["by_model"][model] = (
                doc["by_model"].get(model, 0) + shares[member]
            )
    for request in out.requests:
        doc = _tenant_doc(out.tenants, request.tenant)
        doc["requests"] += 1
        if request.outcome == "served":
            doc["served"] += 1
    out.tenants = {
        tenant: _sorted_tenant(doc)
        for tenant, doc in sorted(out.tenants.items())
    }


def _tenant_doc(tenants: dict, tenant: str) -> dict:
    return tenants.setdefault(tenant, {
        "tick_ns": 0, "energy_nj": 0, "requests": 0, "served": 0,
        "by_phase": {}, "by_priority": {}, "by_model": {},
    })


def _sorted_tenant(doc: dict) -> dict:
    for key in ("by_phase", "by_priority", "by_model"):
        doc[key] = dict(sorted(doc[key].items()))
    return dict(sorted(doc.items()))


def _exact_split(amount: int, members: list) -> list:
    """Split ``amount`` across members: floor share + remainder to the
    first (lowest-id) members, so shares always sum to ``amount``."""
    share, remainder = divmod(amount, len(members))
    return [
        (member, share + (1 if index < remainder else 0))
        for index, member in enumerate(members)
    ]


# ----------------------------------------------------------------------
# cluster mode
# ----------------------------------------------------------------------
def _analyze_cluster(records: TraceRecords) -> Attribution:
    """Fleet-level accounting from dispatch spans and lifecycle events.

    Cluster traces identify requests per server, not globally, so this
    mode reports rollups (per tenant/replica/model) rather than
    per-request decompositions; the exact-conservation guarantee here
    is that per-tenant dispatch shares sum to fleet busy time.
    """
    out = Attribution(mode="cluster", horizon_ns=records.horizon_ns())
    for span in records.spans:
        if not span.name.startswith("dispatch["):
            continue
        duration = span.duration_ns
        cold_ns = min(max(to_ns(span.args.get("cold_s", 0.0)), 0), duration)
        tenants = list(span.args.get("tenants", ()))
        priorities = list(span.args.get("priorities", ()))
        members = tuple(
            (index, str(tenant),
             int(priorities[index]) if index < len(priorities) else 1)
            for index, tenant in enumerate(tenants)
        )
        tick = _Tick(
            span_id=span.span_id,
            start_ns=span.start_ns,
            end_ns=span.end_ns,
            phase=str(span.args.get("phase") or "batch"),
            cold_ns=cold_ns,
            energy_nj=round(float(span.args.get("energy_j", 0.0)) * 1e9),
            model=str(span.args.get("model", "")),
            replica=span.track.partition("/")[2],
            members=members,
        )
        out.ticks.append(tick)
        out.busy_ns += duration
        out.energy_nj += tick.energy_nj
        replica = out.replicas.setdefault(
            tick.replica, {"busy_ns": 0, "dispatches": 0, "cold_ns": 0}
        )
        replica["busy_ns"] += duration
        replica["dispatches"] += 1
        replica["cold_ns"] += cold_ns

        slots = [m[0] for m in members]
        cold_phase = [("cold", cold_ns), (tick.phase, duration - cold_ns)]
        if not slots:
            doc = _tenant_doc(out.tenants, _UNATTRIBUTED)
            doc["tick_ns"] += duration
            doc["energy_nj"] += tick.energy_nj
            for phase, amount in cold_phase:
                if amount:
                    doc["by_phase"][phase] = (
                        doc["by_phase"].get(phase, 0) + amount
                    )
            continue
        member_info = {m[0]: m for m in members}
        for slot, share in _exact_split(tick.energy_nj, slots):
            _tenant_doc(out.tenants, member_info[slot][1])["energy_nj"] += (
                share
            )
        for phase, amount in cold_phase:
            if amount == 0:
                continue
            for slot, share in _exact_split(amount, slots):
                _, tenant, priority = member_info[slot]
                doc = _tenant_doc(out.tenants, tenant)
                doc["tick_ns"] += share
                doc["by_phase"][phase] = (
                    doc["by_phase"].get(phase, 0) + share
                )
                doc["by_priority"][str(priority)] = (
                    doc["by_priority"].get(str(priority), 0) + share
                )
                model = tick.model or "?"
                doc["by_model"][model] = (
                    doc["by_model"].get(model, 0) + share
                )

    # Request rollups from lifecycle events (ids are per-server, so no
    # cross-joins: served events carry their own wait/service prices).
    for event in records.events:
        if event.track != "cluster/requests":
            continue
        tenant = str(event.args.get("tenant", "default"))
        doc = _tenant_doc(out.tenants, tenant)
        if event.name == "queued":
            doc["requests"] += 1
        elif event.name == "served":
            doc["served"] += 1
            request = RequestAttribution(
                request_id=int(event.args.get("request_id", -1)),
                tenant=tenant,
                priority=int(event.args.get("priority", 1)),
                model=str(event.args.get("model", "")),
                outcome="served",
                submit_ns=event.ts_ns - to_ns(event.args.get("wait_s", 0.0))
                - to_ns(event.args.get("service_s", 0.0)),
                end_ns=event.ts_ns,
            )
            request.components["queue_wait_ns"] = to_ns(
                event.args.get("wait_s", 0.0)
            )
            request.components["batch_ns"] = to_ns(
                event.args.get("service_s", 0.0)
            )
            out.requests.append(request)
    out.tenants = {
        tenant: _sorted_tenant(doc)
        for tenant, doc in sorted(out.tenants.items())
    }
    out.replicas = dict(sorted(out.replicas.items()))
    return out


__all__ = [
    "Attribution",
    "COMPONENTS",
    "RequestAttribution",
    "analyze_records",
    "detect_mode",
]
