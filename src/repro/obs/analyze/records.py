"""Normalized trace records: the analytics subsystem's input model.

Every analysis in :mod:`repro.obs.analyze` runs on **integer
nanoseconds**. Float seconds are what the tracer stores (simulated
clock readings), but float addition does not associate — summing a
request's wait/tick components in float would drift off its end-to-end
latency by ulps and break the "attribution sums bit-exactly" guarantee.
Converting every timestamp once via :func:`to_ns` and doing all
arithmetic in ``int`` makes interval sums telescope exactly: for any
chain of shared breakpoints, ``sum(b[i+1] - b[i]) == b[-1] - b[0]``.

Three sources produce the same normalized records:

- a live :class:`~repro.obs.trace.Tracer` (in-process analysis);
- the JSONL event log (``repro trace --events-out``) — the primary
  artifact path, full-float-repr timestamps, byte-exact round-trip;
- a Chrome trace-event document (``repro trace --out``) — timestamps
  there are microseconds rounded to 1e-3 us, i.e. already nanosecond
  resolution, so ``round(ts_us * 1000)`` recovers the same integers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

#: Nanoseconds per second (the fixed analysis resolution).
NS_PER_S = 1_000_000_000


def to_ns(seconds: float) -> int:
    """Float seconds -> integer nanoseconds (round-half-even).

    Matches the Chrome exporter's ``round(s * 1e6, 3)`` microsecond
    grid, so records loaded from either artifact agree.
    """
    return round(float(seconds) * NS_PER_S)


@dataclass(frozen=True)
class SpanRec:
    """A closed interval on a track, in integer nanoseconds."""

    span_id: int
    name: str
    track: str
    start_ns: int
    end_ns: int
    parent_id: Optional[int] = None
    args: dict = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class EventRec:
    """An instant on a track, in integer nanoseconds."""

    event_id: int
    name: str
    track: str
    ts_ns: int
    args: dict = field(default_factory=dict)


@dataclass
class TraceRecords:
    """Normalized spans + events, ready for analysis.

    ``spans`` and ``events`` keep their source order (global timestamp
    order for the artifact loaders, which is what
    :meth:`~repro.obs.trace.Tracer.records` emits).
    """

    spans: list = field(default_factory=list)
    events: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "TraceRecords":
        """From :meth:`Tracer.records` dicts (or JSONL-parsed rows)."""
        out = cls()
        for record in records:
            if record.get("type") == "span":
                if record.get("end_s") is None:
                    continue  # open span: nothing to attribute
                out.spans.append(SpanRec(
                    span_id=int(record["span_id"]),
                    name=record["name"],
                    track=record["track"],
                    start_ns=to_ns(record["start_s"]),
                    end_ns=to_ns(record["end_s"]),
                    parent_id=record.get("parent_id"),
                    args=dict(record.get("args") or {}),
                ))
            elif record.get("type") == "event":
                out.events.append(EventRec(
                    event_id=int(record["event_id"]),
                    name=record["name"],
                    track=record["track"],
                    ts_ns=to_ns(record["ts_s"]),
                    args=dict(record.get("args") or {}),
                ))
        return out

    @classmethod
    def from_tracer(cls, tracer) -> "TraceRecords":
        return cls.from_records(tracer.records())

    @classmethod
    def from_jsonl(cls, text: str) -> "TraceRecords":
        rows = [
            json.loads(line) for line in text.splitlines() if line.strip()
        ]
        return cls.from_records(rows)

    @classmethod
    def from_chrome_trace(cls, doc: dict) -> "TraceRecords":
        """From a Chrome trace-event document (``repro trace --out``)."""
        out = cls()
        tracks = {
            meta["tid"]: meta.get("args", {}).get("name", "")
            for meta in doc.get("traceEvents", [])
            if meta.get("ph") == "M" and meta.get("name") == "thread_name"
        }

        def track_of(entry: dict) -> str:
            return tracks.get(entry.get("tid"), f"tid{entry.get('tid')}")

        next_event_id = 0
        for entry in doc.get("traceEvents", []):
            ph = entry.get("ph")
            args = dict(entry.get("args") or {})
            if ph == "X":
                span_id = args.pop("span_id", len(out.spans))
                parent_id = args.pop("parent_id", None)
                start_ns = round(float(entry["ts"]) * 1000)
                out.spans.append(SpanRec(
                    span_id=int(span_id),
                    name=entry["name"],
                    track=track_of(entry),
                    start_ns=start_ns,
                    end_ns=start_ns + round(float(entry["dur"]) * 1000),
                    parent_id=parent_id,
                    args=args,
                ))
            elif ph == "i":
                args.pop("span_id", None)
                out.events.append(EventRec(
                    event_id=next_event_id,
                    name=entry["name"],
                    track=track_of(entry),
                    ts_ns=round(float(entry["ts"]) * 1000),
                    args=args,
                ))
                next_event_id += 1
        return out

    @classmethod
    def load(cls, path: str) -> "TraceRecords":
        """Sniff and load either artifact format from ``path``.

        A JSON document with a ``traceEvents`` key is a Chrome trace;
        anything else is treated as the JSONL event log.
        """
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        stripped = text.lstrip()
        if stripped.startswith("{"):
            # JSONL lines are JSON objects too, so sniff by parsing the
            # whole document: only a one-document Chrome trace succeeds.
            try:
                doc = json.loads(text)
            except json.JSONDecodeError:
                doc = None
            if isinstance(doc, dict) and "traceEvents" in doc:
                return cls.from_chrome_trace(doc)
        return cls.from_jsonl(text)

    # ------------------------------------------------------------------
    # selectors
    # ------------------------------------------------------------------
    def spans_named(self, prefix: str, track: Optional[str] = None) -> list:
        return [
            s for s in self.spans
            if s.name.startswith(prefix)
            and (track is None or s.track == track)
        ]

    def events_named(self, name: str, track: Optional[str] = None) -> list:
        return [
            e for e in self.events
            if e.name == name and (track is None or e.track == track)
        ]

    def horizon_ns(self) -> int:
        """Latest timestamp seen anywhere (0 for an empty trace)."""
        latest = 0
        for span in self.spans:
            latest = max(latest, span.end_ns)
        for event in self.events:
            latest = max(latest, event.ts_ns)
        return latest


__all__ = [
    "EventRec",
    "NS_PER_S",
    "SpanRec",
    "TraceRecords",
    "to_ns",
]
