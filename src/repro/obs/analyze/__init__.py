"""Deterministic trace analytics over the observability artifacts.

Consumes PR 8's artifacts — live :class:`~repro.obs.trace.Tracer`
objects, the JSONL event log, or Chrome trace-event documents — and
produces byte-stable analyses: per-request wait/service attribution
(integer-nanosecond exact), per-tenant cost accounting, critical-path
extraction with per-edge slack, and SLO error-budget evaluation with
multi-window burn-rate alerts. See :mod:`repro.obs.analyze.report`
for the top-level entry points.
"""

from repro.obs.analyze.attribution import (
    Attribution,
    COMPONENTS,
    RequestAttribution,
    analyze_records,
    detect_mode,
)
from repro.obs.analyze.critical_path import (
    CPNode,
    CriticalPath,
    critical_path,
)
from repro.obs.analyze.html import render_html
from repro.obs.analyze.records import (
    EventRec,
    NS_PER_S,
    SpanRec,
    TraceRecords,
    to_ns,
)
from repro.obs.analyze.report import (
    AnalysisReport,
    analyze,
    analyze_path,
    analyze_tracer,
    build_critical_path,
    canonical_json,
    diff_analyses,
)
from repro.obs.analyze.slo import (
    SLOSpec,
    alert_events,
    default_slos,
    evaluate_slos,
    parse_slo_spec,
)

__all__ = [
    "AnalysisReport",
    "Attribution",
    "COMPONENTS",
    "CPNode",
    "CriticalPath",
    "EventRec",
    "NS_PER_S",
    "RequestAttribution",
    "SLOSpec",
    "SpanRec",
    "TraceRecords",
    "alert_events",
    "analyze",
    "analyze_path",
    "analyze_records",
    "analyze_tracer",
    "build_critical_path",
    "canonical_json",
    "critical_path",
    "default_slos",
    "detect_mode",
    "diff_analyses",
    "evaluate_slos",
    "parse_slo_spec",
    "render_html",
    "to_ns",
]
