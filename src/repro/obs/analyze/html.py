"""Zero-dependency static HTML report for an :class:`AnalysisReport`.

One self-contained page — inline CSS, inline SVG, no scripts, no
external assets — rendered as a deterministic string: fixed-precision
number formatting and sorted iteration everywhere, so the same report
document always produces byte-identical HTML (the ``obs_analysis``
gate bench pins this). Timelines use percentage coordinates over the
trace horizon, so the page scales to any simulated duration.
"""

from __future__ import annotations

import html as _html
from typing import Optional

from repro.obs.analyze.report import AnalysisReport

#: Cap on per-request timeline rows / table rows (noted when exceeded).
MAX_REQUEST_ROWS = 64

_PHASE_COLORS = {
    "dense": "#4477aa",
    "sparse": "#66ccee",
    "batch": "#4477aa",
    "cold": "#aa3377",
    "wait": "#ccbb44",
    "preempt": "#ee6677",
    "other": "#bbbbbb",
}

_COMPONENT_LABELS = {
    "queue_wait_ns": "queue wait",
    "join_wait_ns": "join wait",
    "preempt_ns": "preemption",
    "dense_ns": "dense ticks",
    "sparse_ns": "sparse ticks",
    "cold_ns": "cold start",
    "batch_ns": "batch service",
    "other_ns": "other",
}

_CSS = """
body{font-family:system-ui,sans-serif;margin:1.5rem;color:#222}
h1{font-size:1.3rem}h2{font-size:1.05rem;margin-top:1.6rem}
table{border-collapse:collapse;font-size:0.85rem}
th,td{border:1px solid #ddd;padding:0.25rem 0.55rem;text-align:right}
th{background:#f4f4f4}td.l,th.l{text-align:left}
svg{display:block;margin:0.4rem 0}
.lane{font-size:0.7rem}
.legend span{display:inline-block;margin-right:0.9rem;font-size:0.8rem}
.legend i{display:inline-block;width:0.8rem;height:0.8rem;
margin-right:0.25rem;vertical-align:middle}
.note{color:#666;font-size:0.8rem}
""".strip()


def _esc(value) -> str:
    return _html.escape(str(value), quote=True)


def _pct(value_ns: int, span_ns: int) -> str:
    if span_ns <= 0:
        return "0.0000"
    return f"{value_ns / span_ns * 100.0:.4f}"


def _ms(value_ns: int) -> str:
    return f"{value_ns / 1e6:.3f}"


def render_html(report: AnalysisReport, title: Optional[str] = None) -> str:
    doc = report.to_dict()
    out = []
    heading = title or f"Trace analysis ({doc['mode']})"
    out.append("<!DOCTYPE html>")
    out.append('<html lang="en"><head><meta charset="utf-8">')
    out.append(f"<title>{_esc(heading)}</title>")
    out.append(f"<style>{_CSS}</style></head><body>")
    out.append(f"<h1>{_esc(heading)}</h1>")
    out.append(_summary_block(doc))
    out.append(_legend_block())
    if doc["requests"]:
        out.append("<h2>Request timelines</h2>")
        out.append(_timeline_svg(report, doc))
    if report.attribution.ticks:
        out.append("<h2>Device timeline</h2>")
        out.append(_tick_strip_svg(report, doc))
    out.append("<h2>Fleet attribution</h2>")
    out.append(_components_table(doc))
    if doc["tenants"]:
        out.append("<h2>Tenant cost accounting</h2>")
        out.append(_tenants_table(doc))
    if doc["requests"]:
        out.append("<h2>Requests</h2>")
        out.append(_requests_table(doc))
    out.append("<h2>Critical path</h2>")
    out.append(_critical_path_block(doc))
    if doc["slo"]:
        out.append("<h2>SLO error budgets</h2>")
        out.append(_slo_block(doc))
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def _summary_block(doc: dict) -> str:
    latency = doc["fleet"]["latency"]
    outcomes = ", ".join(
        f"{count} {_esc(outcome)}"
        for outcome, count in doc["fleet"]["outcomes"].items()
    ) or "none"
    rows = [
        ("Requests", outcomes),
        ("Horizon", f"{_ms(doc['horizon_ns'])} ms"),
        ("Device busy", f"{_ms(doc['busy_ns'])} ms"),
        ("Energy", f"{doc['energy_nj'] / 1e9:.6f} J"),
        ("Latency p50 / p95 / p99",
         f"{_ms(latency['p50_ns'])} / {_ms(latency['p95_ns'])} / "
         f"{_ms(latency['p99_ns'])} ms"),
        ("Critical path",
         f"{_ms(doc['critical_path']['total_ns'])} ms over "
         f"{len(doc['critical_path']['nodes'])} nodes"),
        ("Conservation",
         f"max request residual {doc['conservation']['max_request_residual_ns']} ns, "
         f"tenant residual {doc['conservation']['tenant_residual_ns']} ns"),
    ]
    cells = "".join(
        f'<tr><th class="l">{_esc(k)}</th><td class="l">{v}</td></tr>'
        for k, v in rows
    )
    return f"<table>{cells}</table>"


def _legend_block() -> str:
    parts = "".join(
        f'<span><i style="background:{color}"></i>{_esc(name)}</span>'
        for name, color in sorted(_PHASE_COLORS.items())
    )
    return f'<div class="legend">{parts}</div>'


def _timeline_svg(report: AnalysisReport, doc: dict) -> str:
    requests = report.attribution.requests[:MAX_REQUEST_ROWS]
    span_ns = max(doc["horizon_ns"], 1)
    row_h = 14
    height = len(requests) * row_h + 4
    parts = [
        f'<svg viewBox="0 0 100 {height}" width="100%" '
        f'height="{height * 2}" preserveAspectRatio="none">'
    ]
    for index, request in enumerate(requests):
        y = index * row_h + 2
        # Whole lifetime in wait color; active segments then overpaint.
        parts.append(
            f'<rect x="{_pct(request.submit_ns, span_ns)}" y="{y}" '
            f'width="{_pct(request.latency_ns, span_ns)}" height="10" '
            f'fill="{_PHASE_COLORS["wait"]}"/>'
        )
        previous_leave = None
        for join_ns, leave_ns in request.intervals:
            if previous_leave is not None and join_ns > previous_leave:
                parts.append(
                    f'<rect x="{_pct(previous_leave, span_ns)}" y="{y}" '
                    f'width="{_pct(join_ns - previous_leave, span_ns)}" '
                    f'height="10" fill="{_PHASE_COLORS["preempt"]}"/>'
                )
            previous_leave = leave_ns
        for tick in report.attribution.ticks:
            member = (
                request.request_id in tick.members
                or any(j <= tick.start_ns and tick.end_ns <= l
                       for j, l in request.intervals)
            )
            if not member:
                continue
            color = _PHASE_COLORS.get(tick.phase, _PHASE_COLORS["other"])
            parts.append(
                f'<rect x="{_pct(tick.start_ns, span_ns)}" y="{y}" '
                f'width="{_pct(tick.duration_ns, span_ns)}" height="10" '
                f'fill="{color}"/>'
            )
    parts.append("</svg>")
    note = ""
    if len(report.attribution.requests) > MAX_REQUEST_ROWS:
        hidden = len(report.attribution.requests) - MAX_REQUEST_ROWS
        note = (f'<p class="note">Showing first {MAX_REQUEST_ROWS} '
                f"requests ({hidden} more omitted).</p>")
    return "".join(parts) + note


def _tick_strip_svg(report: AnalysisReport, doc: dict) -> str:
    span_ns = max(doc["horizon_ns"], 1)
    parts = ['<svg viewBox="0 0 100 16" width="100%" height="32" '
             'preserveAspectRatio="none">']
    for tick in report.attribution.ticks:
        color = _PHASE_COLORS.get(tick.phase, _PHASE_COLORS["other"])
        parts.append(
            f'<rect x="{_pct(tick.start_ns, span_ns)}" y="2" '
            f'width="{_pct(tick.duration_ns, span_ns)}" height="12" '
            f'fill="{color}" stroke="#fff" stroke-width="0.05"/>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _components_table(doc: dict) -> str:
    components = doc["fleet"]["components_ns"]
    total = sum(components.values()) or 1
    rows = "".join(
        f'<tr><td class="l">{_esc(_COMPONENT_LABELS.get(key, key))}</td>'
        f"<td>{_ms(value)}</td>"
        f"<td>{value / total * 100.0:.2f}%</td></tr>"
        for key, value in components.items()
    )
    return (
        '<table><tr><th class="l">component</th><th>ms</th>'
        f"<th>share</th></tr>{rows}</table>"
    )


def _tenants_table(doc: dict) -> str:
    busy = doc["busy_ns"] or 1
    rows = []
    for tenant, info in doc["tenants"].items():
        phases = ", ".join(
            f"{_esc(phase)} {_ms(value)}"
            for phase, value in info["by_phase"].items()
        ) or "-"
        rows.append(
            f'<tr><td class="l">{_esc(tenant)}</td>'
            f"<td>{info['requests']}</td><td>{info['served']}</td>"
            f"<td>{_ms(info['tick_ns'])}</td>"
            f"<td>{info['tick_ns'] / busy * 100.0:.2f}%</td>"
            f"<td>{info['energy_nj'] / 1e9:.6f}</td>"
            f'<td class="l">{phases}</td></tr>'
        )
    return (
        '<table><tr><th class="l">tenant</th><th>requests</th>'
        "<th>served</th><th>tick ms</th><th>busy share</th>"
        '<th>energy J</th><th class="l">by phase (ms)</th></tr>'
        + "".join(rows) + "</table>"
    )


def _requests_table(doc: dict) -> str:
    rows = []
    for request in doc["requests"][:MAX_REQUEST_ROWS]:
        components = request["components"]
        top = sorted(
            ((v, k) for k, v in components.items() if v > 0), reverse=True
        )[:3]
        breakdown = ", ".join(
            f"{_esc(_COMPONENT_LABELS.get(key, key))} {_ms(value)}"
            for value, key in top
        ) or "-"
        deadline = ("yes" if request["deadline_met"]
                    else "no" if request["deadline_met"] is False else "-")
        rows.append(
            f"<tr><td>{request['request_id']}</td>"
            f'<td class="l">{_esc(request["tenant"])}</td>'
            f"<td>{request['priority']}</td>"
            f'<td class="l">{_esc(request["outcome"])}</td>'
            f"<td>{_ms(request['latency_ns'])}</td>"
            f"<td>{deadline}</td>"
            f'<td class="l">{breakdown}</td></tr>'
        )
    note = ""
    if len(doc["requests"]) > MAX_REQUEST_ROWS:
        note = (f'<p class="note">Showing first {MAX_REQUEST_ROWS} of '
                f"{len(doc['requests'])} requests.</p>")
    return (
        '<table><tr><th>id</th><th class="l">tenant</th><th>prio</th>'
        '<th class="l">outcome</th><th>latency ms</th><th>deadline</th>'
        '<th class="l">top components (ms)</th></tr>'
        + "".join(rows) + "</table>" + note
    )


def _critical_path_block(doc: dict) -> str:
    path = doc["critical_path"]
    if not path["nodes"]:
        return '<p class="note">No spans to chain.</p>'
    slack = {edge["to"]: edge["slack_ns"] for edge in path["edges"]}
    rows = "".join(
        f'<tr><td class="l">{_esc(node["key"])}</td>'
        f'<td class="l">{_esc(node["label"])}</td>'
        f"<td>{_ms(node['duration_ns'])}</td>"
        f"<td>{_ms(slack.get(node['key'], 0))}</td></tr>"
        for node in path["nodes"]
    )
    return (
        f"<p>Longest chain: <b>{_ms(path['total_ns'])} ms</b> across "
        f"{len(path['nodes'])} nodes (trace extent "
        f"{_ms(path['span_ns'])} ms).</p>"
        '<table><tr><th class="l">node</th><th class="l">label</th>'
        f"<th>ms</th><th>slack ms</th></tr>{rows}</table>"
    )


def _slo_block(doc: dict) -> str:
    parts = []
    for name, result in doc["slo"].items():
        spec = result["spec"]
        target = f"{spec['target'] * 100.0:.2f}%"
        detail = (f"latency &le; {_ms(spec['threshold_ns'])} ms"
                  if spec["kind"] == "latency" else "deadline hit")
        parts.append(
            f'<h3>{_esc(name)} <span class="note">({detail}, target '
            f"{target})</span></h3>"
        )
        parts.append(
            f"<p>Compliance <b>{result['compliance'] * 100.0:.2f}%</b> "
            f"over {result['total']} samples; budget consumed "
            f"{result['budget_consumed_ratio'] * 100.0:.1f}%; "
            f"{len(result['alerts'])} alert(s).</p>"
        )
        if result["burn_series"]:
            parts.append(_burn_svg(result))
        for alert in result["alerts"]:
            parts.append(
                f'<p class="note">alert at {_ms(alert["ts_ns"])} ms: '
                f"burn long {alert['burn_long']:.2f}, short "
                f"{alert['burn_short']:.2f}</p>"
            )
    return "".join(parts)


def _burn_svg(result: dict) -> str:
    series = result["burn_series"]
    threshold = result["windows"]["burn_threshold"]
    t0 = series[0][0]
    t1 = max(series[-1][0], t0 + 1)
    peak = max(max(long, short) for _ts, long, short in series)
    top = max(peak, threshold) * 1.1 or 1.0

    def x(ts: int) -> str:
        return f"{(ts - t0) / (t1 - t0) * 100.0:.4f}"

    def y(value: float) -> str:
        return f"{30.0 - value / top * 28.0:.4f}"

    long_points = " ".join(
        f"{x(ts)},{y(long)}" for ts, long, _short in series
    )
    short_points = " ".join(
        f"{x(ts)},{y(short)}" for ts, _long, short in series
    )
    return (
        '<svg viewBox="0 0 100 32" width="100%" height="96" '
        'preserveAspectRatio="none">'
        f'<line x1="0" y1="{y(threshold)}" x2="100" y2="{y(threshold)}" '
        'stroke="#ee6677" stroke-width="0.3" stroke-dasharray="2,1"/>'
        f'<polyline points="{long_points}" fill="none" stroke="#4477aa" '
        'stroke-width="0.5"/>'
        f'<polyline points="{short_points}" fill="none" stroke="#66ccee" '
        'stroke-width="0.5"/>'
        "</svg>"
        '<p class="note">burn rate: dark = long window, light = short '
        "window, dashed = alert threshold</p>"
    )


__all__ = ["MAX_REQUEST_ROWS", "render_html"]
