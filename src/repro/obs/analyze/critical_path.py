"""Critical-path extraction over span DAGs (classic CPM, integer ns).

A node is a closed interval; an edge ``u -> v`` asserts that ``v``
could not start before ``u`` finished (``v.start_ns >= u.end_ns`` —
validated, because an edge violating it would let the "longest path"
exceed physical time). The critical path is the dependency chain with
the largest summed node duration; per-edge **slack** is the idle gap
``v.start_ns - u.end_ns`` — how much the predecessor could slip without
moving its successor.

Everything is deterministic: ties in the DP break toward the smaller
node key, and the topological order is Kahn's algorithm popping the
smallest ready key. Singleton nodes are candidate paths too, which
gives the two properties the hypothesis suite checks: the reported
length is at least any single span's duration, and (since consecutive
path nodes never overlap) at most the total extent of the trace.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple


@dataclass(frozen=True)
class CPNode:
    """One interval in the dependency graph."""

    key: str
    start_ns: int
    end_ns: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.end_ns < self.start_ns:
            raise ValueError(
                f"node {self.key!r} ends at {self.end_ns} before start "
                f"{self.start_ns}"
            )

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass
class CriticalPath:
    """The longest chain and its per-edge slack."""

    total_ns: int = 0
    nodes: list = field(default_factory=list)  # CPNode, chain order
    edges: list = field(default_factory=list)  # {"from","to","slack_ns"}
    #: Full extent of the analyzed graph (max end - min start): the
    #: upper bound any valid critical path must respect.
    span_ns: int = 0

    def to_dict(self) -> dict:
        return {
            "total_ns": self.total_ns,
            "span_ns": self.span_ns,
            "nodes": [
                {
                    "key": n.key,
                    "label": n.label,
                    "start_ns": n.start_ns,
                    "end_ns": n.end_ns,
                    "duration_ns": n.duration_ns,
                }
                for n in self.nodes
            ],
            "edges": list(self.edges),
        }


def critical_path(
    nodes: Iterable[CPNode],
    edges: Sequence[Tuple[str, str]],
) -> CriticalPath:
    """Longest chain (by summed duration) through an interval DAG.

    ``edges`` are ``(from_key, to_key)`` pairs; every edge must respect
    time (``to.start_ns >= from.end_ns``) and reference known keys.
    Duplicate edges are collapsed. Raises :class:`ValueError` on
    violations — a malformed graph must fail loudly, not produce a
    plausible-looking wrong answer.
    """
    by_key = {}
    for node in nodes:
        if node.key in by_key:
            raise ValueError(f"duplicate node key {node.key!r}")
        by_key[node.key] = node
    if not by_key:
        return CriticalPath()

    successors: dict = {key: set() for key in by_key}
    indegree: dict = {key: 0 for key in by_key}
    for u, v in edges:
        if u not in by_key or v not in by_key:
            raise ValueError(f"edge ({u!r}, {v!r}) references unknown node")
        if by_key[v].start_ns < by_key[u].end_ns:
            raise ValueError(
                f"edge ({u!r}, {v!r}) violates time: successor starts at "
                f"{by_key[v].start_ns} before predecessor end "
                f"{by_key[u].end_ns}"
            )
        if v not in successors[u]:
            successors[u].add(v)
            indegree[v] += 1

    # Kahn's algorithm with a min-heap on key: deterministic topo order.
    ready = [key for key, deg in sorted(indegree.items()) if deg == 0]
    heapq.heapify(ready)
    best: dict = {}  # key -> (total_ns, predecessor key or None)
    order = []
    while ready:
        key = heapq.heappop(ready)
        order.append(key)
        node = by_key[key]
        incoming = best.get(key)
        base = 0 if incoming is None else incoming[0]
        best[key] = (base + node.duration_ns, None if incoming is None
                     else incoming[1])
        for succ in sorted(successors[key]):
            candidate = (best[key][0], key)
            current = best.get(succ)
            # Strictly-greater keeps the first (smallest-key) winner on
            # ties, which makes the reported path deterministic.
            if current is None or candidate[0] > current[0]:
                best[succ] = candidate
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, succ)
    if len(order) != len(by_key):
        raise ValueError("dependency graph contains a cycle")

    end_key = max(best, key=lambda k: (best[k][0], _neg_key(k)))
    chain = []
    cursor: Optional[str] = end_key
    while cursor is not None:
        chain.append(by_key[cursor])
        cursor = best[cursor][1]
    chain.reverse()

    path_edges = [
        {
            "from": u.key,
            "to": v.key,
            "slack_ns": v.start_ns - u.end_ns,
        }
        for u, v in zip(chain, chain[1:])
    ]
    starts = [n.start_ns for n in by_key.values()]
    ends = [n.end_ns for n in by_key.values()]
    return CriticalPath(
        total_ns=best[end_key][0],
        nodes=chain,
        edges=path_edges,
        span_ns=max(ends) - min(starts),
    )


class _neg_key:
    """Reverses string ordering so max() tie-breaks to the smaller key."""

    __slots__ = ("key",)

    def __init__(self, key: str) -> None:
        self.key = key

    def __lt__(self, other: "_neg_key") -> bool:
        return self.key > other.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _neg_key) and self.key == other.key


__all__ = ["CPNode", "CriticalPath", "critical_path"]
