"""Declarative SLOs with multi-window burn-rate evaluation (sim clock).

An :class:`SLOSpec` declares a target ratio over a stream of good/bad
samples derived from the attribution:

- ``latency`` — a served request is *good* iff its end-to-end simulated
  latency is at or under ``threshold_ns``; any non-served terminal
  outcome is *bad*;
- ``deadline`` — over requests that carried deadlines, *good* iff the
  request completed by its deadline.

The error budget is ``1 - target``. Burn rate at an instant is the
fraction of bad samples inside a trailing window divided by the budget:
burn 1.0 means the budget is being consumed exactly at the rate that
would exhaust it if sustained; burn 2.0 means twice as fast. Following
the multi-window alerting recipe, an alert fires only when **both** a
long and a short trailing window exceed the burn threshold — the long
window proves the problem is real, the short window proves it is still
happening — and stays latched until the short window recovers, so one
sustained violation produces one alert event, not one per sample.

Everything runs on the simulated clock over integer-nanosecond sample
instants, so results are deterministic and byte-stable; alerts can be
re-emitted into the trace as instant events for timeline display.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.obs.analyze.attribution import Attribution

#: Longest burn-rate series retained per spec (decimated for charts).
MAX_SERIES_POINTS = 128


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective."""

    name: str
    kind: str  # "latency" | "deadline"
    target: float  # good-ratio target in (0, 1)
    threshold_ns: Optional[int] = None  # latency kind only

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "deadline"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"SLO target must be in (0, 1), got {self.target}"
            )
        if self.kind == "latency" and (
            self.threshold_ns is None or self.threshold_ns <= 0
        ):
            raise ValueError("latency SLO needs a positive threshold")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "threshold_ns": self.threshold_ns,
        }


def parse_slo_spec(text: str) -> SLOSpec:
    """Parse the CLI grammar.

    ``name:latency:<threshold_seconds>:<target>`` or
    ``name:deadline:<target>`` — e.g. ``p95:latency:0.25:0.95``.
    """
    parts = text.split(":")
    if len(parts) == 4 and parts[1] == "latency":
        return SLOSpec(
            name=parts[0],
            kind="latency",
            target=float(parts[3]),
            threshold_ns=round(float(parts[2]) * 1_000_000_000),
        )
    if len(parts) == 3 and parts[1] == "deadline":
        return SLOSpec(name=parts[0], kind="deadline",
                       target=float(parts[2]))
    raise ValueError(
        f"bad SLO spec {text!r}: expected name:latency:<secs>:<target> "
        f"or name:deadline:<target>"
    )


def default_slos() -> list:
    """The stock objectives used when the CLI gets no ``--slo`` flags."""
    return [
        SLOSpec(name="latency-250ms", kind="latency", target=0.95,
                threshold_ns=250_000_000),
        SLOSpec(name="deadline-hit", kind="deadline", target=0.95),
    ]


def evaluate_slos(
    attribution: Attribution,
    specs: Sequence[SLOSpec],
    burn_threshold: float = 1.0,
    long_window_ns: Optional[int] = None,
    short_window_ns: Optional[int] = None,
) -> dict:
    """Evaluate every spec; returns ``{spec_name: result_doc}``.

    Default windows derive from the trace horizon (long = horizon/4,
    short = horizon/16) so the same relative alerting sensitivity
    applies to runs of any simulated length.
    """
    horizon = max(attribution.horizon_ns, 1)
    long_ns = long_window_ns or max(horizon // 4, 1)
    short_ns = short_window_ns or max(horizon // 16, 1)
    results = {}
    for spec in specs:
        samples = _samples(attribution, spec)
        results[spec.name] = _evaluate(
            spec, samples, burn_threshold, long_ns, short_ns
        )
    return dict(sorted(results.items()))


def _samples(attribution: Attribution, spec: SLOSpec) -> list:
    """(ts_ns, good) pairs in deterministic timeline order."""
    samples = []
    for request in attribution.requests:
        if request.outcome == "open":
            continue
        if spec.kind == "latency":
            good = (
                request.outcome == "served"
                and request.latency_ns <= spec.threshold_ns
            )
            samples.append((request.end_ns, request.request_id, good))
        else:
            met = request.deadline_met
            if met is None:
                continue
            samples.append((request.end_ns, request.request_id, met))
    samples.sort()
    return [(ts, good) for ts, _rid, good in samples]


def _evaluate(
    spec: SLOSpec,
    samples: list,
    burn_threshold: float,
    long_ns: int,
    short_ns: int,
) -> dict:
    total = len(samples)
    bad = sum(1 for _ts, good in samples if not good)
    budget = 1.0 - spec.target
    doc = {
        "spec": spec.to_dict(),
        "total": total,
        "good": total - bad,
        "bad": bad,
        "compliance": _ratio(total - bad, total),
        "error_budget": round(budget, 9),
        "budget_consumed_ratio": round(_ratio(bad, total) / budget, 9),
        "windows": {
            "long_ns": long_ns,
            "short_ns": short_ns,
            "burn_threshold": burn_threshold,
        },
        "alerts": [],
        "burn_series": [],
    }
    if total == 0:
        return doc

    series = []
    alerts = []
    latched = False
    for index, (ts, _good) in enumerate(samples):
        burn_long = _window_burn(samples, index, ts - long_ns, budget)
        burn_short = _window_burn(samples, index, ts - short_ns, budget)
        series.append((ts, round(burn_long, 9), round(burn_short, 9)))
        firing = (
            burn_long >= burn_threshold and burn_short >= burn_threshold
        )
        if firing and not latched:
            alerts.append({
                "ts_ns": ts,
                "burn_long": round(burn_long, 9),
                "burn_short": round(burn_short, 9),
            })
            latched = True
        elif not firing and latched and burn_short < burn_threshold:
            latched = False
    doc["alerts"] = alerts
    doc["burn_series"] = _decimate(series)
    return doc


def _window_burn(
    samples: list, upto: int, window_start: int, budget: float
) -> float:
    """Burn rate over samples in ``(window_start, samples[upto].ts]``."""
    total = 0
    bad = 0
    for ts, good in samples[: upto + 1]:
        if ts > window_start:
            total += 1
            if not good:
                bad += 1
    if total == 0:
        return 0.0
    return (bad / total) / budget


def _ratio(numerator: int, denominator: int) -> float:
    if denominator == 0:
        return 1.0
    return round(numerator / denominator, 9)


def _decimate(series: list) -> list:
    """Keep at most :data:`MAX_SERIES_POINTS`, always the last point."""
    if len(series) <= MAX_SERIES_POINTS:
        return [list(point) for point in series]
    stride = -(-len(series) // MAX_SERIES_POINTS)
    kept = series[::stride]
    if kept[-1] != series[-1]:
        kept.append(series[-1])
    return [list(point) for point in kept]


def alert_events(slo_results: dict) -> list:
    """Flatten alerts as (name, ts_s, args) tuples for trace emission."""
    out = []
    for spec_name, doc in sorted(slo_results.items()):
        for alert in doc.get("alerts", ()):
            out.append((
                "slo_alert",
                alert["ts_ns"] / 1_000_000_000,
                {
                    "slo": spec_name,
                    "burn_long": alert["burn_long"],
                    "burn_short": alert["burn_short"],
                },
            ))
    out.sort(key=lambda item: (item[1], item[2]["slo"]))
    return out


__all__ = [
    "MAX_SERIES_POINTS",
    "SLOSpec",
    "alert_events",
    "default_slos",
    "evaluate_slos",
    "parse_slo_spec",
]
