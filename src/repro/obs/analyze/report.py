"""AnalysisReport: byte-stable analysis artifacts, diff, bench bridge.

The report is the single structured product of the analytics engine:
attribution + critical path + SLO evaluation in one canonical-JSON
document. *Canonical* means sorted keys, minimal separators, NaN/Inf
rejected, trailing newline — two runs with identical traces produce
byte-identical files, which is what the ``obs_analysis`` gate bench
pins.

:func:`diff_analyses` compares two report documents and attributes any
latency/throughput movement to phases and tenants, so a regression in
``p95`` comes annotated with "sparse tick time for tenant beta grew
1.8 ms" rather than a bare number.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.obs.analyze.attribution import Attribution, analyze_records
from repro.obs.analyze.critical_path import (
    CPNode,
    CriticalPath,
    critical_path,
)
from repro.obs.analyze.records import TraceRecords
from repro.obs.analyze.slo import SLOSpec, default_slos, evaluate_slos

SCHEMA_VERSION = 1


@dataclass
class AnalysisReport:
    """The complete analysis of one run's trace artifacts."""

    attribution: Attribution
    path: CriticalPath
    slo: dict
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        attribution = self.attribution
        fleet = attribution.fleet_components()
        return {
            "schema_version": SCHEMA_VERSION,
            "mode": attribution.mode,
            "meta": dict(self.meta),
            "horizon_ns": attribution.horizon_ns,
            "busy_ns": attribution.busy_ns,
            "energy_nj": attribution.energy_nj,
            "fleet": {
                "components_ns": fleet,
                "outcomes": attribution.outcomes(),
                "latency": attribution.latency_summary(),
            },
            "requests": [r.to_dict() for r in attribution.requests],
            "tenants": attribution.tenants,
            "replicas": attribution.replicas,
            "critical_path": self.path.to_dict(),
            "slo": self.slo,
            "conservation": {
                "max_request_residual_ns":
                    attribution.max_request_residual_ns(),
                "tenant_residual_ns": attribution.tenant_residual_ns(),
                "other_ns_total": fleet["other_ns"],
            },
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    def to_bench_result(self):
        """Project the report onto the bench schema (lazy import —
        analysis must not pull the bench registry at import time)."""
        from repro.bench import BenchResult

        attribution = self.attribution
        latency = attribution.latency_summary()
        result = BenchResult(
            "obs_analysis_report",
            model=str(self.meta.get("model", "") or "trace"),
        )
        result.add_metric("requests", float(len(attribution.requests)),
                          unit="requests")
        result.add_metric("served", float(latency["count"]),
                          unit="requests")
        result.add_metric("busy_s", attribution.busy_ns / 1e9, unit="s")
        result.add_metric("latency_p95_s", latency["p95_ns"] / 1e9,
                          unit="s", direction="lower_better")
        result.add_metric(
            "max_request_residual_ns",
            float(attribution.max_request_residual_ns()),
            unit="ns", direction="lower_better", tolerance=0.0,
        )
        result.add_metric(
            "tenant_residual_ns",
            float(attribution.tenant_residual_ns()),
            unit="ns", direction="lower_better", tolerance=0.0,
        )
        result.add_metric("critical_path_s", self.path.total_ns / 1e9,
                          unit="s")
        alerts = sum(len(doc["alerts"]) for doc in self.slo.values())
        result.add_metric("slo_alerts", float(alerts), unit="alerts")
        result.add_series(
            "Fleet attribution",
            ["component", "seconds"],
            [
                [key, value / 1e9]
                for key, value in attribution.fleet_components().items()
            ],
        )
        return result


def canonical_json(doc: dict) -> str:
    return json.dumps(
        doc, sort_keys=True, separators=(",", ":"), allow_nan=False
    ) + "\n"


# ----------------------------------------------------------------------
# top-level entry points
# ----------------------------------------------------------------------
def analyze(
    records: TraceRecords,
    slos: Optional[Sequence[SLOSpec]] = None,
    meta: Optional[dict] = None,
) -> AnalysisReport:
    """Records -> full report (attribution, critical path, SLOs)."""
    attribution = analyze_records(records)
    path = build_critical_path(attribution)
    slo = evaluate_slos(attribution, default_slos() if slos is None
                        else list(slos))
    return AnalysisReport(
        attribution=attribution, path=path, slo=slo, meta=dict(meta or {})
    )


def analyze_path(
    path: str,
    slos: Optional[Sequence[SLOSpec]] = None,
    meta: Optional[dict] = None,
) -> AnalysisReport:
    """Load a trace artifact (Chrome trace or JSONL) and analyze it."""
    merged = {"source": path}
    merged.update(meta or {})
    return analyze(TraceRecords.load(path), slos=slos, meta=merged)


def analyze_tracer(
    tracer,
    slos: Optional[Sequence[SLOSpec]] = None,
    meta: Optional[dict] = None,
) -> AnalysisReport:
    return analyze(TraceRecords.from_tracer(tracer), slos=slos, meta=meta)


# ----------------------------------------------------------------------
# critical-path graph construction
# ----------------------------------------------------------------------
def build_critical_path(attribution: Attribution) -> CriticalPath:
    """Dependency graph from the attribution's requests and ticks.

    Serve modes: each request contributes a *wait* node (submission to
    first join) feeding its first member tick, and every request chains
    its member ticks in time order (covering both same-phase adjacency
    and preemption bridges). Cluster mode chains dispatches per
    replica. Edges that a noisy wall-clock trace would render invalid
    (successor starting before predecessor end) are skipped rather than
    fatal — the analyzer reports on real artifacts, it does not insist
    they be ideal.
    """
    nodes = {}
    edges = set()

    def add_node(key: str, start_ns: int, end_ns: int, label: str) -> None:
        if key not in nodes:
            nodes[key] = CPNode(key=key, start_ns=start_ns,
                                end_ns=end_ns, label=label)

    def add_edge(u: str, v: str) -> None:
        if nodes[v].start_ns >= nodes[u].end_ns:
            edges.add((u, v))

    if attribution.mode == "cluster":
        by_replica: dict = {}
        for tick in attribution.ticks:
            by_replica.setdefault(tick.replica, []).append(tick)
        for replica in sorted(by_replica):
            chain = sorted(by_replica[replica],
                           key=lambda t: (t.start_ns, t.span_id))
            previous = None
            for tick in chain:
                key = f"tick:{tick.span_id:08d}"
                add_node(key, tick.start_ns, tick.end_ns,
                         f"{replica} {tick.phase}")
                if previous is not None:
                    add_edge(previous, key)
                previous = key
        return critical_path(nodes.values(), sorted(edges))

    member_ticks: dict = {}
    for request in attribution.requests:
        ticks = []
        for tick in attribution.ticks:
            in_interval = any(
                j <= tick.start_ns and tick.end_ns <= l
                for j, l in request.intervals
            )
            listed = request.request_id in tick.members
            if in_interval or listed:
                ticks.append(tick)
        if ticks:
            member_ticks[request.request_id] = sorted(
                ticks, key=lambda t: (t.start_ns, t.span_id)
            )

    for request in attribution.requests:
        chain = member_ticks.get(request.request_id, [])
        if not chain:
            continue
        first_join = (
            request.intervals[0][0] if request.intervals
            else chain[0].start_ns
        )
        wait_key = f"wait:{request.request_id:08d}"
        if first_join > request.submit_ns:
            add_node(wait_key, request.submit_ns, first_join,
                     f"wait r{request.request_id}")
        previous = None
        for tick in chain:
            key = f"tick:{tick.span_id:08d}"
            add_node(key, tick.start_ns, tick.end_ns, tick.phase)
            if previous is None and wait_key in nodes:
                add_edge(wait_key, key)
            elif previous is not None:
                add_edge(previous, key)
            previous = key
    return critical_path(nodes.values(), sorted(edges))


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------
def diff_analyses(
    base: dict, current: dict, tolerance: float = 0.0
) -> dict:
    """Compare two report documents; attribute movement to phases and
    tenants.

    ``tolerance`` is relative: a lower-is-better metric regresses when
    ``current > base * (1 + tolerance)`` (symmetrically for
    higher-is-better). Identical documents always diff clean.
    """
    checks = []  # (metric, base, current, direction)
    base_fleet = base.get("fleet", {})
    cur_fleet = current.get("fleet", {})
    for quantile in ("p50_ns", "p95_ns", "p99_ns", "mean_ns", "max_ns"):
        checks.append((
            f"latency.{quantile}",
            base_fleet.get("latency", {}).get(quantile, 0),
            cur_fleet.get("latency", {}).get(quantile, 0),
            "lower_better",
        ))
    checks.append((
        "served",
        base_fleet.get("latency", {}).get("count", 0),
        cur_fleet.get("latency", {}).get("count", 0),
        "higher_better",
    ))
    checks.append((
        "busy_ns", base.get("busy_ns", 0), current.get("busy_ns", 0),
        "lower_better",
    ))
    checks.append((
        "critical_path_ns",
        base.get("critical_path", {}).get("total_ns", 0),
        current.get("critical_path", {}).get("total_ns", 0),
        "lower_better",
    ))
    for name in sorted(
        set(base.get("slo", {})) | set(current.get("slo", {}))
    ):
        checks.append((
            f"slo.{name}.compliance",
            base.get("slo", {}).get(name, {}).get("compliance", 1.0),
            current.get("slo", {}).get(name, {}).get("compliance", 1.0),
            "higher_better",
        ))

    regressions = []
    improvements = []
    unchanged = 0
    for metric, base_value, cur_value, direction in checks:
        if base_value == cur_value:
            unchanged += 1
            continue
        slack = tolerance * abs(base_value)
        delta = cur_value - base_value
        worse = (
            delta > slack if direction == "lower_better"
            else delta < -slack
        )
        better = (
            delta < -slack if direction == "lower_better"
            else delta > slack
        )
        entry = {
            "metric": metric,
            "base": base_value,
            "current": cur_value,
            "delta": delta,
        }
        if worse:
            regressions.append(entry)
        elif better:
            improvements.append(entry)
        else:
            unchanged += 1

    component_deltas = _delta_map(
        base_fleet.get("components_ns", {}),
        cur_fleet.get("components_ns", {}),
    )
    tenant_deltas = _delta_map(
        {t: doc.get("tick_ns", 0)
         for t, doc in base.get("tenants", {}).items()},
        {t: doc.get("tick_ns", 0)
         for t, doc in current.get("tenants", {}).items()},
    )
    return {
        "regressions": regressions,
        "improvements": improvements,
        "unchanged": unchanged,
        "attribution": {
            "components_ns": component_deltas,
            "tenants_tick_ns": tenant_deltas,
        },
    }


def _delta_map(base: dict, current: dict) -> dict:
    """Non-zero deltas, largest magnitude first (ties by name)."""
    deltas = {}
    for key in set(base) | set(current):
        delta = current.get(key, 0) - base.get(key, 0)
        if delta != 0:
            deltas[key] = delta
    return dict(
        sorted(deltas.items(), key=lambda kv: (-abs(kv[1]), kv[0]))
    )


__all__ = [
    "AnalysisReport",
    "SCHEMA_VERSION",
    "analyze",
    "analyze_path",
    "analyze_tracer",
    "build_critical_path",
    "canonical_json",
    "diff_analyses",
]
