"""The nil-by-default Observer: one object carrying metrics + tracer.

Every instrumented layer takes ``observer=None`` and guards each hook
with ``if self.observer is not None``: disabled observability is a
single predictable branch per site — no allocation, no formatting, no
dict churn — which is what makes the "byte-identical when off" gate in
``benchmarks/bench_obs_overhead.py`` hold trivially.

When enabled, an :class:`Observer` owns a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.trace.Tracer` and exposes **named hooks** — one per
instrumentation site — so the hot layers never touch metric families or
track names directly. Hook timestamps always come from the owning
layer's clock (``SimClock``, simulated tick accumulators, priced hw
seconds); for layers with no clock of their own
(:class:`~repro.exec.continuous.ContinuousExecutor`), the owner stamps
:attr:`Observer.now` before delegating.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer

#: Histogram buckets for second-valued durations (ticks, batches).
TIME_BUCKETS = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0,
)


class Observer:
    """Concrete sink for every instrumentation hook in the repo.

    Subclass and override individual ``on_*`` methods to customize;
    the default implementation records spans/events on well-known
    tracks and updates a fixed metric vocabulary (all names prefixed
    ``repro_``).
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        #: Timestamp stamped by the owning layer before delegating to a
        #: clock-less layer (the continuous executor).
        self.now = 0.0
        m = self.metrics
        self._ticks = m.counter(
            "repro_ticks_total",
            "Batched kernel dispatches (one per denoising iteration)",
            labels=("phase",),
        )
        self._tick_seconds = m.histogram(
            "repro_tick_seconds",
            "Latency of one continuous-batch tick",
            buckets=TIME_BUCKETS,
        )
        self._batch_fill = m.histogram(
            "repro_batch_fill",
            "Requests sharing one tick or micro-batch",
        )
        self._membership = m.counter(
            "repro_membership_events_total",
            "Continuous-batch membership edits by kind",
            labels=("kind",),
        )
        self._queue_depth = m.gauge(
            "repro_queue_depth",
            "Requests waiting in a scheduler queue",
            labels=("component",),
        )
        self._batches = m.counter(
            "repro_batches_total",
            "Micro-batches dispatched by the drain-mode server",
        )
        self._batch_seconds = m.histogram(
            "repro_batch_seconds",
            "Service latency of one micro-batch",
            buckets=TIME_BUCKETS,
        )
        self._cache = m.counter(
            "repro_cache_lookups_total",
            "ThresholdCache lookups by memo level and outcome",
            labels=("level", "outcome"),
        )
        self._requests = m.counter(
            "repro_requests_total",
            "Cluster request lifecycle transitions",
            labels=("stage",),
        )
        self._dispatches = m.counter(
            "repro_dispatches_total",
            "Batches dispatched per replica",
            labels=("replica",),
        )
        self._replica_util = m.gauge(
            "repro_replica_utilization",
            "Busy fraction per replica at end of simulation",
            labels=("replica",),
        )
        self._slo = m.counter(
            "repro_slo_events_total",
            "SLO-relevant outcomes (drops, deadline misses) by reason",
            labels=("reason",),
        )
        self._phase_seconds = m.counter(
            "repro_phase_seconds_total",
            "Priced hw-timeline seconds by phase and bound resource",
            labels=("phase", "bound"),
        )

    # ------------------------------------------------------------------
    # continuous serving (ContinuousServer / ContinuousExecutor)
    # ------------------------------------------------------------------
    def on_tick(
        self,
        start_s: float,
        end_s: float,
        batch_size: int,
        is_dense: bool,
        cursor: int,
        track: str = "serve/batch",
        **args,
    ) -> Span:
        """One denoising iteration of the live continuous batch.

        Extra keyword args (``boundary``, ``energy_j``, ``cold_s``,
        tenancy enrichments) ride into the span so downstream analysis
        is reproducible from the artifact alone.
        """
        phase = "dense" if is_dense else "sparse"
        self._ticks.inc(phase=phase)
        self._tick_seconds.observe(end_s - start_s)
        self._batch_fill.observe(batch_size)
        return self.tracer.span(
            f"tick[{phase}]", track, start_s, end_s,
            batch_size=batch_size, cursor=cursor, phase=phase, **args,
        )

    def on_membership(
        self,
        kind: str,
        ts_s: float,
        request_id: int,
        track: str = "serve/membership",
        **args,
    ) -> None:
        """A join/complete/evict/expire edit of the live index set."""
        self._membership.inc(kind=kind)
        self.tracer.event(
            kind, track, ts_s, request_id=request_id, **args,
        )

    def on_index_set_edit(
        self, size_before: int, size_after: int, rebuilt: bool
    ) -> None:
        """The executor absorbed a membership change (index-set edit).

        Timestamped from :attr:`now` — the executor has no clock; the
        owning server stamps it before delegating to ``run_tick``.
        """
        self._membership.inc(kind="index_set_edit")
        self.tracer.event(
            "index_set_edit", "exec/index_set", self.now,
            size_before=size_before, size_after=size_after,
            rebuilt=rebuilt,
        )

    def on_queue_depth(self, component: str, depth: int) -> None:
        self._queue_depth.set(depth, component=component)

    # ------------------------------------------------------------------
    # drain-mode serving (ExionServer / Scheduler)
    # ------------------------------------------------------------------
    def on_batch(
        self,
        start_s: float,
        end_s: float,
        batch_size: int,
        track: str = "serve/batch",
        **args,
    ) -> Span:
        """One micro-batch served end-to-end by the drain-mode server."""
        self._batches.inc()
        self._batch_seconds.observe(end_s - start_s)
        self._batch_fill.observe(batch_size)
        return self.tracer.span(
            "batch", track, start_s, end_s, batch_size=batch_size, **args,
        )

    def on_cache_lookup(self, level: str, hit: bool) -> None:
        self._cache.inc(level=level, outcome="hit" if hit else "miss")

    # ------------------------------------------------------------------
    # cluster simulation
    # ------------------------------------------------------------------
    def on_request_stage(
        self,
        stage: str,
        ts_s: float,
        request_id: int,
        track: str = "cluster/requests",
        **args,
    ) -> None:
        """A request lifecycle transition (queued/admitted/served/...)."""
        self._requests.inc(stage=stage)
        self.tracer.event(
            stage, track, ts_s, request_id=request_id, **args,
        )

    def on_dispatch(
        self,
        replica: str,
        start_s: float,
        end_s: float,
        batch_size: int,
        model: str,
        **args,
    ) -> Span:
        """One priced batch executing on a cluster replica."""
        self._dispatches.inc(replica=replica)
        self._batch_fill.observe(batch_size)
        return self.tracer.span(
            f"dispatch[{model}]", f"replica/{replica}", start_s, end_s,
            batch_size=batch_size, model=model, **args,
        )

    def on_replica_utilization(self, replica: str, busy_frac: float) -> None:
        self._replica_util.set(busy_frac, replica=replica)

    def on_slo_event(self, reason: str, ts_s: float, **args) -> None:
        """A drop/deadline miss the SLO accounting will charge."""
        self._slo.inc(reason=reason)
        self.tracer.event(f"slo:{reason}", "cluster/slo", ts_s, **args)

    # ------------------------------------------------------------------
    # hw timeline
    # ------------------------------------------------------------------
    def on_phase_segment(
        self,
        start_s: float,
        end_s: float,
        phase: str,
        bound: str,
        index: int,
        track: str = "hw/timeline",
        **args,
    ) -> Span:
        """One priced iteration segment of the hw timeline."""
        self._phase_seconds.inc(end_s - start_s, phase=phase, bound=bound)
        return self.tracer.span(
            f"iter[{phase}]", track, start_s, end_s,
            phase=phase, bound=bound, index=index, **args,
        )

    def observe_timeline(self, timeline, track: str = "hw/timeline") -> None:
        """Record every iteration of a priced hw Timeline as spans."""
        from repro.hw.timeline import phase_segments

        for segment in phase_segments(timeline):
            self.on_phase_segment(track=track, **segment)


__all__ = ["Observer", "TIME_BUCKETS"]
