"""Zero-dependency metrics registry: counters, gauges, histograms.

The registry is the numeric half of :mod:`repro.obs`: instrumented
layers increment **counters** (monotone totals: ticks served, cache
hits), set **gauges** (point-in-time levels: queue depth, utilization)
and observe **histograms** (distributions: batch fill, tick latency)
against named metric *families*, each of which fans out into children by
label values — the Prometheus data model, with none of the dependency.

Everything is deterministic by construction:

- snapshots iterate families by name and children by label-value tuple,
  both sorted, so two runs that performed the same updates serialize the
  same bytes;
- there are **no timestamps** anywhere — time belongs to the tracing
  half (:mod:`repro.obs.trace`), where the owning layer supplies its own
  simulated clock;
- exposition is either Prometheus text format (:meth:`MetricsRegistry.
  to_prometheus`) or canonical key-sorted JSON (:meth:`MetricsRegistry.
  to_json`), both byte-stable for a given update history.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

#: Default histogram buckets: powers of two covering batch sizes and
#: small-count distributions. Callers with latency-like values pass
#: their own buckets.
DEFAULT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

_VALID_KINDS = ("counter", "gauge", "histogram")


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"bad metric name {name!r}")
    return name


def escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    out = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, nxt))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def histogram_quantile(
    buckets: Sequence[float],
    bucket_counts: Sequence[int],
    q: float,
) -> float:
    """Deterministic nearest-rank quantile over histogram buckets.

    Returns the upper bound of the bucket containing the nearest-rank
    sample — the smallest bound ``b`` such that at least ``ceil(q * n)``
    observations are ≤ ``b``. Values that landed in the +Inf tail clamp
    to the largest finite bound (canonical JSON rejects infinities, and
    a report should never print one). Empty histograms quantile to 0.0.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(bucket_counts)
    if total == 0:
        return 0.0
    rank = max(1, -(-total * q // 1))  # ceil(total * q), at least 1
    cumulative = 0
    for bound, count in zip(buckets, bucket_counts):
        cumulative += count
        if cumulative >= rank:
            return float(bound)
    return float(buckets[-1])


class _Child:
    """One (family, label-values) series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class _HistogramChild:
    """One histogram series: bucket counts plus sum/count."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * (num_buckets + 1)  # +Inf tail
        self.sum = 0.0
        self.count = 0


class MetricFamily:
    """A named metric with a fixed label schema and typed children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if kind not in _VALID_KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = _check_name(name)
        self.kind = kind
        self.help = help_
        self.label_names = tuple(labels)
        if kind == "histogram":
            buckets = tuple(
                sorted(buckets if buckets is not None else DEFAULT_BUCKETS)
            )
            if not buckets:
                raise ValueError("histogram needs at least one bucket")
            self.buckets = buckets
        else:
            if buckets is not None:
                raise ValueError(f"{kind} metrics take no buckets")
            self.buckets = ()
        self._children: dict = {}

    # ------------------------------------------------------------------
    def _child(self, label_values: tuple):
        if len(label_values) != len(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, "
                f"got values {label_values}"
            )
        child = self._children.get(label_values)
        if child is None:
            if self.kind == "histogram":
                child = _HistogramChild(len(self.buckets))
            else:
                child = _Child()
            self._children[label_values] = child
        return child

    def _values(self, **labels) -> tuple:
        try:
            return tuple(str(labels[name]) for name in self.label_names)
        except KeyError as missing:
            raise ValueError(
                f"{self.name} requires label {missing.args[0]!r}"
            ) from None

    # ------------------------------------------------------------------
    # update API
    # ------------------------------------------------------------------
    def inc(self, amount: float = 1.0, **labels) -> None:
        if self.kind != "counter":
            raise TypeError(f"{self.name} is a {self.kind}, not a counter")
        if amount < 0:
            raise ValueError("counters only go up")
        self._child(self._values(**labels)).value += amount

    def set(self, value: float, **labels) -> None:
        if self.kind != "gauge":
            raise TypeError(f"{self.name} is a {self.kind}, not a gauge")
        self._child(self._values(**labels)).value = float(value)

    def observe(self, value: float, **labels) -> None:
        if self.kind != "histogram":
            raise TypeError(f"{self.name} is a {self.kind}, not a histogram")
        child = self._child(self._values(**labels))
        index = len(self.buckets)  # +Inf by default
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        child.bucket_counts[index] += 1
        child.sum += float(value)
        child.count += 1

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def value(self, **labels) -> float:
        """Current value of one counter/gauge child (0.0 if never touched)."""
        if self.kind == "histogram":
            raise TypeError("histograms expose .snapshot(), not .value()")
        child = self._children.get(self._values(**labels))
        return 0.0 if child is None else child.value

    def quantile(self, q: float, **labels) -> float:
        """Nearest-rank quantile of one histogram child (0.0 if empty)."""
        if self.kind != "histogram":
            raise TypeError(f"{self.name} is a {self.kind}, not a histogram")
        child = self._children.get(self._values(**labels))
        if child is None:
            return 0.0
        return histogram_quantile(self.buckets, child.bucket_counts, q)

    def children(self) -> list:
        """(label_values, child) pairs in deterministic sorted order."""
        return sorted(self._children.items(), key=lambda item: item[0])

    def snapshot(self) -> dict:
        """JSON-serializable view of the whole family, children sorted."""
        series = []
        for values, child in self.children():
            labels = dict(zip(self.label_names, values))
            if self.kind == "histogram":
                series.append({
                    "labels": labels,
                    "buckets": {
                        **{
                            repr(bound): count
                            for bound, count in zip(
                                self.buckets, child.bucket_counts
                            )
                        },
                        "+Inf": child.bucket_counts[-1],
                    },
                    "sum": child.sum,
                    "count": child.count,
                })
            else:
                series.append({"labels": labels, "value": child.value})
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "series": series,
        }


class MetricsRegistry:
    """Deterministic registry of metric families.

    Re-registering a name returns the existing family (so independent
    layers can share one registry without coordination), but only if the
    kind and label schema agree — a mismatch is a programming error and
    raises immediately.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    # ------------------------------------------------------------------
    def _register(
        self,
        name: str,
        kind: str,
        help_: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}{family.label_names}"
                )
            return family
        family = MetricFamily(name, kind, help_, labels, buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help_: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "counter", help_, labels)

    def gauge(
        self, name: str, help_: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "gauge", help_, labels)

    def histogram(
        self,
        name: str,
        help_: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        return self._register(name, "histogram", help_, labels, buckets)

    def get(self, name: str) -> MetricFamily:
        return self._families[name]

    def quantile(self, name: str, q: float, **labels) -> float:
        """Nearest-rank quantile of a registered histogram's child."""
        return self._families[name].quantile(q, **labels)

    def families(self) -> list:
        """Every family, sorted by name (the deterministic snapshot order)."""
        return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Canonical JSON-serializable document of every family."""
        return {
            "families": [family.snapshot() for family in self.families()]
        }

    def to_json(self) -> str:
        """Canonical JSON: key-sorted, fixed separators, trailing newline."""
        return (
            json.dumps(
                self.snapshot(),
                sort_keys=True,
                separators=(",", ":"),
                allow_nan=False,
            )
            + "\n"
        )

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (families sorted by name)."""
        lines = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in family.children():
                labels = ",".join(
                    f'{k}="{escape_label_value(v)}"'
                    for k, v in zip(family.label_names, values)
                )
                suffix = "{" + labels + "}" if labels else ""
                if family.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(
                        family.buckets, child.bucket_counts
                    ):
                        cumulative += count
                        le = (
                            labels + "," if labels else ""
                        ) + f'le="{bound:g}"'
                        lines.append(
                            f"{family.name}_bucket{{{le}}} {cumulative}"
                        )
                    cumulative += child.bucket_counts[-1]
                    le = (labels + "," if labels else "") + 'le="+Inf"'
                    lines.append(
                        f"{family.name}_bucket{{{le}}} {cumulative}"
                    )
                    lines.append(
                        f"{family.name}_sum{suffix} {child.sum:g}"
                    )
                    lines.append(
                        f"{family.name}_count{suffix} {child.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{suffix} {child.value:g}"
                    )
        return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict:
    """Parse Prometheus text exposition back into samples.

    The inverse of :meth:`MetricsRegistry.to_prometheus`, used by the
    round-trip test to prove exposition is lossless: returns
    ``{metric_name: {"type": kind, "samples": [(labels_dict, value)]}}``
    where histogram bucket/sum/count series appear under their full
    sample names (``*_bucket``, ``*_sum``, ``*_count``).
    """
    out: dict = {}
    declared_type: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            declared_type[name] = kind
            continue
        if line.startswith("#"):
            continue
        name, labels, value = _parse_sample(line)
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = name[: -len(suffix)] if name.endswith(suffix) else None
            if trimmed in declared_type:
                base = trimmed
                break
        doc = out.setdefault(
            name, {"type": declared_type.get(base, ""), "samples": []}
        )
        doc["samples"].append((labels, value))
    return out


def _parse_sample(line: str):
    """One exposition line -> (name, labels dict, float value)."""
    if "{" in line:
        name, _, rest = line.partition("{")
        body, _, tail = rest.rpartition("}")
        labels = _parse_labels(body)
        value = float(tail.strip())
        return name, labels, value
    name, _, tail = line.partition(" ")
    return name, {}, float(tail.strip())


def _parse_labels(body: str) -> dict:
    labels: dict = {}
    index = 0
    while index < len(body):
        eq = body.index("=", index)
        key = body[index:eq].lstrip(",").strip()
        assert body[eq + 1] == '"', f"malformed label in {body!r}"
        cursor = eq + 2
        raw = []
        while body[cursor] != '"':
            if body[cursor] == "\\":
                raw.append(body[cursor:cursor + 2])
                cursor += 2
            else:
                raw.append(body[cursor])
                cursor += 1
        labels[key] = unescape_label_value("".join(raw))
        index = cursor + 1
    return labels


__all__ = [
    "DEFAULT_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "escape_label_value",
    "histogram_quantile",
    "parse_prometheus",
    "unescape_label_value",
]
