"""Command-line interface for the EXION reproduction.

Usage::

    python -m repro --version                      # single-sourced version
    python -m repro models                         # list benchmark models
    python -m repro generate --model dit --seed 1  # run EXION inference
    python -m repro serve --model dit --requests 16 --batch-size 8
    python -m repro cluster --replicas 4 --router jsq --rate 200
    python -m repro explore --strategy random --budget 16 --workers 4
    python -m repro simulate --model dit           # HW sim vs GPU baselines
    python -m repro program --model dit --json     # inspect the lowered IR
    python -m repro opcount                        # Fig. 4 breakdown
    python -m repro conmerge --model stable_diffusion
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import format_table, percent


def _cmd_models(args: argparse.Namespace) -> int:
    from repro.workloads.specs import BENCHMARK_ORDER, EXTENDED_ORDER, get_spec

    def rows_for(names):
        rows = []
        for name in names:
            spec = get_spec(name)
            rows.append(
                [
                    name,
                    spec.task,
                    f"type {spec.network_type}",
                    spec.total_iterations,
                    f"N={spec.sparse_iters_n}",
                    percent(spec.target_inter_sparsity, 0),
                    percent(spec.target_intra_sparsity, 0),
                ]
            )
        return rows

    headers = ["name", "task", "network", "iters", "FFN-Reuse",
               "inter sparsity", "intra sparsity"]
    print(format_table(
        headers,
        rows_for(BENCHMARK_ORDER),
        title="Benchmark models (paper Table I)",
    ))
    print(format_table(
        headers,
        rows_for(EXTENDED_ORDER),
        title="Extended models (lowering-pipeline scenarios)",
    ))
    return 0


def _cmd_program(args: argparse.Namespace) -> int:
    from repro.core.config import ExionConfig
    from repro.program import lower_plan, plan_digest, plan_json
    from repro.workloads.specs import get_spec

    spec = get_spec(args.model)
    config = ExionConfig.for_model(args.model).ablation(args.ablation)
    plan = lower_plan(
        spec,
        config=config,
        iterations=args.iterations,
        batch=args.batch,
    )
    if args.compile:
        return _print_compiled_plan(plan, as_json=args.json)
    if args.json:
        print(plan_json(plan), end="")
        return 0

    program = plan.program
    rows = [
        [op.name, op.kind.value, op.r, op.k, op.c, op.count,
         f"{op.macs:.3e}", op.weight_bytes]
        for op in program.ops
    ]
    print(format_table(
        ["op", "kind", "r", "k", "c", "count", "MACs", "weight bytes"],
        rows,
        title=(f"IterationProgram {program.model} "
               f"({program.scale} scale, depth {program.depth})"),
    ))
    by_kind = program.macs_by_kind()
    total = max(program.total_macs, 1)
    print(f"phase plan: {plan.iterations} iterations "
          f"({plan.dense_iterations} dense / {plan.sparse_iterations} "
          f"sparse, N={plan.sparse_iters_n}), batch={plan.batch}, "
          f"ablation={args.ablation}")
    print("MACs/iter "
          + "  ".join(f"{k}={percent(v / total)}" for k, v in by_kind.items())
          + f"  total={program.total_macs:.3e}")
    print(f"weights/iter {program.weight_bytes / 1e6:.2f} MB (INT12 packed)")
    print(f"plan digest {plan_digest(plan)}")
    return 0


def _print_compiled_plan(plan, as_json: bool = False) -> int:
    """Render ``compile_plan(plan).index_set_stats()`` (``--compile``)."""
    import json as _json

    from repro.program import compile_plan

    compiled = compile_plan(plan)
    stats = compiled.index_set_stats()
    if as_json:
        print(_json.dumps(stats, indent=2, sort_keys=True))
        return 0

    shown = compiled.phases[:12]
    rows = [[p.index, p.dense_step,
             " ".join(str(s) for s in p.sparse_steps) or "-"]
            for p in shown]
    if len(compiled.phases) > len(shown):
        rows.append(["...", f"({len(compiled.phases) - len(shown)} more)",
                     ""])
    print(format_table(
        ["phase", "dense step", "sparse steps"],
        rows,
        title=(f"CompiledPlan {stats['model']} ({stats['scale']} scale): "
               f"{stats['iterations']} iterations -> "
               f"{stats['phases']} phases, "
               f"{stats['tile_rows']}x{stats['tile_width']} tiles"),
    ))
    ffn = stats.get("ffn")
    if ffn is not None:
        print("ffn index sets: "
              f"mask {ffn['mask_shape'][0]}x{ffn['mask_shape'][1]} "
              f"x{ffn['masks_per_phase']}/phase, "
              f"expected gather {ffn['expected_gather_size']} "
              f"({percent(1.0 - ffn['expected_sparsity'])} kept), "
              f"{ffn['tiles_per_mask']} tiles/mask, "
              f"amortized over {ffn['sparse_steps_amortizing']} "
              "sparse steps")
    attn = stats.get("attention")
    if attn is not None:
        shape = "x".join(str(d) for d in attn["score_shape"])
        print("attention index sets: "
              f"scores {shape}, keep {attn['keep_per_row']}/row "
              f"(expected keep {attn['expected_keep_size']}), "
              f"{attn['cached_weight_operands']} cached weight operands")
    if ffn is None and attn is None:
        print("base ablation: no sparse index sets to precompute")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.core.config import ExionConfig
    from repro.core.pipeline import ExionPipeline
    from repro.models.zoo import build_model
    from repro.workloads.metrics import psnr

    model = build_model(args.model, seed=args.model_seed,
                        total_iterations=args.iterations)
    config = ExionConfig.for_model(args.model).ablation(args.ablation)
    pipeline = ExionPipeline(model, config)
    kwargs = {"seed": args.seed}
    if args.class_label is not None:
        kwargs["class_label"] = args.class_label
    else:
        kwargs["prompt"] = args.prompt

    result = pipeline.generate(**kwargs)
    stats = result.stats
    print(f"model={args.model} ablation={args.ablation} seed={args.seed}")
    print(f"sample shape {result.sample.shape}, "
          f"range [{result.sample.min():.3f}, {result.sample.max():.3f}]")
    summary = stats.summary()
    for key, value in summary.items():
        formatted = percent(value) if isinstance(value, float) else value
        print(f"  {key:28s} {formatted}")
    if args.compare_vanilla:
        vanilla = pipeline.generate_vanilla(**kwargs)
        print(f"  PSNR vs vanilla              "
              f"{psnr(vanilla.sample, result.sample):.2f} dB")
    return 0


def _write_obs_outputs(
    observer, metrics_out=None, trace_out=None, events_out=None
) -> None:
    """Write the observer's metrics / trace / event-log files, if asked.

    ``metrics_out`` picks its format by extension: ``.json`` gets the
    canonical registry snapshot, anything else the Prometheus text
    exposition. The Chrome trace is schema-validated before writing so a
    broken exporter fails the command instead of producing a file
    Perfetto rejects.
    """
    from repro.obs import (
        chrome_trace,
        chrome_trace_json,
        events_jsonl,
        validate_chrome_trace,
    )

    if trace_out is not None:
        count = validate_chrome_trace(chrome_trace(observer.tracer))
        with open(trace_out, "w", encoding="utf-8") as fh:
            fh.write(chrome_trace_json(observer.tracer))
        print(f"wrote {trace_out} ({count} trace events; "
              "open in Perfetto or chrome://tracing)")
    if metrics_out is not None:
        if str(metrics_out).endswith(".json"):
            text = observer.metrics.to_json()
        else:
            text = observer.metrics.to_prometheus()
        with open(metrics_out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {metrics_out}")
    if events_out is not None:
        with open(events_out, "w", encoding="utf-8") as fh:
            fh.write(events_jsonl(observer.tracer))
        print(f"wrote {events_out}")


def _parse_tenant_weights(spec):
    """``"alice=2,bob=1"`` (or bare names, weight 1.0) -> weight dict."""
    if not spec:
        return None
    weights = {}
    for item in spec.split(","):
        name, _, value = item.strip().partition("=")
        if not name:
            raise SystemExit(f"bad --tenants entry {item!r}")
        weights[name] = float(value) if value else 1.0
    return weights


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.core.config import ExionConfig
    from repro.serve import BatchingPolicy, ExionServer

    config = ExionConfig.for_model(args.model).ablation(args.ablation)
    observer = None
    if args.metrics_out or args.trace_out:
        from repro.obs import Observer

        observer = Observer()
    # --simulate ACCEL: the server reads a simulated clock and prices
    # batches/ticks with the hardware latency model, so the report (and
    # any --json/--trace-out/--metrics-out output) is byte-identical
    # across runs and machines. Generation itself still executes.
    clock = None
    if args.simulate is not None:
        from repro.cluster.replica import ServiceTimeModel, SimClock
        from repro.obs.scenario import make_service_time, make_tick_time

        clock = SimClock()
        service_model = ServiceTimeModel(
            args.simulate, iterations=args.iterations
        )
    if args.continuous:
        from repro.serve import ContinuousPolicy, ContinuousServer

        weights = _parse_tenant_weights(args.tenants)
        server = ContinuousServer(
            args.model,
            config=config,
            policy=ContinuousPolicy(
                max_batch_size=args.batch_size,
                quantum=args.quantum,
                preempt=not args.no_preempt,
                aging_s=args.aging,
                timeout_s=args.timeout,
            ),
            tenant_weights=weights,
            model_seed=args.model_seed,
            total_iterations=args.iterations,
            calibrate=args.calibrate,
            calibration_seed=args.calibration_seed,
            observer=observer,
            **(
                {}
                if clock is None
                else dict(
                    clock=clock,
                    tick_time=make_tick_time(
                        service_model, args.model, args.ablation
                    ),
                )
            ),
        )
        tenants = sorted(weights) if weights else ["default"]
        now_fn = clock if clock is not None else time.perf_counter
        for i in range(args.requests):
            deadline = (
                now_fn() + args.deadline
                if args.deadline is not None else None
            )
            server.submit(
                seed=args.seed + i,
                prompt=args.prompt,
                class_label=args.class_label,
                tenant=tenants[i % len(tenants)],
                deadline_s=deadline,
            )
        if clock is not None:
            from repro.obs.scenario import drain_simulated

            results = drain_simulated(server, clock)
        else:
            results = server.run_until_drained()
    else:
        server = ExionServer(
            args.model,
            config=config,
            policy=BatchingPolicy(max_batch_size=args.batch_size,
                                  max_wait_s=args.max_wait),
            model_seed=args.model_seed,
            total_iterations=args.iterations,
            calibrate=args.calibrate,
            calibration_seed=args.calibration_seed,
            observer=observer,
            **(
                {}
                if clock is None
                else dict(
                    clock=clock,
                    service_time=make_service_time(
                        service_model, args.model, args.ablation
                    ),
                )
            ),
        )
        for i in range(args.requests):
            server.submit(
                seed=args.seed + i,
                prompt=args.prompt,
                class_label=args.class_label,
            )
        if clock is not None:
            from repro.obs.scenario import drain_simulated

            results = drain_simulated(server, clock)
        else:
            # Serve through step() so the batching policy governs
            # dispatch: full batches go immediately, a partial tail
            # waits --max-wait.
            results = []
            while True:
                served = server.step()
                if served:
                    results.extend(served)
                elif len(server.queue) == 0:
                    break
                else:
                    time.sleep(min(0.05, max(args.max_wait, 0.001)))
            results.sort(key=lambda r: r.request_id)
    report = server.report()

    rows = [
        [r.request_id, r.request.seed, r.request.tenant, r.batch_size,
         f"{r.result.stats.ffn_output_sparsity * 100:.1f}%",
         f"{r.result.stats.attention_output_sparsity * 100:.1f}%"]
        for r in results
    ]
    print(format_table(
        ["request", "seed", "tenant", "batch", "FFN sparsity",
         "attn sparsity"],
        rows,
        title=f"Served {args.model} ablation={args.ablation}"
              + (" (continuous)" if args.continuous else ""),
    ))
    if not args.continuous:
        print(f"batches={report.batches_served} "
              f"mean_batch={report.mean_batch_size:.2f} "
              f"throughput={report.samples_per_s:.2f} samples/s")
    else:
        # "batches" are per-iteration ticks in continuous mode, so the
        # drain-style requests/batch ratio would read as nonsense here;
        # occupancy is the meaningful utilization figure.
        print(f"throughput={report.samples_per_s:.2f} samples/s")
        print(f"ticks={report.ticks} "
              f"mean_occupancy={report.mean_occupancy:.2f} "
              f"joins={report.joins} preemptions={report.preemptions} "
              f"expired={report.requests_expired}")

    if args.json is not None:
        from repro.program.encode import canonical_json

        doc = {
            "model": args.model,
            "ablation": args.ablation,
            "continuous": args.continuous,
            "simulate": args.simulate,
            "requests_submitted": args.requests,
            "summary": report.summary(),
            "requests": [
                {
                    "request_id": r.request_id,
                    "seed": r.request.seed,
                    "tenant": r.request.tenant,
                    "priority": int(r.request.priority),
                    "batch_size": r.batch_size,
                    "wait_s": r.wait_s,
                    "service_s": r.service_s,
                    "ffn_output_sparsity":
                        r.result.stats.ffn_output_sparsity,
                    "attention_output_sparsity":
                        r.result.stats.attention_output_sparsity,
                }
                for r in results
            ],
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(canonical_json(doc))
        print(f"wrote {args.json}")
    if observer is not None:
        _write_obs_outputs(
            observer, metrics_out=args.metrics_out,
            trace_out=args.trace_out,
        )

    if args.compare_sequential and args.requests > 0:
        from repro.core.pipeline import ExionPipeline

        # Reuse the server's cached model and (with --calibrate) threshold
        # table so the comparison isolates batching: both paths run the
        # same computation, only the loop structure differs.
        model = server.cache.model(args.model, seed=args.model_seed,
                                   total_iterations=args.iterations)
        table = None
        if args.calibrate and config.enable_ffn_reuse:
            table = server.cache.table(
                args.model, config, model_seed=args.model_seed,
                total_iterations=args.iterations,
                calibration_seed=args.calibration_seed,
            )
        pipeline = ExionPipeline(model, config, threshold_table=table)
        start = time.perf_counter()
        for i in range(args.requests):
            pipeline.generate(seed=args.seed + i, prompt=args.prompt,
                              class_label=args.class_label)
        sequential_s = time.perf_counter() - start
        seq_rate = args.requests / sequential_s
        print(f"sequential  {seq_rate:.2f} samples/s")
        print(f"speedup     {report.samples_per_s / seq_rate:.2f}x")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import (
        DiurnalProcess,
        MMPPProcess,
        PoissonProcess,
        SLOPolicy,
        WorkloadMix,
        build_replicas,
        load_trace,
        make_router,
        save_trace,
        simulate_cluster,
        synthesize_trace,
    )
    from repro.serve import BatchingPolicy

    if args.trace is not None:
        requests = load_trace(args.trace)
        arrival_doc = {"process": "trace_file", "path": str(args.trace)}
    else:
        if args.arrival == "poisson":
            process = PoissonProcess(rate_rps=args.rate)
        elif args.arrival == "mmpp":
            process = MMPPProcess(
                rate_low_rps=args.rate / 4.0,
                rate_high_rps=args.rate,
                mean_dwell_s=args.dwell,
            )
        else:  # diurnal
            process = DiurnalProcess(
                base_rate_rps=args.rate / 4.0,
                peak_rate_rps=args.rate,
                period_s=args.period,
            )
        mix = WorkloadMix(
            models=tuple(args.models.split(",")), ablation=args.ablation
        )
        requests = synthesize_trace(process, args.requests, mix=mix,
                                    rng=args.seed)
        arrival_doc = process.describe()
    if args.save_trace is not None:
        save_trace(args.save_trace, requests)

    slo = SLOPolicy(
        latency_target_s=args.slo_target,
        timeout_s=args.timeout,
        max_queue_depth=args.max_queue_depth,
    )
    if args.continuous:
        from repro.serve import ContinuousPolicy

        policy = ContinuousPolicy(
            max_batch_size=args.batch_size,
            quantum=args.quantum,
            preempt=not args.no_preempt,
            aging_s=args.aging,
        )
    else:
        policy = BatchingPolicy(max_batch_size=args.batch_size,
                                max_wait_s=args.max_wait)
    replicas = build_replicas(
        args.replicas,
        accelerator=args.accelerator,
        policy=policy,
        execute=args.execute,
        execute_iterations=args.iterations,
        continuous=args.continuous,
        tenant_weights=_parse_tenant_weights(args.tenants),
        # Price the same (possibly truncated) schedule that is executed,
        # so reported service times match the claimed samples.
        iterations=args.iterations,
    )
    observer = None
    if args.metrics_out or args.trace_out:
        from repro.obs import Observer

        # Cluster time is simulated end to end, so the trace and
        # metrics written below are byte-deterministic per (seed, fleet).
        observer = Observer()
    report = simulate_cluster(
        requests,
        replicas=replicas,
        router=make_router(args.router),
        slo=slo,
        scenario={"arrival": arrival_doc, "seed": args.seed},
        observer=observer,
    )
    print(report.render())
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"wrote {args.json}")
    if observer is not None:
        _write_obs_outputs(
            observer, metrics_out=args.metrics_out,
            trace_out=args.trace_out,
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import Observer, run_trace_scenario

    observer = Observer()
    summary = run_trace_scenario(
        model=args.model,
        ablation=args.ablation,
        accelerator=args.accelerator,
        continuous=args.continuous,
        requests=args.requests,
        iterations=args.iterations,
        batch_size=args.batch_size,
        seed=args.seed,
        observer=observer,
    )
    _write_obs_outputs(
        observer,
        metrics_out=args.metrics_out,
        trace_out=args.out,
        events_out=args.events_out,
    )
    for key, value in summary.items():
        print(f"  {key:22s} {value}")
    return 0


def _parse_slo_flags(specs):
    """``--slo name:latency:<secs>:<target>`` flags -> SLOSpec list."""
    from repro.obs.analyze import parse_slo_spec

    if not specs:
        return None
    try:
        return [parse_slo_spec(spec) for spec in specs]
    except ValueError as exc:
        raise SystemExit(f"bad --slo: {exc}")


def _obs_build_report(args):
    """Build an :class:`AnalysisReport` for ``obs analyze``/``report``.

    With ``--input`` the trace artifact (Chrome trace JSON or event
    JSONL) is loaded from disk; otherwise the deterministic trace
    scenario runs inline, and ``--trace-out`` additionally exports its
    Chrome trace with the computed SLO alert instants appended — so the
    timeline viewer shows exactly the alerts the analyzer reported.
    """
    from repro.obs.analyze import alert_events, analyze_path, analyze_tracer

    slos = _parse_slo_flags(args.slo)
    if args.input is not None:
        return analyze_path(args.input, slos=slos)

    from repro.obs import Observer, run_trace_scenario

    observer = Observer()
    run_trace_scenario(
        model=args.model,
        ablation=args.ablation,
        accelerator=args.accelerator,
        continuous=args.continuous,
        requests=args.requests,
        iterations=args.iterations,
        batch_size=args.batch_size,
        seed=args.seed,
        observer=observer,
        cold_start=args.cold_start,
    )
    report = analyze_tracer(
        observer.tracer, slos=slos,
        meta={"model": args.model, "scenario": True, "seed": args.seed},
    )
    if getattr(args, "trace_out", None):
        for name, ts_s, payload in alert_events(report.slo):
            observer.tracer.event(name, "obs/slo", ts_s, **payload)
        _write_obs_outputs(observer, trace_out=args.trace_out)
    return report


def _obs_print_summary(report) -> None:
    attribution = report.attribution
    fleet = attribution.fleet_components()
    latency = attribution.latency_summary()
    rows = [
        [key.removesuffix("_ns"), f"{value / 1e6:.3f}"]
        for key, value in fleet.items()
    ]
    print(format_table(
        ["component", "ms"], rows,
        title=f"Fleet attribution ({attribution.mode} mode)",
    ))
    alerts = sum(len(doc["alerts"]) for doc in report.slo.values())
    print(f"requests {len(attribution.requests)}  "
          f"served {latency['count']}  "
          f"p95 {latency['p95_ns'] / 1e6:.3f} ms  "
          f"busy {attribution.busy_ns / 1e9:.6f} s  "
          f"critical path {report.path.total_ns / 1e9:.6f} s  "
          f"slo alerts {alerts}")
    residual = max(
        attribution.max_request_residual_ns(),
        attribution.tenant_residual_ns(),
    )
    print(f"conservation residual {residual} ns")


def _cmd_obs_analyze(args: argparse.Namespace) -> int:
    from repro.obs.analyze import render_html

    report = _obs_build_report(args)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(report.to_json())
    print(f"wrote {args.out}")
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_html(report))
        print(f"wrote {args.html}")
    _obs_print_summary(report)
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.analyze import render_html

    report = _obs_build_report(args)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(render_html(report, title=args.title))
    print(f"wrote {args.out} (open in any browser; no assets needed)")
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.analyze import diff_analyses

    with open(args.base, encoding="utf-8") as fh:
        base = _json.load(fh)
    with open(args.current, encoding="utf-8") as fh:
        current = _json.load(fh)
    diff = diff_analyses(base, current, tolerance=args.tolerance)

    for kind in ("regressions", "improvements"):
        entries = diff[kind]
        if not entries:
            continue
        print(format_table(
            ["metric", "base", "current", "delta"],
            [[e["metric"], e["base"], e["current"], e["delta"]]
             for e in entries],
            title=kind,
        ))
    for title, deltas in (
        ("component deltas (ns)", diff["attribution"]["components_ns"]),
        ("tenant tick deltas (ns)", diff["attribution"]["tenants_tick_ns"]),
    ):
        if deltas:
            print(format_table(
                ["name", "delta"], list(deltas.items()), title=title,
            ))
    print(f"{len(diff['regressions'])} regressions, "
          f"{len(diff['improvements'])} improvements, "
          f"{diff['unchanged']} unchanged")
    return 1 if diff["regressions"] else 0


def _parse_set_expression(expression: str) -> tuple:
    """Parse one ``--set DIM=V1[,V2...]`` into ``(name, values)``."""
    import json as _json

    if "=" not in expression:
        raise SystemExit(
            f"--set expects DIM=V1[,V2...], got {expression!r}"
        )
    name, _, raw = expression.partition("=")
    values = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            values.append(_json.loads(token))
        except ValueError:
            values.append(token)
    if not values:
        raise SystemExit(f"--set {name}= needs at least one value")
    return name.strip(), values


def _cmd_explore(args: argparse.Namespace) -> int:
    import json as _json

    from repro.explore import (
        ExploreRunner,
        PointEvaluator,
        SearchSpace,
        cluster_space,
        default_space,
        make_strategy,
    )

    if args.space is not None:
        with open(args.space, "r", encoding="utf-8") as fh:
            space = SearchSpace.from_dict(_json.load(fh))
    elif args.cluster:
        space = cluster_space(args.model)
    else:
        space = default_space(args.model)
    for expression in args.set or []:
        name, values = _parse_set_expression(expression)
        space = space.restrict(name, values)

    if args.objectives is not None:
        objectives = tuple(
            t.strip() for t in args.objectives.split(",") if t.strip()
        )
    elif args.cluster:
        objectives = ("samples_per_s", "slo_attainment", "energy_j")
    else:
        objectives = ("latency_s", "energy_j", "accuracy_psnr_db")

    if args.strategy == "grid":
        strategy = make_strategy("grid", levels=args.grid_levels)
    elif args.strategy == "random":
        strategy = make_strategy("random", budget=args.budget)
    else:
        fidelities = tuple(
            int(t) for t in args.halving_fidelities.split(",") if t.strip()
        )
        # Unless the user picked one, promote on the first objective of
        # the run (latency_s in the default set) so --cluster and custom
        # --objectives lists keep working.
        rank_by = args.rank_by
        if rank_by is None:
            rank_by = "latency_s" if "latency_s" in objectives else (
                objectives[0]
            )
        strategy = make_strategy(
            "halving", budget=args.budget, eta=args.halving_eta,
            fidelities=fidelities, rank_by=rank_by,
        )

    evaluator = PointEvaluator(
        objectives=objectives,
        model=args.model,
        iterations=args.iterations,
        base_seed=args.seed,
    )
    runner = ExploreRunner(
        space,
        strategy,
        evaluator,
        workers=args.workers,
        cache_dir=args.cache_dir,
        seed=args.seed,
    )
    report = runner.run()
    print(report.render())
    stats = runner.stats
    print(
        f"evaluated={stats.evaluated} cache_hits={stats.cache_hits} "
        f"cache_misses={stats.cache_misses} "
        f"(hit rate {stats.hit_rate * 100:.1f}%) workers={stats.workers}"
    )
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"wrote {args.json}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.baselines.gpu import GPUModel
    from repro.baselines.specs import EDGE_GPU, SERVER_GPU
    from repro.hw.accelerator import ExionAccelerator
    from repro.hw.profile import estimate_profile
    from repro.workloads.specs import get_spec

    spec = get_spec(args.model)
    profile = estimate_profile(spec, seed=0)
    accelerators = {
        "exion4": ExionAccelerator.exion4,
        "exion24": ExionAccelerator.exion24,
        "exion42": ExionAccelerator.exion42,
    }
    acc = accelerators[args.accelerator]()
    report = acc.simulate(spec, profile, batch=args.batch)
    gpu_spec = EDGE_GPU if args.accelerator == "exion4" else SERVER_GPU
    gpu = GPUModel(gpu_spec).simulate(spec, batch=args.batch)

    rows = [
        [gpu.gpu, f"{gpu.latency_s * 1e3:.3f} ms", f"{gpu.energy_j:.4f} J",
         f"{gpu.tops_per_watt:.4f}"],
        [report.accelerator, f"{report.latency_s * 1e3:.3f} ms",
         f"{report.energy_j:.4f} J", f"{report.tops_per_watt:.4f}"],
    ]
    print(format_table(
        ["device", "latency", "energy", "TOPS/W"],
        rows,
        title=f"{spec.display_name}, batch={args.batch}",
    ))
    print(f"speedup {gpu.latency_s / report.latency_s:.1f}x, "
          f"efficiency gain "
          f"{report.tops_per_watt / gpu.tops_per_watt:.1f}x")
    return 0


def _cmd_opcount(args: argparse.Namespace) -> int:
    from repro.analysis.opcount import operation_breakdown_table

    rows = operation_breakdown_table()
    print(format_table(
        ["model", "ops/iter", "qkv", "attention", "ffn", "etc"],
        [
            [
                r["model"],
                f"{r['total_ops']:.2e}",
                percent(r["qkv_share"]),
                percent(r["attention_share"]),
                percent(r["ffn_share"]),
                percent(r["etc_share"]),
            ]
            for r in rows
        ],
        title="Operation breakdown per iteration (paper Fig. 4)",
    ))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_seconds
    from repro.bench import (
        compare_results,
        discover,
        format_report,
        load_results,
        run_benches,
    )

    if args.compare:
        baseline, current = args.compare
        report = compare_results(
            load_results(baseline), load_results(current),
            latency_tolerance=args.latency_tol,
            latency_min_abs_s=args.latency_min_abs,
            strict=args.strict,
        )
        print(format_report(report))
        return report.exit_code()

    registry = discover(args.benchmarks_dir)
    if args.list:
        rows = [
            [entry.name, ", ".join(entry.tags), entry.module]
            for name in registry.names()
            for entry in [registry.get(name)]
        ]
        print(format_table(
            ["bench", "tags", "module"], rows,
            title=f"Registered benches ({len(registry)})",
        ))
        return 0

    if not args.run:
        print("nothing to do: pass --list, --run, or --compare",
              file=sys.stderr)
        return 2

    results = run_benches(
        args.run, out_dir=args.out, registry=registry,
        progress=print if args.verbose else None,
    )
    rows = [
        [name, len(result.metrics), len(result.series),
         format_seconds(result.timing["wall_s"])]
        for name, result in sorted(results.items())
    ]
    print(format_table(
        ["bench", "metrics", "series", "wall"], rows,
        title=f"Ran {len(results)} benches -> {args.out}",
    ))
    if args.show:
        for name, result in sorted(results.items()):
            print(f"\n=== {name} ===")
            print(result.render())
    return 0


def _cmd_conmerge(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.conmerge.cvg import conmerge_tiled
    from repro.workloads.generator import ffn_output_bitmask
    from repro.workloads.specs import get_spec

    spec = get_spec(args.model)
    mask = ffn_output_bitmask(
        min(spec.paper_tokens, 128),
        min(spec.paper_ffn_mult * spec.paper_dim, 1024),
        spec.target_inter_sparsity,
        rng=np.random.default_rng(args.seed),
    )
    result = conmerge_tiled(mask)
    print(f"{spec.display_name}: {mask.rows}x{mask.cols} mask at "
          f"{percent(mask.sparsity)} sparsity")
    print(f"  condensing : {percent(result.condense_ratio)} columns remain")
    print(f"  + merging  : {percent(result.remaining_column_ratio)} "
          f"columns remain across {result.num_blocks} tile blocks")
    print(f"  utilization: {percent(result.utilization)} of DPUs active")
    print(f"  CVG cycles : {result.cycles}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro._version import __version__

    parser = argparse.ArgumentParser(
        prog="repro", description="EXION (HPCA 2025) reproduction CLI"
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}",
        help="print the package version (single-sourced from pyproject)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list benchmark models").set_defaults(
        func=_cmd_models
    )

    gen = sub.add_parser("generate", help="run EXION inference")
    gen.add_argument("--model", default="dit")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--model-seed", type=int, default=0)
    gen.add_argument("--iterations", type=int, default=None)
    gen.add_argument("--prompt", default="a corgi surfing a wave")
    gen.add_argument("--class-label", type=int, default=None)
    gen.add_argument("--ablation", default="all",
                     choices=["base", "ep", "ffnr", "all"])
    gen.add_argument("--compare-vanilla", action="store_true")
    gen.set_defaults(func=_cmd_generate)

    srv = sub.add_parser("serve", help="batched multi-request serving")
    srv.add_argument("--model", default="dit")
    srv.add_argument("--requests", type=int, default=8)
    srv.add_argument("--batch-size", type=int, default=8)
    srv.add_argument("--max-wait", type=float, default=0.0)
    srv.add_argument("--seed", type=int, default=0,
                     help="first request seed; request i uses seed + i")
    srv.add_argument("--model-seed", type=int, default=0,
                     help="weight-initialization seed of the served model")
    srv.add_argument("--calibration-seed", type=int, default=0,
                     help="seed of the offline threshold calibration run")
    srv.add_argument("--iterations", type=int, default=None)
    srv.add_argument("--prompt", default=None)
    srv.add_argument("--class-label", type=int, default=None)
    srv.add_argument("--ablation", default="all",
                     choices=["base", "ep", "ffnr", "all"])
    srv.add_argument("--calibrate", action="store_true",
                     help="use an offline-calibrated threshold table")
    srv.add_argument("--compare-sequential", action="store_true")
    srv.add_argument("--continuous", action="store_true",
                     help="iteration-level continuous batching: requests "
                          "join/leave the live batch at dense-phase "
                          "boundaries instead of drain-and-refill")
    srv.add_argument("--quantum", type=float, default=1.0,
                     help="fair-queuing deficit credit per round "
                          "(continuous mode)")
    srv.add_argument("--aging", type=float, default=None,
                     help="promote a queued request one priority class "
                          "per this many seconds waited (continuous)")
    srv.add_argument("--no-preempt", action="store_true",
                     help="disable priority preemption at boundaries")
    srv.add_argument("--timeout", type=float, default=None,
                     help="drop queued requests older than this "
                          "(continuous mode)")
    srv.add_argument("--deadline", type=float, default=None,
                     help="relative deadline applied to every request "
                          "(continuous mode SLA)")
    srv.add_argument("--tenants", default=None,
                     help="tenant weights 'alice=2,bob=1'; requests are "
                          "assigned round-robin (continuous mode)")
    srv.add_argument("--simulate", default=None, metavar="ACCEL",
                     choices=["exion4", "exion24", "exion42"],
                     help="run in simulated time: batch/tick durations "
                          "come from this accelerator's latency model, "
                          "so the report and any --json/--trace-out "
                          "output are byte-identical across runs")
    srv.add_argument("--json", default=None,
                     help="write a canonical serve-report JSON here "
                          "(deterministic with --simulate)")
    srv.add_argument("--metrics-out", default=None,
                     help="write metrics here after serving (.json for "
                          "the canonical snapshot, else Prometheus text)")
    srv.add_argument("--trace-out", default=None,
                     help="write a Chrome trace-event JSON of the run "
                          "here (deterministic with --simulate)")
    srv.set_defaults(func=_cmd_serve)

    clu = sub.add_parser(
        "cluster", help="trace-driven multi-accelerator fleet simulation"
    )
    clu.add_argument("--models", default="dit",
                     help="comma-separated benchmark models in the mix")
    clu.add_argument("--ablation", default="all",
                     choices=["base", "ep", "ffnr", "all"])
    clu.add_argument("--replicas", type=int, default=4)
    clu.add_argument("--accelerator", default="exion24",
                     choices=["exion4", "exion24", "exion42"])
    clu.add_argument("--router", default="jsq",
                     choices=["round_robin", "jsq", "cache_affinity"])
    clu.add_argument("--arrival", default="poisson",
                     choices=["poisson", "mmpp", "diurnal"])
    clu.add_argument("--rate", type=float, default=100.0,
                     help="arrival rate in requests/s (peak rate for "
                          "mmpp/diurnal; their trough is rate/4)")
    clu.add_argument("--dwell", type=float, default=1.0,
                     help="mean MMPP state dwell time in seconds")
    clu.add_argument("--period", type=float, default=60.0,
                     help="diurnal ramp period in seconds")
    clu.add_argument("--requests", type=int, default=64)
    clu.add_argument("--seed", type=int, default=0,
                     help="trace seed; same seed -> byte-identical report")
    clu.add_argument("--batch-size", type=int, default=8)
    clu.add_argument("--max-wait", type=float, default=0.0,
                     help="micro-batch max-wait in simulated seconds")
    clu.add_argument("--slo-target", type=float, default=None,
                     help="latency SLO target in seconds (attainment)")
    clu.add_argument("--timeout", type=float, default=None,
                     help="drop queued requests older than this")
    clu.add_argument("--max-queue-depth", type=int, default=None,
                     help="per-replica admission-control bound")
    clu.add_argument("--trace", default=None,
                     help="replay a JSONL trace file instead of synthesizing")
    clu.add_argument("--save-trace", default=None,
                     help="write the synthesized trace to a JSONL file")
    clu.add_argument("--execute", action="store_true",
                     help="actually run the numeric generation per batch "
                          "(slow; default is accounting-only)")
    clu.add_argument("--iterations", type=int, default=None,
                     help="truncate the denoising schedule: priced by the "
                          "hw model and, with --execute, actually run")
    clu.add_argument("--json", default=None,
                     help="write the canonical ClusterReport JSON here")
    clu.add_argument("--continuous", action="store_true",
                     help="replicas run iteration-level continuous "
                          "batching instead of drain-and-refill")
    clu.add_argument("--quantum", type=float, default=1.0,
                     help="fair-queuing deficit credit per round "
                          "(continuous mode)")
    clu.add_argument("--aging", type=float, default=None,
                     help="priority aging interval in simulated seconds "
                          "(continuous mode)")
    clu.add_argument("--no-preempt", action="store_true",
                     help="disable priority preemption at boundaries")
    clu.add_argument("--tenants", default=None,
                     help="tenant fair-queuing weights 'alice=2,bob=1' "
                          "(continuous mode)")
    clu.add_argument("--metrics-out", default=None,
                     help="write fleet metrics here (.json for the "
                          "canonical snapshot, else Prometheus text)")
    clu.add_argument("--trace-out", default=None,
                     help="write a Chrome trace-event JSON of request "
                          "lifecycles and dispatches here")
    clu.set_defaults(func=_cmd_cluster)

    exp = sub.add_parser(
        "explore",
        help="parallel design-space exploration with Pareto reporting",
    )
    exp.add_argument("--space", default=None,
                     help="JSON space file (SearchSpace.to_dict layout); "
                          "default is the built-in co-design space")
    exp.add_argument("--cluster", action="store_true",
                     help="explore the fleet scenario space (replicas, "
                          "router, arrival rate) instead of the default "
                          "hardware+ablation space")
    exp.add_argument("--set", action="append", default=[],
                     metavar="DIM=V1[,V2...]",
                     help="pin or restrict a dimension inline (repeatable); "
                          "values are parsed as JSON when possible")
    exp.add_argument("--model", default="dit",
                     help="benchmark model the default space is built for")
    exp.add_argument("--strategy", default="random",
                     choices=["grid", "random", "halving"])
    exp.add_argument("--budget", type=int, default=12,
                     help="points sampled by random/halving strategies")
    exp.add_argument("--grid-levels", type=int, default=2,
                     help="grid levels per range dimension")
    exp.add_argument("--halving-eta", type=float, default=2.0,
                     help="successive-halving survivor fraction 1/eta")
    exp.add_argument("--halving-fidelities", default="4,8,12",
                     help="comma-separated iteration budgets per rung")
    exp.add_argument("--rank-by", default=None,
                     help="objective successive halving promotes on "
                          "(default: latency_s when present, else the "
                          "first objective of the run)")
    exp.add_argument("--objectives", default=None,
                     help="comma-separated objective names (default: "
                          "latency_s,energy_j,accuracy_psnr_db; cluster "
                          "mode: samples_per_s,slo_attainment,energy_j)")
    exp.add_argument("--iterations", type=int, default=12,
                     help="denoising iterations the objectives price")
    exp.add_argument("--workers", type=int, default=1,
                     help="evaluation worker processes")
    exp.add_argument("--cache-dir", default=None,
                     help="content-addressed evaluation cache directory "
                          "(identical points are never re-evaluated)")
    exp.add_argument("--seed", type=int, default=0,
                     help="search + evaluation seed; same seed -> "
                          "byte-identical report")
    exp.add_argument("--json", default=None,
                     help="write the canonical ExploreReport JSON here")
    exp.set_defaults(func=_cmd_explore)

    trc = sub.add_parser(
        "trace",
        help="emit a deterministic Chrome/Perfetto trace of a simulated "
             "serving scenario",
    )
    trc.add_argument("--model", default="dit")
    trc.add_argument("--ablation", default="all",
                     choices=["base", "ep", "ffnr", "all"])
    trc.add_argument("--accelerator", default="exion24",
                     choices=["exion4", "exion24", "exion42"],
                     help="latency model pricing ticks and arrivals")
    trc.add_argument("--continuous", action="store_true",
                     help="trace the continuous-batching server "
                          "(joins/preemptions/evictions) instead of "
                          "drain-and-refill micro-batching")
    trc.add_argument("--requests", type=int, default=8)
    trc.add_argument("--batch-size", type=int, default=2)
    trc.add_argument("--iterations", type=int, default=None,
                     help="denoising iterations (default: paper scale)")
    trc.add_argument("--seed", type=int, default=0,
                     help="first request seed; same seed -> "
                          "byte-identical trace")
    trc.add_argument("--out", default="trace.json",
                     help="Chrome trace-event JSON output path (open in "
                          "Perfetto or chrome://tracing)")
    trc.add_argument("--metrics-out", default=None,
                     help="also write metrics (.json canonical snapshot, "
                          "else Prometheus text)")
    trc.add_argument("--events-out", default=None,
                     help="also write the flat JSONL event log")
    trc.set_defaults(func=_cmd_trace)

    obs = sub.add_parser(
        "obs",
        help="trace analytics: critical path, wait attribution, "
             "per-tenant cost, SLO error budgets",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    def _add_obs_source_args(p):
        p.add_argument("--input", default=None,
                       help="trace artifact to analyze (Chrome trace "
                            "JSON or event JSONL); omit to run the "
                            "deterministic trace scenario inline")
        p.add_argument("--slo", action="append", default=None,
                       metavar="SPEC",
                       help="SLO spec 'name:latency:<secs>:<target>' or "
                            "'name:deadline:<target>' (repeatable; "
                            "default: latency-250ms + deadline-hit)")
        p.add_argument("--model", default="dit")
        p.add_argument("--ablation", default="all",
                       choices=["base", "ep", "ffnr", "all"])
        p.add_argument("--accelerator", default="exion24",
                       choices=["exion4", "exion24", "exion42"])
        p.add_argument("--continuous", action="store_true")
        p.add_argument("--requests", type=int, default=8)
        p.add_argument("--batch-size", type=int, default=2)
        p.add_argument("--iterations", type=int, default=None)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--cold-start", action="store_true",
                       help="charge a cold-start surcharge on the "
                            "scenario's first tick")

    oba = obs_sub.add_parser(
        "analyze",
        help="produce the canonical analysis JSON (and optional HTML)",
    )
    _add_obs_source_args(oba)
    oba.add_argument("--out", default="analysis.json",
                     help="canonical analysis JSON output path")
    oba.add_argument("--html", default=None,
                     help="also render the static HTML report here")
    oba.add_argument("--trace-out", default=None,
                     help="scenario mode: also export the Chrome trace "
                          "with SLO alert instants appended")
    oba.set_defaults(func=_cmd_obs_analyze)

    obr = obs_sub.add_parser(
        "report", help="render the zero-dependency static HTML report"
    )
    _add_obs_source_args(obr)
    obr.add_argument("--out", default="report.html")
    obr.add_argument("--title", default=None)
    obr.set_defaults(func=_cmd_obs_report)

    obd = obs_sub.add_parser(
        "diff",
        help="compare two analysis JSON files; exit 1 on regressions",
    )
    obd.add_argument("base", help="baseline analysis JSON")
    obd.add_argument("current", help="current analysis JSON")
    obd.add_argument("--tolerance", type=float, default=0.0,
                     help="relative movement tolerated before a metric "
                          "counts as regressed/improved")
    obd.set_defaults(func=_cmd_obs_diff)

    prg = sub.add_parser(
        "program",
        help="inspect the lowered iteration-program IR for a model",
    )
    prg.add_argument("--model", default="dit")
    prg.add_argument("--ablation", default="all",
                     choices=["base", "ep", "ffnr", "all"])
    prg.add_argument("--iterations", type=int, default=None,
                     help="phase-plan length (default: the spec's count)")
    prg.add_argument("--batch", type=int, default=1)
    prg.add_argument("--json", action="store_true",
                     help="emit the canonical byte-stable plan JSON")
    prg.add_argument("--compile", action="store_true",
                     help="compile the plan and dump its phase schedule "
                          "and expected index-set sizes (with --json: "
                          "the stats dict as JSON)")
    prg.set_defaults(func=_cmd_program)

    sim = sub.add_parser("simulate", help="hardware simulation vs GPU")
    sim.add_argument("--model", default="dit")
    sim.add_argument("--accelerator", default="exion24",
                     choices=["exion4", "exion24", "exion42"])
    sim.add_argument("--batch", type=int, default=1)
    sim.set_defaults(func=_cmd_simulate)

    sub.add_parser("opcount", help="Fig. 4 operation breakdown").set_defaults(
        func=_cmd_opcount
    )

    cm = sub.add_parser("conmerge", help="ConMerge compaction demo")
    cm.add_argument("--model", default="stable_diffusion")
    cm.add_argument("--seed", type=int, default=0)
    cm.set_defaults(func=_cmd_conmerge)

    bench = sub.add_parser(
        "bench", help="structured benchmark harness (run / list / compare)"
    )
    bench.add_argument("--list", action="store_true",
                       help="list registered benches and exit")
    bench.add_argument("--run", metavar="SELECTOR", default=None,
                       help="comma-separated: 'all', bench names, tag:<tag>")
    bench.add_argument("--out", default="bench_results",
                       help="directory for BENCH_<name>.json results")
    bench.add_argument("--compare", nargs=2,
                       metavar=("BASELINE", "CURRENT"), default=None,
                       help="diff two result sets (file or directory each)")
    bench.add_argument("--latency-tol", type=float, default=0.10,
                       help="relative wall-clock regression tolerance")
    bench.add_argument("--latency-min-abs", type=float, default=0.25,
                       help="absolute wall-clock slack (seconds) that must "
                            "also be exceeded before latency drift counts")
    bench.add_argument("--strict", action="store_true",
                       help="treat missing benches/metrics as regressions")
    bench.add_argument("--benchmarks-dir", default=None,
                       help="override the benchmarks/ directory to discover")
    bench.add_argument("--show", action="store_true",
                       help="print each bench's rendered tables after running")
    bench.add_argument("--verbose", action="store_true",
                       help="print per-bench progress while running")
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
