"""Single-sourced package version.

The version lives in exactly one place — the ``[project]`` table of
``pyproject.toml``. Installed packages read it back through
``importlib.metadata``; source checkouts (the usual ``PYTHONPATH=src``
development mode, where nothing is installed) fall back to parsing the
checkout's ``pyproject.toml`` directly, so ``repro.__version__`` and
``python -m repro --version`` can never drift from the packaging
metadata.
"""

from __future__ import annotations

import re
from pathlib import Path

_FALLBACK = "0+unknown"


def _from_metadata() -> str | None:
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - importlib.metadata is 3.8+
        return None
    try:
        return version("repro")
    except PackageNotFoundError:
        return None


def _from_pyproject() -> str | None:
    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        text = pyproject.read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        import tomllib  # Python 3.11+
    except ImportError:
        return _regex_version(text)  # Python 3.10
    try:
        return tomllib.loads(text).get("project", {}).get("version")
    except tomllib.TOMLDecodeError:
        return None


def _regex_version(text: str) -> str | None:
    """Python 3.10 fallback: isolate the ``[project]`` table (up to the
    next section header at column zero), then find its version key —
    robust to bracketed values like dependency lists appearing first."""
    section = re.search(
        r"^\[project\]\s*$(.*?)(?=^\[|\Z)",
        text,
        flags=re.MULTILINE | re.DOTALL,
    )
    if section is None:
        return None
    match = re.search(
        r"^version\s*=\s*\"([^\"]+)\"", section.group(1), flags=re.MULTILINE
    )
    return match.group(1) if match else None


def read_version() -> str:
    """The package version from pyproject, metadata, or a marker.

    The adjacent source checkout wins over installed metadata: on a
    ``PYTHONPATH=src`` tree a stale ``pip install`` of an older version
    (or an unrelated distribution that happens to be named ``repro``)
    must not shadow the checkout's own ``pyproject.toml``. Installed
    packages have no adjacent pyproject, so they read their metadata.
    """
    return _from_pyproject() or _from_metadata() or _FALLBACK


__version__ = read_version()
