"""Service-level objectives: targets, admission control, tail accounting.

An :class:`SLOPolicy` states what the fleet promises (a latency target)
and what it refuses (queue depth beyond ``max_queue_depth`` at admission,
requests older than ``timeout_s`` at dispatch). The
:class:`LatencyAccumulator` folds per-request outcomes into the
deterministic percentile summaries the :class:`~repro.cluster.report.ClusterReport`
publishes: nearest-rank percentiles over exactly the simulated values, so
two same-seed runs produce byte-identical numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SLOPolicy:
    """What the fleet promises and refuses.

    ``latency_target_s`` — attainment is the fraction of all disposed
    traffic (served *and* dropped) finishing within it (``None``
    disables attainment accounting);
    ``timeout_s`` — queued requests older than this are dropped before
    the next batch forms;
    ``max_queue_depth`` — per-replica admission bound on queued requests.
    """

    latency_target_s: Optional[float] = None
    timeout_s: Optional[float] = None
    max_queue_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.latency_target_s is not None and self.latency_target_s <= 0:
            raise ValueError("latency_target_s must be > 0")
        if self.timeout_s is not None and self.timeout_s < 0:
            raise ValueError("timeout_s must be >= 0")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")

    def describe(self) -> dict:
        return {
            "latency_target_s": self.latency_target_s,
            "timeout_s": self.timeout_s,
            "max_queue_depth": self.max_queue_depth,
        }


def _nearest_rank(ordered: list, q: float) -> float:
    """Nearest-rank percentile over an already-sorted list."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if not ordered:
        return 0.0
    if q == 0.0:
        return float(ordered[0])
    rank = max(1, -(-len(ordered) * q // 100))  # ceil(n*q/100)
    return float(ordered[int(rank) - 1])


def percentile(values: list, q: float) -> float:
    """Nearest-rank percentile (inclusive), deterministic on floats.

    ``q`` is in [0, 100]. Empty input yields 0.0 so empty scenarios
    still serialize cleanly.
    """
    return _nearest_rank(sorted(values), q)


class LatencyAccumulator:
    """Per-request latency outcomes folded into summary statistics."""

    def __init__(self, slo: Optional[SLOPolicy] = None) -> None:
        self.slo = slo if slo is not None else SLOPolicy()
        self.waits: list = []
        self.services: list = []

    def record(self, wait_s: float, service_s: float) -> None:
        self.waits.append(float(wait_s))
        self.services.append(float(service_s))

    @property
    def count(self) -> int:
        return len(self.waits)

    @property
    def latencies(self) -> list:
        return [w + s for w, s in zip(self.waits, self.services)]

    def attainment(self, dropped: int = 0) -> Optional[float]:
        """Fraction of traffic that met the latency target (None if no
        target is set).

        ``dropped`` requests count as misses: a fleet that sheds work via
        timeouts or admission control violated those requests' SLO, so
        the denominator is served *plus* dropped — otherwise tightening a
        timeout would *raise* attainment while service got worse.
        """
        target = self.slo.latency_target_s
        if target is None:
            return None
        total = len(self.waits) + dropped
        if total == 0:
            return 0.0
        within = sum(1 for v in self.latencies if v <= target)
        return within / total

    def summary(self) -> dict:
        """p50/p95/p99 latency plus the queue-wait/service breakdown."""
        # One sort per distribution serves every percentile (long traces
        # would otherwise pay an O(n log n) sort per quantile).
        latencies = sorted(self.latencies)
        waits = sorted(self.waits)
        n = len(latencies)
        return {
            "count": n,
            "latency_p50_s": _nearest_rank(latencies, 50),
            "latency_p95_s": _nearest_rank(latencies, 95),
            "latency_p99_s": _nearest_rank(latencies, 99),
            "latency_mean_s": (sum(latencies) / n) if n else 0.0,
            "latency_max_s": latencies[-1] if latencies else 0.0,
            "wait_p50_s": _nearest_rank(waits, 50),
            "wait_p99_s": _nearest_rank(waits, 99),
            "wait_mean_s": (sum(waits) / n) if n else 0.0,
            "service_mean_s": (sum(self.services) / n) if n else 0.0,
        }


__all__ = ["LatencyAccumulator", "SLOPolicy", "percentile"]
