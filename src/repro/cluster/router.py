"""Pluggable routing policies: which replica gets the next request.

Routers are deterministic: ties break on replica index, so a fleet run
is a pure function of its trace and seed.

- :class:`RoundRobinRouter` — rotate through replicas regardless of load;
- :class:`JoinShortestQueueRouter` — send to the replica with the fewest
  queued-plus-in-flight requests (the classic latency-optimal heuristic
  for homogeneous fleets);
- :class:`CacheAffinityRouter` — steer same-``(model, ablation)``
  requests to replicas whose :class:`~repro.serve.cache.ThresholdCache`
  is already warm (avoiding repeat cold-start calibrations), falling
  back to join-shortest-queue when every warm replica is overloaded
  relative to the fleet or the key is cold.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.replica import Replica
from repro.cluster.traffic import ClusterRequest


class Router:
    """Base router: choose a replica for each arriving request."""

    name = "router"

    def choose(
        self, request: ClusterRequest, replicas: list, now: float
    ) -> Replica:
        raise NotImplementedError

    def describe(self) -> dict:
        return {"router": self.name}


def _least_loaded(replicas: list, now: float) -> Replica:
    """The one load/tie-break rule every load-aware policy shares."""
    return min(replicas, key=lambda r: (r.load(now), r.index))


class RoundRobinRouter(Router):
    """Cycle through replicas in index order."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(
        self, request: ClusterRequest, replicas: list, now: float
    ) -> Replica:
        replica = replicas[self._next % len(replicas)]
        self._next += 1
        return replica


class JoinShortestQueueRouter(Router):
    """Send to the least-loaded replica (queued + in-flight requests)."""

    name = "jsq"

    def choose(
        self, request: ClusterRequest, replicas: list, now: float
    ) -> Replica:
        return _least_loaded(replicas, now)


class CacheAffinityRouter(Router):
    """Prefer warm replicas for a pipeline key, within a load budget.

    A warm replica is used unless its load exceeds the fleet's minimum
    load by more than ``max_imbalance`` requests — then locality is
    traded away and the request joins the shortest queue (which warms a
    new replica for the key, growing the key's footprint under load).
    """

    name = "cache_affinity"

    def __init__(self, max_imbalance: int = 8) -> None:
        if max_imbalance < 0:
            raise ValueError("max_imbalance must be >= 0")
        self.max_imbalance = max_imbalance

    def choose(
        self, request: ClusterRequest, replicas: list, now: float
    ) -> Replica:
        jsq_pick = _least_loaded(replicas, now)
        warm = [r for r in replicas if r.is_warm(request.pipeline_key)]
        if not warm:
            return jsq_pick
        warm_pick = _least_loaded(warm, now)
        if warm_pick.load(now) - jsq_pick.load(now) > self.max_imbalance:
            return jsq_pick
        return warm_pick

    def describe(self) -> dict:
        return {"router": self.name, "max_imbalance": self.max_imbalance}


#: CLI/scenario names for the built-in policies.
ROUTERS = {
    "round_robin": RoundRobinRouter,
    "jsq": JoinShortestQueueRouter,
    "cache_affinity": CacheAffinityRouter,
}


def make_router(name: str, **kwargs) -> Router:
    """Instantiate a routing policy by its scenario name."""
    try:
        cls: Optional[type] = ROUTERS[name]
    except KeyError:
        raise KeyError(
            f"unknown router {name!r}; known: {', '.join(sorted(ROUTERS))}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "CacheAffinityRouter",
    "JoinShortestQueueRouter",
    "ROUTERS",
    "RoundRobinRouter",
    "Router",
    "make_router",
]
