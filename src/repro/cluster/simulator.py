"""The deterministic discrete-event loop tying traffic to the fleet.

:class:`ClusterSimulator` advances simulated time through a binary heap
of ``(time, sequence)``-ordered events: request **arrivals** (routed to
a replica by the configured policy, subject to admission control) and
replica **checks** (dispatch a due micro-batch, or wake again when one
becomes due). Replicas serve one batch at a time — an accelerator runs
one kernel schedule — and their service times come from the hardware
latency model, so the whole run is a pure function of the trace, the
seed, and the fleet configuration: no wall clock anywhere.

Progress is guaranteed: every event either serves requests, drops
expired ones, or schedules a strictly later wake-up (a one-nanosecond
floor guards against floating-point fixpoints in max-wait expiry
arithmetic).
"""

from __future__ import annotations

import heapq
import math
from itertools import count
from typing import Optional

from repro.cluster.replica import Replica
from repro.cluster.report import ClusterReport
from repro.cluster.router import Router
from repro.cluster.slo import LatencyAccumulator, SLOPolicy

#: Minimum forward step when rescheduling a check at a non-advancing
#: instant (floating-point guard; far below any modeled latency).
_TIME_EPS = 1e-9

_ARRIVAL = 0
_CHECK = 1


class ClusterSimulator:
    """Drives one open-loop trace through a replica fleet."""

    def __init__(
        self,
        replicas: list,
        router: Router,
        slo: Optional[SLOPolicy] = None,
        observer=None,
    ) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        self.replicas = list(replicas)
        self.router = router
        self.slo = slo if slo is not None else SLOPolicy()
        # Nil-by-default observability: request lifecycles, dispatch
        # spans and SLO drops are recorded only when an observer is
        # installed; every timestamp is simulated time, so traces are
        # byte-deterministic per (trace, seed, fleet).
        self.observer = observer

    # ------------------------------------------------------------------
    def run(self, requests: list, scenario: Optional[dict] = None) -> ClusterReport:
        """Simulate every request to completion (served or dropped)."""
        observer = self.observer
        events: list = []
        seq = count()
        request_ids: dict = {}
        for request in sorted(requests, key=lambda r: r.arrival_s):
            request_ids[id(request)] = len(request_ids)
            heapq.heappush(
                events, (request.arrival_s, next(seq), _ARRIVAL, request)
            )

        accumulator = LatencyAccumulator(self.slo)
        dispatches = 0
        horizon = 0.0

        # The horizon (makespan) advances only on events that *happen* —
        # arrivals, drops, batch completions. Wake-up checks can outlive
        # the work they were guarding (a max-wait check for a batch that
        # filled early); counting their pop times would inflate the
        # makespan and deflate throughput/utilization.
        while events:
            t, _, kind, payload = heapq.heappop(events)
            if kind == _ARRIVAL:
                horizon = max(horizon, t)
                # Sweep expired waiters fleet-wide first, so routing loads
                # and admission depths count live requests only (a stale
                # queue must produce timeout drops, not admission drops).
                for member in self.replicas:
                    self._observe_drops(
                        member.expire(t, self.slo.timeout_s), t
                    )
                replica = self.router.choose(payload, self.replicas, t)
                accepted = replica.enqueue(
                    payload, t, max_queue_depth=self.slo.max_queue_depth
                )
                if observer is not None:
                    rid = request_ids[id(payload)]
                    observer.on_request_stage(
                        "queued", t, rid, model=payload.model,
                        replica=replica.name,
                        tenant=getattr(payload, "tenant", "default"),
                        priority=int(getattr(payload, "priority", 1) or 1),
                    )
                    if not accepted:
                        observer.on_request_stage(
                            "rejected", t, rid, model=payload.model,
                            replica=replica.name,
                        )
                    observer.on_queue_depth(
                        replica.name, replica.queue_depth()
                    )
                if accepted:
                    self._schedule(events, seq, replica, t, bump=False)
            else:
                replica = payload
                swept = replica.expire(t, self.slo.timeout_s)
                if swept:
                    horizon = max(horizon, t)
                    self._observe_drops(swept, t)
                outcome = replica.try_dispatch(t)
                if outcome is not None:
                    dispatches += 1
                    horizon = max(horizon, outcome.completion_s)
                    for record in outcome.served:
                        accumulator.record(record.wait_s, record.service_s)
                    if observer is not None:
                        observer.on_dispatch(
                            replica.name, t, outcome.completion_s,
                            outcome.batch_size, outcome.model,
                            ablation=outcome.ablation,
                            phase=outcome.phase,
                            cold_s=outcome.cold_s,
                            energy_j=outcome.energy_j,
                            tenants=[m[1] for m in outcome.members],
                            priorities=[m[2] for m in outcome.members],
                        )
                        for record in outcome.served:
                            observer.on_request_stage(
                                "served", outcome.completion_s,
                                record.request_id, replica=replica.name,
                                wait_s=record.wait_s,
                                service_s=record.service_s,
                                tenant=record.request.tenant,
                                priority=int(record.request.priority),
                                model=outcome.model,
                            )
                self._schedule(events, seq, replica, t, bump=True)

        return self._report(requests, accumulator, horizon, scenario)

    def _observe_drops(self, dropped: list, now: float) -> None:
        """Record swept requests as SLO events (observer installed only)."""
        if self.observer is None:
            return
        for drop in dropped:
            self.observer.on_slo_event(
                drop.reason, now, model=drop.model,
                waited_s=drop.waited_s,
            )

    # ------------------------------------------------------------------
    def _schedule(
        self, events: list, seq, replica: Replica, now: float, bump: bool
    ) -> None:
        """Queue the replica's next wake-up, if it has pending work."""
        when = replica.next_event_time(now, timeout_s=self.slo.timeout_s)
        if when is None:
            return
        if when < now:
            when = now
        if bump and when <= now:
            # A dispatch was just attempted at `now`; re-attempting at the
            # same instant cannot make progress, so step forward minutely.
            # nextafter guarantees an advance even at timestamps so large
            # that `now + _TIME_EPS == now` (e.g. epoch-scale traces).
            when = max(now + _TIME_EPS, math.nextafter(now, math.inf))
        heapq.heappush(events, (when, next(seq), _CHECK, replica))

    # ------------------------------------------------------------------
    def _report(
        self,
        requests: list,
        accumulator: LatencyAccumulator,
        horizon: float,
        scenario: Optional[dict],
    ) -> ClusterReport:
        admission_drops = sum(r.admission_drops for r in self.replicas)
        timeout_drops = sum(r.timeout_drops for r in self.replicas)
        dropped = admission_drops + timeout_drops
        served = sum(r.requests_served for r in self.replicas)
        leftover = sum(r.queue_depth() for r in self.replicas)
        if leftover:  # pragma: no cover - progress guarantee above
            raise RuntimeError(
                f"event loop drained with {leftover} requests still queued"
            )

        accelerators = sorted({r.accelerator_name for r in self.replicas})
        models = sorted({r.model for r in requests})
        doc = {
            "replicas": len(self.replicas),
            "accelerator": (
                accelerators[0] if len(accelerators) == 1 else accelerators
            ),
            "models": models,
            "policy": self.replicas[0].policy_doc(),
            "slo": self.slo.describe(),
            **self.router.describe(),
            **(scenario or {}),
        }
        usage = [r.usage(horizon) for r in self.replicas]
        if self.observer is not None:
            for row in usage:
                self.observer.on_replica_utilization(
                    row["name"], row["utilization"]
                )
        return ClusterReport(
            # Key-sorted at construction so the in-memory scenario/stats
            # blocks iterate identically across runs, not only after the
            # canonical to_json() pass re-sorts them.
            scenario=dict(sorted(doc.items())),
            submitted=len(requests),
            served=served,
            admission_drops=admission_drops,
            timeout_drops=timeout_drops,
            makespan_s=horizon,
            latency=accumulator.summary(),
            slo_attainment=accumulator.attainment(dropped=dropped),
            replicas=[dict(sorted(row.items())) for row in usage],
            executed=any(r.execute for r in self.replicas),
        )


def build_replicas(
    count_: int,
    accelerator: str = "exion24",
    policy=None,
    service_model=None,
    execute: bool = False,
    execute_iterations: Optional[int] = None,
    model_seed: int = 0,
    calibration_seed: int = 0,
    continuous: bool = False,
    tenant_weights=None,
    **service_kwargs,
) -> list:
    """A homogeneous fleet sharing one memoized service-time model.

    ``model_seed``/``calibration_seed`` reach every replica's servers;
    remaining keyword arguments configure the shared
    :class:`~repro.cluster.replica.ServiceTimeModel` (``iterations``,
    ``profile_seed``, ``cold_start``). ``continuous=True`` builds
    :class:`~repro.cluster.replica.ContinuousReplica` members
    (iteration-level continuous batching; ``policy`` is then a
    :class:`~repro.serve.continuous.ContinuousPolicy` and
    ``tenant_weights`` configures per-tenant fair-queuing weights).
    """
    from repro.cluster.replica import ContinuousReplica, ServiceTimeModel

    if count_ < 1:
        raise ValueError("need at least one replica")
    if service_model is None:
        service_model = ServiceTimeModel(accelerator, **service_kwargs)
    if continuous:
        return [
            ContinuousReplica(
                index=i,
                policy=policy,
                service_model=service_model,
                tenant_weights=tenant_weights,
                execute=execute,
                execute_iterations=execute_iterations,
                model_seed=model_seed,
                calibration_seed=calibration_seed,
            )
            for i in range(count_)
        ]
    if tenant_weights is not None:
        raise ValueError("tenant_weights requires continuous=True")
    return [
        Replica(
            index=i,
            policy=policy,
            service_model=service_model,
            execute=execute,
            execute_iterations=execute_iterations,
            model_seed=model_seed,
            calibration_seed=calibration_seed,
        )
        for i in range(count_)
    ]


def simulate_cluster(
    requests: list,
    replicas: list,
    router: Router,
    slo: Optional[SLOPolicy] = None,
    scenario: Optional[dict] = None,
    observer=None,
) -> ClusterReport:
    """One-call convenience wrapper around :class:`ClusterSimulator`."""
    return ClusterSimulator(replicas, router, slo, observer=observer).run(
        requests, scenario=scenario
    )


__all__ = ["ClusterSimulator", "build_replicas", "simulate_cluster"]
