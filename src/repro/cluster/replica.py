"""One fleet member: an accelerator-backed serving replica in sim time.

A :class:`Replica` wraps real serving machinery — per-(model, ablation)
:class:`~repro.serve.server.ExionServer` instances sharing one
:class:`~repro.serve.cache.ThresholdCache` — behind a :class:`SimClock`
the event loop advances, so batching decisions (coalescing, max-wait
dispatch) are exactly what the serving layer would do, while **service
times come from the hardware simulator**, not from wall clock:
:class:`ServiceTimeModel` lowers each (model, ablation, batch) point
once through :func:`repro.program.lower_plan` and prices the plan with
:meth:`repro.hw.accelerator.ExionAccelerator.simulate_plan` for the
replica's Table II configuration (exion4 / exion24 / exion42).

The first batch of a ``(model, ablation)`` on a replica pays a
*cold-start* penalty — one vanilla batch-1 generation, mirroring how the
serving layer's offline threshold calibration costs a full vanilla run —
which is what makes cache-affinity routing worth having.

By default replicas run ``dry_run`` servers (accounting only); pass
``execute=True`` to actually run the numeric generation pipeline per
batch (slow, but results then carry real samples and sparsity stats).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

from repro.core.config import ExionConfig
from repro.hw.accelerator import ExionAccelerator
from repro.serve.cache import ThresholdCache
from repro.serve.scheduler import BatchingPolicy
from repro.serve.server import ExionServer
from repro.workloads.specs import get_spec

#: Table II deployment points by CLI/scenario name.
ACCELERATORS = {
    "exion4": ExionAccelerator.exion4,
    "exion24": ExionAccelerator.exion24,
    "exion42": ExionAccelerator.exion42,
}

class SimClock:
    """A clock the event loop sets by hand; servers read it as ``clock()``."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = float(now)

    def __call__(self) -> float:
        return self.now


def make_accelerator(
    accelerator: Union[str, ExionAccelerator],
) -> ExionAccelerator:
    """Resolve a Table II configuration name into an accelerator."""
    if isinstance(accelerator, ExionAccelerator):
        return accelerator
    try:
        return ACCELERATORS[accelerator]()
    except KeyError:
        raise KeyError(
            f"unknown accelerator {accelerator!r}; "
            f"known: {', '.join(sorted(ACCELERATORS))}"
        ) from None


class ServiceTimeModel:
    """Simulated batch latencies from the EXION hardware model.

    Latencies are memoized per ``(model, ablation, batch_size)`` — the
    hw walk is deterministic, so each point is priced once per process.
    ``iterations=None`` prices full paper-scale generations
    (``spec.total_iterations``); pass a smaller count to model truncated
    schedules.
    """

    def __init__(
        self,
        accelerator: Union[str, ExionAccelerator] = "exion24",
        iterations: Optional[int] = None,
        profile_seed: int = 0,
        cold_start: bool = True,
    ) -> None:
        self.accelerator = make_accelerator(accelerator)
        self.iterations = iterations
        self.profile_seed = profile_seed
        self.cold_start = cold_start
        self._profiles: dict = {}
        self._latencies: dict = {}
        self._energies: dict = {}
        self._tick_latencies: dict = {}
        self._tick_energies: dict = {}

    @property
    def name(self) -> str:
        return self.accelerator.name

    def _profile(self, model: str):
        if model not in self._profiles:
            from repro.program.cache import get_plan_cache

            # The global PlanCache interns the synthesis (the dominant
            # fleet-setup cost), so N replicas over M models run exactly
            # M ConMerge estimation passes between them.
            self._profiles[model] = get_plan_cache().profile(
                get_spec(model), seed=self.profile_seed
            )
        return self._profiles[model]

    def latency_s(self, model: str, ablation: str, batch_size: int) -> float:
        """Simulated latency of one micro-batch generation."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        key = (model, ablation, batch_size)
        if key not in self._latencies:
            from repro.program.cache import get_plan_cache

            cache = get_plan_cache()
            # The enable flags come from the same config the served
            # pipeline uses, so priced and executed ablations can't
            # drift; lowering and pricing are interned process-wide, so
            # every replica of a fleet shares one plan and one pricing
            # per (model, ablation, batch) point.
            config = ExionConfig.for_model(model).ablation(ablation)
            plan = cache.plan(
                get_spec(model),
                config=config,
                iterations=self.iterations,
                batch=batch_size,
            )
            report = cache.price(
                self.accelerator, plan, self._profile(model)
            )
            self._latencies[key] = report.latency_s
            self._energies[key] = report.energy_j
        return self._latencies[key]

    def energy_j(self, model: str, ablation: str, batch_size: int) -> float:
        """Simulated energy of one micro-batch generation (same sim as
        :meth:`latency_s` — priced together, never drifting apart)."""
        key = (model, ablation, batch_size)
        if key not in self._energies:
            self.latency_s(model, ablation, batch_size)
        return self._energies[key]

    def calibration_s(self, model: str) -> float:
        """Cold-start cost: one vanilla (Base ablation) batch-1 generation."""
        return self.latency_s(model, "base", 1)

    def tick_latency_s(
        self, model: str, ablation: str, batch_size: int, kind: str
    ) -> float:
        """Simulated latency of **one denoising iteration** of a batch.

        The continuous scheduler dispatches per-iteration ticks, so it
        needs per-tick prices rather than whole-generation latencies.
        These come from differencing plan lowerings at adjacent
        iteration counts (the phase schedule is strictly periodic with
        period ``sparse_iters_n + 1``, so three prices cover every tick):

        - ``"cold"`` — the first iteration of a generation: the 1-iteration
          plan, carrying the dense FFN compile plus the per-generation
          fixed work (conditioning, VAE share);
        - ``"dense"`` — a steady-state dense iteration (phase recompile):
          ``t(P+1) - t(P)``;
        - ``"sparse"`` — a sparse iteration riding the compiled phase:
          ``t(2) - t(1)``.

        Without FFN-Reuse every iteration is dense and ``"dense"`` prices
        the uniform steady-state iteration.
        """
        if kind not in ("cold", "dense", "sparse"):
            raise ValueError(f"unknown tick kind {kind!r}")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        key = (model, ablation, batch_size)
        if key not in self._tick_latencies:
            self._price_ticks(model, ablation, batch_size)
        return self._tick_latencies[key][kind]

    def tick_energy_j(
        self, model: str, ablation: str, batch_size: int, kind: str
    ) -> float:
        """Simulated energy of one denoising iteration of a batch.

        Priced by the same plan differencing as :meth:`tick_latency_s`,
        from the same simulations — per-tick latency and energy always
        describe the same schedule.
        """
        if kind not in ("cold", "dense", "sparse"):
            raise ValueError(f"unknown tick kind {kind!r}")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        key = (model, ablation, batch_size)
        if key not in self._tick_energies:
            self._price_ticks(model, ablation, batch_size)
        return self._tick_energies[key][kind]

    def _price_ticks(
        self, model: str, ablation: str, batch_size: int
    ) -> None:
        """Price latency + energy of cold/dense/sparse ticks at once."""
        from repro.program.cache import get_plan_cache

        cache = get_plan_cache()
        key = (model, ablation, batch_size)
        config = ExionConfig.for_model(model).ablation(ablation)
        spec = get_spec(model)
        profile = self._profile(model)

        def t(iterations: int) -> tuple:
            plan = cache.plan(
                spec, config=config, iterations=iterations,
                batch=batch_size,
            )
            report = cache.price(self.accelerator, plan, profile)
            return report.latency_s, report.energy_j

        cold, cold_e = t(1)
        period = (
            config.sparse_iters_n + 1 if config.enable_ffn_reuse else 1
        )
        if period == 1:
            two, two_e = t(2)
            dense = max(0.0, two - cold)
            dense_e = max(0.0, two_e - cold_e)
            sparse = dense  # no sparse iterations exist; same price
            sparse_e = dense_e
        else:
            two, two_e = t(2)
            sparse = max(0.0, two - cold)
            sparse_e = max(0.0, two_e - cold_e)
            after, after_e = t(period + 1)
            at, at_e = t(period)
            dense = max(0.0, after - at)
            dense_e = max(0.0, after_e - at_e)
        self._tick_latencies[key] = {
            "cold": cold, "dense": dense, "sparse": sparse,
        }
        self._tick_energies[key] = {
            "cold": cold_e, "dense": dense_e, "sparse": sparse_e,
        }


@dataclass(frozen=True)
class DroppedRequest:
    """A queued request abandoned at its SLO timeout or deadline.

    Only expiry produces records (admission control rejects at the door
    and is tallied as a bare counter on the replica).
    """

    model: str
    ablation: str
    reason: str  # "timeout" or "deadline"
    dropped_at_s: float
    waited_s: float = 0.0


@dataclass
class Dispatch:
    """One micro-batch the replica started executing.

    ``phase`` is the tick phase of a continuous dispatch ("dense" /
    "sparse") or ``"batch"`` for a drain-mode micro-batch; ``cold_s``
    is the cold-start surcharge included in ``service_s`` (0 when
    warm); ``members`` lists ``(request_id, tenant, priority)`` of the
    batch that actually executed (continuous: live-batch occupancy,
    which exceeds ``served`` whenever runs continue past this tick);
    ``energy_j`` is the simulated energy of the dispatch.
    """

    replica: str
    model: str
    ablation: str
    served: list
    started_s: float
    service_s: float
    phase: str = "batch"
    cold_s: float = 0.0
    members: tuple = ()
    energy_j: float = 0.0

    @property
    def completion_s(self) -> float:
        return self.started_s + self.service_s

    @property
    def batch_size(self) -> int:
        return len(self.served)


class Replica:
    """One accelerator's worth of serving capacity inside the fleet."""

    def __init__(
        self,
        index: int,
        accelerator: Union[str, ExionAccelerator] = "exion24",
        policy: Optional[BatchingPolicy] = None,
        service_model: Optional[ServiceTimeModel] = None,
        execute: bool = False,
        execute_iterations: Optional[int] = None,
        model_seed: int = 0,
        calibration_seed: int = 0,
    ) -> None:
        self.index = index
        self.policy = policy if policy is not None else BatchingPolicy()
        self.service_model = (
            service_model
            if service_model is not None
            else ServiceTimeModel(accelerator)
        )
        self.execute = execute
        self.execute_iterations = execute_iterations
        self.model_seed = model_seed
        self.calibration_seed = calibration_seed
        self.clock = SimClock()
        self.cache = ThresholdCache()
        self.servers: dict = {}  # (model, ablation) -> ExionServer
        self.warm_keys: set = set()
        self._cold_paid: set = set()
        self._last_cold_s = 0.0
        self.busy_until = 0.0
        self._inflight = 0
        self.busy_s = 0.0
        self.requests_served = 0
        self.batches_served = 0
        self.cold_starts = 0
        self.admission_drops = 0
        self.timeout_drops = 0

    @property
    def name(self) -> str:
        return f"replica{self.index}"

    @property
    def accelerator_name(self) -> str:
        return self.service_model.name

    def policy_doc(self) -> dict:
        """Scenario fingerprint of this replica's batching policy."""
        return {
            "max_batch_size": self.policy.max_batch_size,
            "max_wait_s": self.policy.max_wait_s,
        }

    # ------------------------------------------------------------------
    # routing metrics
    # ------------------------------------------------------------------
    def queue_depth(self) -> int:
        """Requests queued and not yet dispatched (excludes in-flight)."""
        return sum(len(server.queue) for server in self.servers.values())

    def load(self, now: float) -> int:
        """Join-shortest-queue load: queued plus in-flight requests."""
        inflight = self._inflight if self.busy_until > now else 0
        return self.queue_depth() + inflight

    def is_warm(self, key: tuple) -> bool:
        """Whether this replica has (or is about to have) ``key`` cached."""
        return key in self.warm_keys

    # ------------------------------------------------------------------
    # event-loop interface
    # ------------------------------------------------------------------
    def _server(self, model: str, ablation: str) -> ExionServer:
        key = (model, ablation)
        if key not in self.servers:
            config = ExionConfig.for_model(model).ablation(ablation)

            def service_time(batch, model=model, ablation=ablation, key=key):
                latency = self.service_model.latency_s(
                    model, ablation, len(batch)
                )
                if self.service_model.cold_start and key not in self._cold_paid:
                    self._cold_paid.add(key)
                    self.cold_starts += 1
                    cold_s = self.service_model.calibration_s(model)
                    self._last_cold_s = cold_s
                    latency += cold_s
                return latency

            self.servers[key] = ExionServer(
                model,
                config=config,
                policy=self.policy,
                cache=self.cache,
                model_seed=self.model_seed,
                total_iterations=self.execute_iterations,
                calibration_seed=self.calibration_seed,
                clock=self.clock,
                service_time=service_time,
                dry_run=not self.execute,
                # Only execute mode has results worth fetching afterwards;
                # dry-run sweeps keep memory flat over long traces.
                retain_results=self.execute,
            )
        return self.servers[key]

    def enqueue(self, request, now: float, max_queue_depth=None) -> bool:
        """Admit (or reject) one routed request at simulated time ``now``."""
        if (
            max_queue_depth is not None
            and self.queue_depth() >= max_queue_depth
        ):
            self.admission_drops += 1
            return False
        self.clock.now = now
        server = self._server(request.model, request.ablation)
        server.submit(
            seed=request.seed,
            prompt=request.prompt,
            class_label=request.class_label,
            tenant=getattr(request, "tenant", "default"),
            priority=getattr(request, "priority", None),
            deadline_s=getattr(request, "deadline_s", None),
        )
        self.warm_keys.add(request.pipeline_key)
        return True

    def expire(self, now: float, timeout_s: Optional[float]) -> list:
        """Drop queued requests past the SLO timeout or their deadline."""
        dropped = []
        for key, server in sorted(self.servers.items()):
            model, ablation = key
            stale = server.queue.expire(now, timeout_s)
            dropped.extend(
                DroppedRequest(
                    model=model,
                    ablation=ablation,
                    reason=(
                        "deadline"
                        if request.deadline_s is not None
                        and now >= request.deadline_s
                        else "timeout"
                    ),
                    dropped_at_s=now,
                    waited_s=now - request.submitted_at,
                )
                for request in stale
            )
            # A key whose every request expired before any batch ran never
            # actually warmed: stop advertising affinity for it, or the
            # router would keep steering traffic at phantom warmth.
            if stale and len(server.queue) == 0 and key not in self._cold_paid:
                self.warm_keys.discard(key)
        self.timeout_drops += len(dropped)
        return dropped

    def _ready_servers(self, now: float) -> list:
        """(head_submitted_at, key, server) for servers with a due batch."""
        ready = []
        for key, server in sorted(self.servers.items()):
            if server.scheduler.ready(now):
                head_submitted = now - server.queue.oldest_wait(now)
                ready.append((head_submitted, key, server))
        return ready

    def _earliest_timeout(
        self, now: float, timeout_s: Optional[float]
    ) -> Optional[float]:
        """When the oldest queued request crosses the SLO timeout."""
        if timeout_s is None:
            return None
        deadline = None
        for _, server in sorted(self.servers.items()):
            if len(server.queue) == 0:
                continue
            head_submitted = now - server.queue.oldest_wait(now)
            due = head_submitted + timeout_s
            deadline = due if deadline is None else min(deadline, due)
        if deadline is None:
            return None
        # Expiry is strict (wait > timeout), so a wake-up at exactly the
        # deadline would drop nothing; one ulp later it does.
        return math.nextafter(deadline, math.inf)

    def next_event_time(
        self, now: float, timeout_s: Optional[float] = None
    ) -> Optional[float]:
        """When this replica next needs attention, or ``None`` if idle.

        ``timeout_s`` is the fleet's SLO timeout: queued requests must be
        swept *at* their deadline (not at the next arrival or max-wait
        fire), so expiry instants are wake-ups too — otherwise a doomed
        tail request would inflate the makespan and drop accounting.
        """
        if self.queue_depth() == 0:
            return None
        deadline = self._earliest_timeout(now, timeout_s)
        if self.busy_until > now:
            fire = self.busy_until
        elif self._ready_servers(now):
            fire = now
        else:
            # Idle, pending but not due: the earliest max-wait expiry.
            fire = None
            for _, server in sorted(self.servers.items()):
                if len(server.queue) == 0:
                    continue
                head_submitted = now - server.queue.oldest_wait(now)
                due = head_submitted + server.scheduler.policy.max_wait_s
                fire = due if fire is None else min(fire, due)
        if fire is None:
            return deadline
        if deadline is None:
            return fire
        return min(fire, deadline)

    def try_dispatch(self, now: float) -> Optional[Dispatch]:
        """Serve one due micro-batch at ``now``; ``None`` if busy/not due."""
        if self.busy_until > now:
            return None
        ready = self._ready_servers(now)
        if not ready:
            return None
        # FIFO across models: serve the batch whose head waited longest.
        _, (model, ablation), server = min(ready)
        self.clock.now = now
        self._last_cold_s = 0.0
        served = server.step()
        if not served:  # pragma: no cover - ready() guarantees a batch
            return None
        service_s = served[0].service_s
        self.busy_until = now + service_s
        self._inflight = len(served)
        self.busy_s += service_s
        self.requests_served += len(served)
        self.batches_served += 1
        return Dispatch(
            replica=self.name,
            model=model,
            ablation=ablation,
            served=served,
            started_s=now,
            service_s=service_s,
            phase="batch",
            cold_s=self._last_cold_s,
            members=tuple(
                (r.request.request_id, r.request.tenant,
                 int(r.request.priority))
                for r in served
            ),
            energy_j=self.service_model.energy_j(
                model, ablation, len(served)
            ),
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def usage(self, makespan_s: float) -> dict:
        """Per-replica accounting row for the cluster report."""
        served = self.requests_served
        return {
            "name": self.name,
            "accelerator": self.accelerator_name,
            "requests_served": served,
            "batches_served": self.batches_served,
            "mean_batch_size": (
                served / self.batches_served if self.batches_served else 0.0
            ),
            "busy_s": self.busy_s,
            "utilization": (
                self.busy_s / makespan_s if makespan_s > 0.0 else 0.0
            ),
            "cold_starts": self.cold_starts,
            "admission_drops": self.admission_drops,
            "timeout_drops": self.timeout_drops,
        }


class ContinuousReplica:
    """A fleet member running iteration-level continuous batching.

    Same event-loop interface as :class:`Replica`, but each
    ``(model, ablation)`` key is served by a
    :class:`~repro.serve.continuous.ContinuousServer` whose live batch
    changes membership between denoising iterations, and each
    :meth:`try_dispatch` executes **one tick** (one iteration of the
    live batch) priced by :meth:`ServiceTimeModel.tick_latency_s`.

    One accelerator holds one model's weights and phase state at a time:
    the replica serves a single *active* key and only switches keys when
    the active key has no in-flight generations (its live batch fully
    drained), picking the key whose head request waited longest.

    Per-generation outputs are the continuous scheduler's responsibility
    (``execute=True`` runs the real numerics, byte-identical to solo
    generation); by default servers are ``dry_run`` cursor machines and
    only the schedule and its tick prices are simulated.
    """

    def __init__(
        self,
        index: int,
        accelerator: Union[str, ExionAccelerator] = "exion24",
        policy=None,
        service_model: Optional[ServiceTimeModel] = None,
        tenant_weights: Optional[dict] = None,
        execute: bool = False,
        execute_iterations: Optional[int] = None,
        model_seed: int = 0,
        calibration_seed: int = 0,
    ) -> None:
        from repro.serve.continuous import ContinuousPolicy

        self.index = index
        self.policy = (
            policy if policy is not None else ContinuousPolicy()
        )
        self.service_model = (
            service_model
            if service_model is not None
            else ServiceTimeModel(accelerator)
        )
        self.tenant_weights = tenant_weights
        self.execute = execute
        self.execute_iterations = execute_iterations
        self.model_seed = model_seed
        self.calibration_seed = calibration_seed
        self.clock = SimClock()
        self.cache = ThresholdCache()
        self.servers: dict = {}  # (model, ablation) -> ContinuousServer
        self.warm_keys: set = set()
        self._cold_paid: set = set()
        self._last_cold_s = 0.0
        self._active_key: Optional[tuple] = None
        self.busy_until = 0.0
        self._inflight = 0
        self.busy_s = 0.0
        self.requests_served = 0
        self.batches_served = 0  # ticks dispatched
        self.cold_starts = 0
        self.admission_drops = 0
        self.timeout_drops = 0

    @property
    def name(self) -> str:
        return f"replica{self.index}"

    @property
    def accelerator_name(self) -> str:
        return self.service_model.name

    def policy_doc(self) -> dict:
        return {
            "mode": "continuous",
            "max_batch_size": self.policy.max_batch_size,
            "quantum": self.policy.quantum,
            "preempt": self.policy.preempt,
        }

    # ------------------------------------------------------------------
    # routing metrics
    # ------------------------------------------------------------------
    def queue_depth(self) -> int:
        return sum(len(server.queue) for server in self.servers.values())

    def active_count(self) -> int:
        return sum(len(server.active) for server in self.servers.values())

    def load(self, now: float) -> int:
        """Queued plus in-flight generations (live batch members)."""
        return self.queue_depth() + self.active_count()

    def is_warm(self, key: tuple) -> bool:
        return key in self.warm_keys

    # ------------------------------------------------------------------
    # event-loop interface
    # ------------------------------------------------------------------
    def _server(self, model: str, ablation: str):
        from repro.serve.continuous import ContinuousServer

        key = (model, ablation)
        if key not in self.servers:
            config = ExionConfig.for_model(model).ablation(ablation)

            def tick_time(batch_size, is_dense, model=model,
                          ablation=ablation, key=key):
                kind = "dense" if is_dense else "sparse"
                latency = self.service_model.tick_latency_s(
                    model, ablation, batch_size, kind
                )
                if self.service_model.cold_start and key not in self._cold_paid:
                    self._cold_paid.add(key)
                    self.cold_starts += 1
                    cold_s = self.service_model.calibration_s(model)
                    self._last_cold_s = cold_s
                    latency += cold_s
                return latency

            self.servers[key] = ContinuousServer(
                model,
                config=config,
                policy=self.policy,
                tenant_weights=self.tenant_weights,
                cache=self.cache,
                model_seed=self.model_seed,
                total_iterations=(
                    self.execute_iterations
                    if self.execute
                    else self.service_model.iterations
                ),
                calibration_seed=self.calibration_seed,
                clock=self.clock,
                tick_time=tick_time,
                dry_run=not self.execute,
                retain_results=self.execute,
            )
        return self.servers[key]

    def enqueue(self, request, now: float, max_queue_depth=None) -> bool:
        """Admit (or reject) one routed request at simulated time ``now``."""
        if (
            max_queue_depth is not None
            and self.queue_depth() >= max_queue_depth
        ):
            self.admission_drops += 1
            return False
        self.clock.now = now
        server = self._server(request.model, request.ablation)
        accepted = server.submit(
            seed=request.seed,
            prompt=request.prompt,
            class_label=request.class_label,
            tenant=getattr(request, "tenant", "default"),
            priority=getattr(request, "priority", None),
            deadline_s=getattr(request, "deadline_s", None),
        )
        if accepted is None:  # server-side admission (depth / SLA) reject
            self.admission_drops += 1
            return False
        self.warm_keys.add(request.pipeline_key)
        return True

    def _collect_drops(self, now: float) -> list:
        dropped = []
        for key, server in sorted(self.servers.items()):
            model, ablation = key
            for request, reason in server.pop_dropped():
                dropped.append(DroppedRequest(
                    model=model,
                    ablation=ablation,
                    reason=reason,
                    dropped_at_s=now,
                    waited_s=max(0.0, now - request.submitted_at),
                ))
        self.timeout_drops += len(dropped)
        return dropped

    def expire(self, now: float, timeout_s: Optional[float]) -> list:
        """Sweep queue timeouts/deadlines across every key's fair queue."""
        for _, server in sorted(self.servers.items()):
            server.expire_queued(now, timeout_s=timeout_s)
        return self._collect_drops(now)

    def _choose_key(self, now: float) -> Optional[tuple]:
        if self._active_key is not None:
            server = self.servers[self._active_key]
            if server.active:
                return self._active_key  # mid-generation: no model swap
            if not server.has_work:
                self._active_key = None
        best = None
        for key, server in sorted(self.servers.items()):
            if not server.has_work:
                continue
            head_submitted = now - server.queue.oldest_wait(now)
            if server.active:  # pragma: no cover - single active key
                head_submitted = -math.inf
            candidate = (head_submitted, key)
            if best is None or candidate < best:
                best = candidate
        if best is None:
            return None
        self._active_key = best[1]
        return best[1]

    def _earliest_timeout(
        self, now: float, timeout_s: Optional[float]
    ) -> Optional[float]:
        """When a queued request next crosses its timeout or deadline."""
        due = None
        for _, server in sorted(self.servers.items()):
            for entry in server.queue.entries():
                candidates = []
                if timeout_s is not None:
                    # Expiry is strict (wait > timeout): one ulp later.
                    candidates.append(math.nextafter(
                        entry.request.submitted_at + timeout_s, math.inf
                    ))
                if entry.request.deadline_s is not None:
                    candidates.append(entry.request.deadline_s)
                for when in candidates:
                    due = when if due is None else min(due, when)
        return due

    def next_event_time(
        self, now: float, timeout_s: Optional[float] = None
    ) -> Optional[float]:
        """When this replica next needs attention, or ``None`` if idle."""
        if not any(s.has_work for s in self.servers.values()):
            return None
        deadline = self._earliest_timeout(now, timeout_s)
        fire = self.busy_until if self.busy_until > now else now
        if deadline is None:
            return fire
        return min(fire, deadline)

    def try_dispatch(self, now: float) -> Optional[Dispatch]:
        """Run one tick of the active key's live batch at ``now``."""
        if self.busy_until > now:
            return None
        key = self._choose_key(now)
        if key is None:
            return None
        model, ablation = key
        server = self.servers[key]
        self.clock.now = now
        self._last_cold_s = 0.0
        served = server.step(now=now)
        self._collect_drops(now)
        tick_s = server.last_tick_s
        if tick_s == 0.0 and not served and not server.active:
            # The rebalance admitted nothing (everything expired): no
            # tick actually ran, nothing to account.
            return None
        self.busy_until = now + tick_s
        self._inflight = len(server.active) + len(served)
        self.busy_s += tick_s
        self.requests_served += len(served)
        self.batches_served += 1
        members = tuple(server.last_tick_members)
        phase = server.last_tick_phase or "batch"
        energy_j = 0.0
        if members and server.last_tick_phase:
            energy_j = self.service_model.tick_energy_j(
                model, ablation, len(members), server.last_tick_phase
            )
        return Dispatch(
            replica=self.name,
            model=model,
            ablation=ablation,
            served=served,
            started_s=now,
            service_s=tick_s,
            phase=phase,
            cold_s=self._last_cold_s,
            members=members,
            energy_j=energy_j,
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def usage(self, makespan_s: float) -> dict:
        reports = [s.report() for _, s in sorted(self.servers.items())]
        ticks = sum(r.ticks for r in reports)
        occupancy = sum(r.occupancy_ticks for r in reports)
        return {
            "name": self.name,
            "accelerator": self.accelerator_name,
            "requests_served": self.requests_served,
            "batches_served": self.batches_served,
            "mean_batch_size": occupancy / ticks if ticks else 0.0,
            "busy_s": self.busy_s,
            "utilization": (
                self.busy_s / makespan_s if makespan_s > 0.0 else 0.0
            ),
            "cold_starts": self.cold_starts,
            "admission_drops": self.admission_drops,
            "timeout_drops": self.timeout_drops,
            "ticks": ticks,
            "mean_occupancy": occupancy / ticks if ticks else 0.0,
            "joins": sum(r.joins for r in reports),
            "preemptions": sum(r.preemptions for r in reports),
            "deadline_evictions": sum(r.deadline_evictions for r in reports),
        }


__all__ = [
    "ACCELERATORS",
    "ContinuousReplica",
    "Dispatch",
    "DroppedRequest",
    "Replica",
    "ServiceTimeModel",
    "SimClock",
    "make_accelerator",
]
