"""The cluster run's published result: totals, tails, per-replica usage.

A :class:`ClusterReport` is everything one fleet simulation produced, in
plain JSON-serializable types. Serialization is canonical
(:meth:`ClusterReport.to_json` sorts keys and fixes separators), so two
runs over the same trace and seed emit **byte-identical** documents —
the determinism contract the cluster bench gates on.

:meth:`ClusterReport.to_bench_result` projects the report onto the
:class:`repro.bench.BenchResult` schema, so cluster scenarios flow
through the same ``BENCH_<name>.json`` artifacts, baseline comparisons
and CI gating as every other bench in the repo.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.report import format_table

#: Column headers of the per-replica usage table, shared by the rendered
#: report and the ``repro.bench`` series so they cannot desynchronize.
REPLICA_USAGE_HEADERS = [
    "replica", "accelerator", "served", "batches", "mean batch",
    "utilization", "cold starts", "drops",
]


@dataclass
class ClusterReport:
    """Aggregate outcome of one trace-driven fleet simulation."""

    scenario: dict = field(default_factory=dict)
    submitted: int = 0
    served: int = 0
    admission_drops: int = 0
    timeout_drops: int = 0
    makespan_s: float = 0.0
    latency: dict = field(default_factory=dict)
    slo_attainment: Optional[float] = None
    replicas: list = field(default_factory=list)
    executed: bool = False

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        return self.admission_drops + self.timeout_drops

    @property
    def drop_rate(self) -> float:
        if self.submitted == 0:
            return 0.0
        return self.dropped / self.submitted

    @property
    def samples_per_s(self) -> float:
        """Aggregate fleet throughput in *simulated* seconds."""
        if self.makespan_s <= 0.0:
            return 0.0
        return self.served / self.makespan_s

    @property
    def mean_utilization(self) -> float:
        if not self.replicas:
            return 0.0
        return sum(r["utilization"] for r in self.replicas) / len(self.replicas)

    # ------------------------------------------------------------------
    # serialization (canonical, byte-stable per seed)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "submitted": self.submitted,
            "served": self.served,
            "admission_drops": self.admission_drops,
            "timeout_drops": self.timeout_drops,
            "drop_rate": self.drop_rate,
            "makespan_s": self.makespan_s,
            "samples_per_s": self.samples_per_s,
            "latency": dict(self.latency),
            "slo_attainment": self.slo_attainment,
            "replicas": [dict(r) for r in self.replicas],
            "executed": self.executed,
        }

    def to_json(self) -> str:
        """Canonical JSON: key-sorted, fixed separators, trailing newline."""
        return (
            json.dumps(
                self.to_dict(),
                sort_keys=True,
                separators=(",", ":"),
                allow_nan=False,
            )
            + "\n"
        )

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterReport":
        return cls(
            scenario=dict(data.get("scenario", {})),
            submitted=int(data["submitted"]),
            served=int(data["served"]),
            admission_drops=int(data.get("admission_drops", 0)),
            timeout_drops=int(data.get("timeout_drops", 0)),
            makespan_s=float(data.get("makespan_s", 0.0)),
            latency=dict(data.get("latency", {})),
            slo_attainment=data.get("slo_attainment"),
            replicas=[dict(r) for r in data.get("replicas", [])],
            executed=bool(data.get("executed", False)),
        )

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def summary_rows(self) -> list:
        """Headline rows for the fleet-level table."""
        lat = self.latency
        rows = [
            ["submitted", self.submitted],
            ["served", self.served],
            ["admission drops", self.admission_drops],
            ["timeout drops", self.timeout_drops],
            ["makespan", f"{self.makespan_s:.3f} s"],
            ["throughput", f"{self.samples_per_s:.2f} samples/s (sim)"],
            ["latency p50", f"{lat.get('latency_p50_s', 0.0) * 1e3:.2f} ms"],
            ["latency p95", f"{lat.get('latency_p95_s', 0.0) * 1e3:.2f} ms"],
            ["latency p99", f"{lat.get('latency_p99_s', 0.0) * 1e3:.2f} ms"],
            ["queue wait p99", f"{lat.get('wait_p99_s', 0.0) * 1e3:.2f} ms"],
            ["mean service", f"{lat.get('service_mean_s', 0.0) * 1e3:.2f} ms"],
        ]
        if self.slo_attainment is not None:
            rows.append(["SLO attainment", f"{self.slo_attainment * 100:.1f}%"])
        return rows

    def replica_rows(self) -> list:
        return [
            [
                r["name"],
                r["accelerator"],
                r["requests_served"],
                r["batches_served"],
                f"{r['mean_batch_size']:.2f}",
                f"{r['utilization'] * 100:.1f}%",
                r["cold_starts"],
                r["admission_drops"] + r["timeout_drops"],
            ]
            for r in self.replicas
        ]

    def render(self) -> str:
        """Printable report: fleet summary plus per-replica usage."""
        title = (
            f"Cluster: {self.scenario.get('router', '?')} routing, "
            f"{len(self.replicas)} x "
            f"{self.scenario.get('accelerator', '?')}"
        )
        fleet = format_table(["metric", "value"], self.summary_rows(),
                             title=title)
        per_replica = format_table(
            REPLICA_USAGE_HEADERS,
            self.replica_rows(),
            title="Per-replica usage",
        )
        return fleet + "\n\n" + per_replica

    # ------------------------------------------------------------------
    # repro.bench projection
    # ------------------------------------------------------------------
    def to_bench_result(self, name: str, tags=("cluster",)):
        """Project onto the bench schema (validates on round-trip)."""
        from repro.bench import BenchResult

        lat = self.latency
        result = BenchResult(
            name=name,
            model=",".join(self.scenario.get("models", [])) or "mix",
            tags=tuple(tags),
        )
        result.add_metric(
            "samples_per_s", self.samples_per_s, unit="samples/s",
            direction="higher_better", tolerance=0.05,
        )
        result.add_metric(
            "latency_p50_s", lat.get("latency_p50_s", 0.0), unit="s",
            direction="lower_better", tolerance=0.05,
        )
        result.add_metric(
            "latency_p95_s", lat.get("latency_p95_s", 0.0), unit="s",
            direction="lower_better", tolerance=0.05,
        )
        result.add_metric(
            "latency_p99_s", lat.get("latency_p99_s", 0.0), unit="s",
            direction="lower_better", tolerance=0.05,
        )
        # Drop rate and attainment are quantized in whole requests, so a
        # one-request shift (e.g. cross-version RNG stream drift) moves
        # them by a large relative step on small traces; their gates are
        # correspondingly loose.
        result.add_metric(
            "drop_rate", self.drop_rate,
            direction="lower_better", tolerance=0.10,
        )
        result.add_metric(
            "mean_utilization", self.mean_utilization,
            direction="higher_better", tolerance=0.10,
        )
        if self.slo_attainment is not None:
            result.add_metric(
                "slo_attainment", self.slo_attainment,
                direction="higher_better", tolerance=0.25,
            )
        result.add_series(
            "Fleet summary",
            ["metric", "value"],
            [[k, str(v)] for k, v in self.summary_rows()],
        )
        result.add_series(
            "Per-replica usage",
            REPLICA_USAGE_HEADERS,
            self.replica_rows(),
        )
        result.add_note(
            "scenario: "
            + json.dumps(self.scenario, sort_keys=True)
        )
        return result


__all__ = ["ClusterReport", "REPLICA_USAGE_HEADERS"]
