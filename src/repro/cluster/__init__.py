"""Trace-driven multi-accelerator fleet simulation.

The paper evaluates distinct deployment points (EXION4 edge, EXION24
server, EXION42 — Table II); this package scales the reproduction from
one synchronous :class:`~repro.serve.server.ExionServer` to a *fleet* of
them, fed by open-loop traffic and measured on the axes a serving
operator cares about — tail latency, queue wait, utilization, drops:

- :mod:`repro.cluster.traffic` — arrival processes (Poisson, bursty
  MMPP, diurnal ramp, replayable trace files) and workload mixes over
  the model zoo;
- :mod:`repro.cluster.replica` — an accelerator-backed replica whose
  batching comes from the real serving layer and whose service times
  come from the :class:`~repro.hw.accelerator.ExionAccelerator` latency
  model (no wall clock anywhere);
- :mod:`repro.cluster.router` — round-robin, join-shortest-queue and
  cache-affinity routing policies;
- :mod:`repro.cluster.slo` — latency targets, timeouts, admission
  control, deterministic percentile accounting;
- :mod:`repro.cluster.simulator` — the discrete-event loop;
- :mod:`repro.cluster.report` — :class:`ClusterReport`, canonical
  (byte-stable) JSON, and the projection onto the ``repro.bench`` schema.

Quickstart::

    from repro.cluster import (
        PoissonProcess, SLOPolicy, build_replicas, make_router,
        simulate_cluster, synthesize_trace,
    )

    trace = synthesize_trace(PoissonProcess(rate_rps=200.0), 64, rng=0)
    report = simulate_cluster(
        trace,
        replicas=build_replicas(4, accelerator="exion24"),
        router=make_router("jsq"),
        slo=SLOPolicy(latency_target_s=0.5),
    )
    print(report.render())

Everything is deterministic per seed: the same trace and fleet produce
byte-identical :meth:`ClusterReport.to_json` documents. See
``benchmarks/bench_cluster_scaling.py`` for the replica-scaling bench
and ``python -m repro cluster`` for the CLI.
"""

from repro.cluster.replica import (
    ACCELERATORS,
    ContinuousReplica,
    Dispatch,
    DroppedRequest,
    Replica,
    ServiceTimeModel,
    SimClock,
    make_accelerator,
)
from repro.cluster.report import ClusterReport
from repro.cluster.router import (
    ROUTERS,
    CacheAffinityRouter,
    JoinShortestQueueRouter,
    RoundRobinRouter,
    Router,
    make_router,
)
from repro.cluster.simulator import (
    ClusterSimulator,
    build_replicas,
    simulate_cluster,
)
from repro.cluster.slo import LatencyAccumulator, SLOPolicy, percentile
from repro.cluster.traffic import (
    ArrivalProcess,
    ClusterRequest,
    DiurnalProcess,
    MMPPProcess,
    PoissonProcess,
    TraceProcess,
    WorkloadMix,
    load_trace,
    save_trace,
    synthesize_trace,
)

__all__ = [
    "ACCELERATORS",
    "ArrivalProcess",
    "CacheAffinityRouter",
    "ClusterReport",
    "ClusterRequest",
    "ClusterSimulator",
    "ContinuousReplica",
    "Dispatch",
    "DiurnalProcess",
    "DroppedRequest",
    "JoinShortestQueueRouter",
    "LatencyAccumulator",
    "MMPPProcess",
    "PoissonProcess",
    "ROUTERS",
    "Replica",
    "RoundRobinRouter",
    "Router",
    "SLOPolicy",
    "ServiceTimeModel",
    "SimClock",
    "TraceProcess",
    "WorkloadMix",
    "build_replicas",
    "load_trace",
    "make_accelerator",
    "make_router",
    "percentile",
    "save_trace",
    "simulate_cluster",
    "synthesize_trace",
]
