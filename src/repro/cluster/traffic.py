"""Open-loop traffic: arrival processes, workload mixes, trace files.

The cluster simulator is *open loop*: requests arrive on their own
schedule whether or not the fleet keeps up (the regime where queueing
delay and tail latency emerge). This module synthesizes that schedule:

- :class:`PoissonProcess` — memoryless arrivals at a constant rate, the
  classic open-loop baseline;
- :class:`MMPPProcess` — a two-state Markov-modulated Poisson process
  (calm/burst), the standard bursty-traffic model;
- :class:`DiurnalProcess` — a sinusoidal rate ramp (thinning against the
  peak rate), emulating a day/night load cycle compressed to ``period_s``;
- :class:`TraceProcess` — replay of explicit arrival instants.

:func:`synthesize_trace` turns an arrival process plus a
:class:`WorkloadMix` over the model zoo into concrete
:class:`ClusterRequest` records, and :func:`save_trace` /
:func:`load_trace` round-trip them through JSON-lines files so a
measured or synthesized trace can be replayed bit-for-bit.

All randomness flows from one explicit seed/``Generator`` (see
:func:`repro.workloads.generator.as_rng`): the same seed always yields
the same trace.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.workloads.generator import as_rng
from repro.workloads.specs import get_spec

#: Seeds drawn for individual requests stay below this bound.
_SEED_BOUND = 2**31 - 1


@dataclass(frozen=True)
class ClusterRequest:
    """One timestamped generation request flowing into the fleet.

    ``arrival_s`` is simulated time (seconds since the run started);
    ``model``/``ablation`` identify the pipeline the request needs (the
    cache-affinity key); ``seed``/``class_label``/``prompt`` are the
    generation inputs an :class:`~repro.serve.server.ExionServer` expects.
    ``tenant``/``priority``/``deadline_s`` feed the continuous
    scheduler's fair queuing, preemption, and SLA admission
    (:class:`~repro.serve.continuous.ContinuousServer`); the drain-style
    replicas ignore them. ``deadline_s`` is absolute simulated time.
    """

    arrival_s: float
    model: str
    seed: int = 0
    class_label: Optional[int] = None
    prompt: Optional[str] = None
    ablation: str = "all"
    tenant: str = "default"
    priority: int = 1  # Priority.STANDARD (int to keep JSON round-trips flat)
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0.0:
            raise ValueError("arrival_s must be >= 0")
        if self.deadline_s is not None and self.deadline_s < self.arrival_s:
            raise ValueError("deadline_s must be >= arrival_s")

    @property
    def pipeline_key(self) -> tuple:
        """Identity of the served pipeline: what cache affinity keys on."""
        return (self.model, self.ablation)


# ----------------------------------------------------------------------
# arrival processes
# ----------------------------------------------------------------------
class ArrivalProcess:
    """Base class: a deterministic-given-RNG stream of arrival instants."""

    name = "arrivals"

    def times(self, n: int, rng: Union[int, np.random.Generator]) -> list:
        """The first ``n`` arrival instants (sorted, seconds)."""
        raise NotImplementedError

    def describe(self) -> dict:
        """Scenario fingerprint for reports (stable, JSON-serializable)."""
        return {"process": self.name}


class PoissonProcess(ArrivalProcess):
    """Constant-rate memoryless arrivals (exponential inter-arrival gaps)."""

    name = "poisson"

    def __init__(self, rate_rps: float) -> None:
        if rate_rps <= 0.0:
            raise ValueError("rate_rps must be > 0")
        self.rate_rps = float(rate_rps)

    def times(self, n: int, rng: Union[int, np.random.Generator]) -> list:
        rng = as_rng(rng)
        gaps = rng.exponential(1.0 / self.rate_rps, size=n)
        return np.cumsum(gaps).tolist()

    def describe(self) -> dict:
        return {"process": self.name, "rate_rps": self.rate_rps}


class MMPPProcess(ArrivalProcess):
    """Two-state Markov-modulated Poisson process: calm vs. burst.

    The process alternates between a low-rate and a high-rate state with
    exponentially distributed dwell times — the textbook model for bursty
    request traffic.
    """

    name = "mmpp"

    def __init__(
        self,
        rate_low_rps: float,
        rate_high_rps: float,
        mean_dwell_s: float = 1.0,
    ) -> None:
        if rate_low_rps <= 0.0 or rate_high_rps <= 0.0:
            raise ValueError("rates must be > 0")
        if mean_dwell_s <= 0.0:
            raise ValueError("mean_dwell_s must be > 0")
        self.rate_low_rps = float(rate_low_rps)
        self.rate_high_rps = float(rate_high_rps)
        self.mean_dwell_s = float(mean_dwell_s)

    def times(self, n: int, rng: Union[int, np.random.Generator]) -> list:
        rng = as_rng(rng)
        out: list = []
        t = 0.0
        high = False
        state_ends = float(rng.exponential(self.mean_dwell_s))
        while len(out) < n:
            rate = self.rate_high_rps if high else self.rate_low_rps
            t_next = t + float(rng.exponential(1.0 / rate))
            if t_next >= state_ends:
                # No arrival before the state flips; advance the phase.
                t = state_ends
                state_ends = t + float(rng.exponential(self.mean_dwell_s))
                high = not high
                continue
            t = t_next
            out.append(t)
        return out

    def describe(self) -> dict:
        return {
            "process": self.name,
            "rate_low_rps": self.rate_low_rps,
            "rate_high_rps": self.rate_high_rps,
            "mean_dwell_s": self.mean_dwell_s,
        }


class DiurnalProcess(ArrivalProcess):
    """Sinusoidal rate ramp between ``base`` and ``peak`` over a period.

    Implemented by thinning a peak-rate Poisson stream: candidate
    arrivals are kept with probability ``rate(t) / peak``, which yields a
    non-homogeneous Poisson process with the sinusoidal intensity.
    """

    name = "diurnal"

    def __init__(
        self,
        base_rate_rps: float,
        peak_rate_rps: float,
        period_s: float = 60.0,
    ) -> None:
        if base_rate_rps <= 0.0 or peak_rate_rps < base_rate_rps:
            raise ValueError("need 0 < base_rate_rps <= peak_rate_rps")
        if period_s <= 0.0:
            raise ValueError("period_s must be > 0")
        self.base_rate_rps = float(base_rate_rps)
        self.peak_rate_rps = float(peak_rate_rps)
        self.period_s = float(period_s)

    def rate_at(self, t: float) -> float:
        """Instantaneous intensity: base at t=0, peak half a period later."""
        swing = self.peak_rate_rps - self.base_rate_rps
        phase = (1.0 - np.cos(2.0 * np.pi * t / self.period_s)) / 2.0
        return self.base_rate_rps + swing * float(phase)

    def times(self, n: int, rng: Union[int, np.random.Generator]) -> list:
        rng = as_rng(rng)
        out: list = []
        t = 0.0
        while len(out) < n:
            t += float(rng.exponential(1.0 / self.peak_rate_rps))
            if rng.random() <= self.rate_at(t) / self.peak_rate_rps:
                out.append(t)
        return out

    def describe(self) -> dict:
        return {
            "process": self.name,
            "base_rate_rps": self.base_rate_rps,
            "peak_rate_rps": self.peak_rate_rps,
            "period_s": self.period_s,
        }


class TraceProcess(ArrivalProcess):
    """Replay of explicit arrival instants (e.g. from a measured trace)."""

    name = "trace"

    def __init__(self, instants: Sequence[float]) -> None:
        self.instants = sorted(float(t) for t in instants)
        if self.instants and self.instants[0] < 0.0:
            raise ValueError("trace instants must be >= 0")

    def times(self, n: int, rng: Union[int, np.random.Generator]) -> list:
        if n > len(self.instants):
            raise ValueError(
                f"trace holds {len(self.instants)} arrivals, {n} requested"
            )
        return list(self.instants[:n])

    def describe(self) -> dict:
        return {"process": self.name, "arrivals": len(self.instants)}


# ----------------------------------------------------------------------
# workload mix and trace synthesis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadMix:
    """Which models (and ablation) arriving requests ask for.

    ``weights`` are relative sampling weights (uniform when omitted);
    ``label_count`` bounds the random class labels drawn per request.
    """

    models: tuple = ("dit",)
    weights: Optional[tuple] = None
    ablation: str = "all"
    label_count: int = 1000

    def __post_init__(self) -> None:
        if not self.models:
            raise ValueError("need at least one model")
        for name in self.models:
            get_spec(name)  # raises KeyError for unknown models
        if self.weights is not None and len(self.weights) != len(self.models):
            raise ValueError("weights must match models")
        if self.label_count < 1:
            raise ValueError("label_count must be >= 1")

    def probabilities(self) -> np.ndarray:
        if self.weights is None:
            return np.full(len(self.models), 1.0 / len(self.models))
        w = np.asarray(self.weights, dtype=float)
        if (w < 0).any() or w.sum() <= 0:
            raise ValueError("weights must be non-negative, sum > 0")
        return w / w.sum()

    def describe(self) -> dict:
        return {
            "models": list(self.models),
            "weights": None if self.weights is None else list(self.weights),
            "ablation": self.ablation,
        }


def synthesize_trace(
    process: ArrivalProcess,
    n: int,
    mix: Optional[WorkloadMix] = None,
    rng: Union[int, np.random.Generator] = 0,
    deadline_s: Optional[float] = None,
    tenants: Optional[Sequence[str]] = None,
) -> list:
    """Materialize ``n`` requests: arrival times from ``process``, models
    and generation inputs from ``mix``, all driven by one RNG.

    ``deadline_s`` attaches a *relative* completion deadline to every
    request (absolute deadline = arrival + ``deadline_s``); ``tenants``
    assigns tenant names round-robin — both feed the continuous
    scheduler's SLA and fair-queuing machinery.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if deadline_s is not None and deadline_s <= 0.0:
        raise ValueError("deadline_s must be > 0")
    mix = mix if mix is not None else WorkloadMix()
    rng = as_rng(rng)
    instants = process.times(n, rng)
    probs = mix.probabilities()
    picks = rng.choice(len(mix.models), size=n, p=probs)
    seeds = rng.integers(0, _SEED_BOUND, size=n)
    labels = rng.integers(0, mix.label_count, size=n)
    return [
        ClusterRequest(
            arrival_s=float(instants[i]),
            model=mix.models[int(picks[i])],
            seed=int(seeds[i]),
            class_label=int(labels[i]),
            ablation=mix.ablation,
            tenant=(
                "default" if not tenants else tenants[i % len(tenants)]
            ),
            deadline_s=(
                None if deadline_s is None
                else float(instants[i]) + deadline_s
            ),
        )
        for i in range(n)
    ]


def save_trace(path, requests: Iterable[ClusterRequest]) -> None:
    """Write requests as JSON lines (one request per line, key-sorted)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for request in requests:
            fh.write(json.dumps(asdict(request), sort_keys=True) + "\n")


def load_trace(path) -> list:
    """Read a JSON-lines trace back into :class:`ClusterRequest` records."""
    path = Path(path)
    requests = []
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            requests.append(ClusterRequest(**json.loads(line)))
    return sorted(requests, key=lambda r: r.arrival_s)


__all__ = [
    "ArrivalProcess",
    "ClusterRequest",
    "DiurnalProcess",
    "MMPPProcess",
    "PoissonProcess",
    "TraceProcess",
    "WorkloadMix",
    "load_trace",
    "save_trace",
    "synthesize_trace",
]
