"""Conditioning encoders standing in for CLIP / CLAP.

The paper runs a transformer conditioning network once per prompt to embed
text, sound or class labels, then feeds those embeddings to the denoising
network via cross-attention (Fig. 2). This module provides a deterministic
pure-numpy equivalent: a hash tokenizer plus a small transformer encoder.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.network import timestep_embedding
from repro.models.norm import LayerNorm
from repro.models.transformer import TransformerBlock


def hash_tokenize(prompt: str, vocab_size: int, max_tokens: int) -> np.ndarray:
    """Deterministically map a prompt to token ids via per-word hashing."""
    words = prompt.lower().split()
    ids = []
    for word in words[:max_tokens]:
        acc = 2166136261
        for ch in word.encode("utf-8"):
            acc = ((acc ^ ch) * 16777619) & 0xFFFFFFFF
        ids.append(acc % vocab_size)
    if not ids:
        ids = [0]
    return np.asarray(ids, dtype=np.int64)


class ConditioningEncoder:
    """Small transformer encoder producing ``(max_tokens, dim)`` embeddings."""

    def __init__(
        self,
        dim: int,
        max_tokens: int = 16,
        depth: int = 2,
        num_heads: int = 4,
        vocab_size: int = 4096,
        seed: int = 1234,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.dim = dim
        self.max_tokens = max_tokens
        self.vocab_size = vocab_size
        self.embedding = rng.normal(0.0, 0.02, size=(vocab_size, dim))
        self.blocks = [
            TransformerBlock(dim, num_heads, 4, rng) for _ in range(depth)
        ]
        self.final_norm = LayerNorm(dim)

    def encode_ids(self, ids: np.ndarray) -> np.ndarray:
        """Embed token ids, padded/truncated to ``max_tokens``."""
        ids = np.asarray(ids, dtype=np.int64) % self.vocab_size
        ids = ids[: self.max_tokens]
        h = self.embedding[ids]
        positions = np.stack(
            [timestep_embedding(i, self.dim) for i in range(len(ids))]
        )
        h = h + 0.1 * positions
        for block in self.blocks:
            h, _ = block(h)
        h = self.final_norm(h)
        if h.shape[0] < self.max_tokens:
            pad = np.zeros((self.max_tokens - h.shape[0], self.dim))
            h = np.concatenate([h, pad], axis=0)
        return h

    def encode(self, prompt: str) -> np.ndarray:
        """Embed a text prompt."""
        return self.encode_ids(hash_tokenize(prompt, self.vocab_size, self.max_tokens))

    def encode_class(self, label: int) -> np.ndarray:
        """Embed a class label (DiT-style class conditioning)."""
        return self.encode_ids(np.asarray([label]))


def make_conditioning(
    context_dim: Optional[int], seed: int = 1234
) -> Optional[ConditioningEncoder]:
    """Build an encoder when the model spec calls for cross-attention."""
    if context_dim is None:
        return None
    return ConditioningEncoder(context_dim, seed=seed)
