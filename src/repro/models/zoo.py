"""Benchmark model zoo: builds runnable networks from the specs.

The seven ``BENCHMARK_MODELS`` mirror the paper's Table I workloads at
simulation scale. Weights are random but deterministic per seed; the
sparsity phenomena EXION exploits (temporal redundancy across denoising
iterations, concentrated attention rows) emerge from the denoising
dynamics, not from training.

Beyond Table I, :data:`repro.workloads.specs.EXTENDED_ORDER` registers
extra scenarios (a video-DiT spec with temporal attention, an SDXL-class
UNet). :func:`build_model` builds them like any other name — the lowering
pipeline (:mod:`repro.program`) is what makes every backend price them
with zero per-model code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.models.conditioning import ConditioningEncoder, make_conditioning
from repro.models.network import DiffusionNetwork, NetworkType
from repro.models.pipeline import DiffusionPipeline
from repro.models.scheduler import DDIMScheduler
from repro.workloads.specs import BENCHMARK_ORDER, ModelSpec, get_spec

BENCHMARK_MODELS = BENCHMARK_ORDER


@dataclass
class BenchmarkModel:
    """A runnable benchmark model: spec, network, scheduler, conditioning."""

    spec: ModelSpec
    network: DiffusionNetwork
    scheduler: DDIMScheduler
    conditioning: Optional[ConditioningEncoder]

    @property
    def name(self) -> str:
        return self.spec.name

    def make_pipeline(self) -> DiffusionPipeline:
        """Create an inference pipeline at the spec's iteration count."""
        return DiffusionPipeline(
            self.network,
            self.scheduler,
            num_inference_steps=self.spec.total_iterations,
            conditioning=self.conditioning,
        )


def build_model(
    name: str,
    seed: int = 0,
    total_iterations: Optional[int] = None,
    depth: Optional[int] = None,
) -> BenchmarkModel:
    """Build a benchmark model by name (see ``BENCHMARK_MODELS``).

    ``total_iterations`` and ``depth`` override the spec for faster tests.
    """
    spec = get_spec(name)
    if total_iterations is not None or depth is not None:
        spec = _override(spec, total_iterations=total_iterations, depth=depth)
    rng = np.random.default_rng(seed)
    network = DiffusionNetwork(
        NetworkType(spec.network_type),
        tokens=spec.tokens,
        dim=spec.dim,
        num_heads=spec.num_heads,
        depth=spec.depth,
        ffn_mult=spec.ffn_mult,
        rng=rng,
        activation=spec.activation,
        context_dim=spec.context_dim,
        use_adaln=spec.use_adaln,
    )
    scheduler = DDIMScheduler()
    conditioning = make_conditioning(spec.context_dim, seed=seed + 1)
    return BenchmarkModel(
        spec=spec, network=network, scheduler=scheduler, conditioning=conditioning
    )


def _override(
    spec: ModelSpec,
    total_iterations: Optional[int] = None,
    depth: Optional[int] = None,
) -> ModelSpec:
    from dataclasses import replace

    changes = {}
    if total_iterations is not None:
        changes["total_iterations"] = total_iterations
    if depth is not None:
        changes["depth"] = depth
    return replace(spec, **changes)


def model_cache_key(
    name: str,
    seed: int = 0,
    total_iterations: Optional[int] = None,
    depth: Optional[int] = None,
) -> tuple:
    """Hashable identity of a :func:`build_model` call.

    Two calls with the same key build behaviorally identical models
    (weights are deterministic per seed), which is what lets the serving
    layer's :class:`repro.serve.cache.ThresholdCache` reuse built models
    and calibrated threshold tables across requests. The name is validated
    eagerly, so a bad model name fails at server construction, not
    mid-batch.
    """
    get_spec(name)  # raises KeyError for unknown models
    return (name, seed, total_iterations, depth)


def build_all(seed: int = 0) -> dict[str, BenchmarkModel]:
    """Build every benchmark model (used by full-suite benches)."""
    return {name: build_model(name, seed=seed) for name in BENCHMARK_ORDER}
