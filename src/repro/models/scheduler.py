"""Denoising schedulers (DDPM and DDIM).

Both operate on a 1000-step linear-beta training schedule and expose a
subsampled inference trajectory, matching the benchmark models' 50- and
100-step settings (paper Table I).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class _BaseScheduler:
    def __init__(
        self,
        num_train_timesteps: int = 1000,
        beta_start: float = 1e-4,
        beta_end: float = 0.02,
    ) -> None:
        if num_train_timesteps < 2:
            raise ValueError("need at least 2 train timesteps")
        self.num_train_timesteps = num_train_timesteps
        self.betas = np.linspace(beta_start, beta_end, num_train_timesteps)
        self.alphas = 1.0 - self.betas
        self.alphas_cumprod = np.cumprod(self.alphas)

    def timesteps(self, num_inference_steps: int) -> np.ndarray:
        """Descending inference timesteps subsampled from the train schedule."""
        if not 1 <= num_inference_steps <= self.num_train_timesteps:
            raise ValueError(
                f"num_inference_steps must be in [1, {self.num_train_timesteps}]"
            )
        step = self.num_train_timesteps // num_inference_steps
        ts = (np.arange(num_inference_steps) * step).round().astype(int)
        return ts[::-1].copy()

    def add_noise(
        self, sample: np.ndarray, noise: np.ndarray, t: int
    ) -> np.ndarray:
        """Forward-diffuse ``sample`` to timestep ``t`` (used in tests)."""
        abar = self.alphas_cumprod[t]
        return np.sqrt(abar) * sample + np.sqrt(1.0 - abar) * noise


class DDPMScheduler(_BaseScheduler):
    """Stochastic ancestral sampling (Ho et al., 2020)."""

    def step(
        self,
        model_output: np.ndarray,
        t: int,
        sample: np.ndarray,
        prev_t: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        abar_t = self.alphas_cumprod[t]
        abar_prev = self.alphas_cumprod[prev_t] if prev_t is not None and prev_t >= 0 else 1.0
        alpha_t = abar_t / abar_prev
        beta_t = 1.0 - alpha_t

        pred_x0 = (sample - np.sqrt(1.0 - abar_t) * model_output) / np.sqrt(abar_t)
        pred_x0 = np.clip(pred_x0, -10.0, 10.0)

        coef_x0 = np.sqrt(abar_prev) * beta_t / (1.0 - abar_t)
        coef_xt = np.sqrt(alpha_t) * (1.0 - abar_prev) / (1.0 - abar_t)
        mean = coef_x0 * pred_x0 + coef_xt * sample

        if prev_t is None or prev_t < 0 or rng is None:
            return mean
        var = beta_t * (1.0 - abar_prev) / (1.0 - abar_t)
        return mean + np.sqrt(max(var, 0.0)) * rng.standard_normal(sample.shape)


class DPMSolverPP2MScheduler(_BaseScheduler):
    """DPM-Solver++(2M): a second-order multistep fast sampler.

    Stands in for the paper's Related-Work software baselines ([19], [36],
    [39]): fast ODE solvers reduce the iteration count, trading accuracy —
    the axis EXION's sparsity approach is orthogonal to. The solver is
    stateful (multistep); call :meth:`reset` before each trajectory.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.reset()

    def reset(self) -> None:
        self._prev_x0: Optional[np.ndarray] = None
        self._prev_lambda: Optional[float] = None

    def _coeffs(self, t: int) -> tuple:
        abar = self.alphas_cumprod[t] if t >= 0 else 1.0 - 1e-8
        alpha = float(np.sqrt(abar))
        sigma = float(np.sqrt(max(1.0 - abar, 1e-12)))
        return alpha, sigma, float(np.log(alpha / sigma))

    def step(
        self,
        model_output: np.ndarray,
        t: int,
        sample: np.ndarray,
        prev_t: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        del rng  # deterministic ODE solver
        alpha_t, sigma_t, lambda_t = self._coeffs(t)
        target = prev_t if prev_t is not None else -1
        alpha_s, sigma_s, lambda_s = self._coeffs(target)

        x0 = (sample - sigma_t * model_output) / alpha_t
        x0 = np.clip(x0, -10.0, 10.0)

        h = lambda_s - lambda_t
        # First step and final step run first-order (the standard
        # "lower_order_final" guard): at the trajectory end h >> h_last,
        # so the second-order extrapolation coefficient 1/(2r) explodes.
        final_step = target is None or target <= 0
        if self._prev_x0 is None or self._prev_lambda is None or final_step:
            d = x0
        else:
            h_last = lambda_t - self._prev_lambda
            r = h_last / h if h != 0.0 else 1.0
            # Clamp the extrapolation ratio: uniform-t schedules make the
            # lambda grid highly non-uniform near the ends.
            gain = min(abs(1.0 / (2.0 * r)), 2.0) if r != 0.0 else 0.0
            d = (1.0 + gain) * x0 - gain * self._prev_x0
        self._prev_x0 = x0
        self._prev_lambda = lambda_t

        return (sigma_s / sigma_t) * sample - alpha_s * float(
            np.expm1(-h)
        ) * d


class DDIMScheduler(_BaseScheduler):
    """Deterministic DDIM sampling (eta = 0).

    Determinism makes vanilla-vs-optimized PSNR comparisons exact, which is
    how the paper reports accuracy deltas (Table I "PSNR w/ Vanil.").
    """

    def step(
        self,
        model_output: np.ndarray,
        t: int,
        sample: np.ndarray,
        prev_t: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        del rng  # deterministic
        abar_t = self.alphas_cumprod[t]
        abar_prev = self.alphas_cumprod[prev_t] if prev_t is not None and prev_t >= 0 else 1.0

        pred_x0 = (sample - np.sqrt(1.0 - abar_t) * model_output) / np.sqrt(abar_t)
        pred_x0 = np.clip(pred_x0, -10.0, 10.0)
        direction = np.sqrt(1.0 - abar_prev) * model_output
        return np.sqrt(abar_prev) * pred_x0 + direction
