"""Pure-numpy diffusion-model substrate.

Implements the three network types of the paper's Figure 3:

- Type 1: UNet-style network without ResBlocks (e.g. MLD),
- Type 2: UNet with ResBlocks (e.g. Stable Diffusion, Make-an-Audio),
- Type 3: transformer-block-only network (e.g. DiT, MDM).

All layers are deterministic given a seed and expose plain ``__call__``
interfaces over ``numpy.ndarray`` activations.
"""

from repro.models.activations import gelu, geglu, relu, silu, softmax
from repro.models.attention import AttentionTrace, MultiHeadAttention
from repro.models.ffn import FeedForward, FFNTrace
from repro.models.linear import Linear
from repro.models.network import DiffusionNetwork, NetworkType
from repro.models.norm import LayerNorm
from repro.models.pipeline import DiffusionPipeline
from repro.models.resblock import Conv2d, ResBlock
from repro.models.scheduler import (
    DDIMScheduler,
    DDPMScheduler,
    DPMSolverPP2MScheduler,
)
from repro.models.transformer import TransformerBlock
from repro.models.zoo import BENCHMARK_MODELS, ModelSpec, build_model

__all__ = [
    "AttentionTrace",
    "BENCHMARK_MODELS",
    "Conv2d",
    "DDIMScheduler",
    "DDPMScheduler",
    "DPMSolverPP2MScheduler",
    "DiffusionNetwork",
    "DiffusionPipeline",
    "FFNTrace",
    "FeedForward",
    "LayerNorm",
    "Linear",
    "ModelSpec",
    "MultiHeadAttention",
    "NetworkType",
    "ResBlock",
    "TransformerBlock",
    "build_model",
    "geglu",
    "gelu",
    "relu",
    "silu",
    "softmax",
]
