"""Reverse-denoising inference pipeline over a diffusion network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.models.conditioning import ConditioningEncoder
from repro.models.network import DiffusionNetwork
from repro.models.scheduler import _BaseScheduler
from repro.models.transformer import Executors


@dataclass
class DiffusionResult:
    """Output of one reverse-denoising run."""

    sample: np.ndarray
    iterations: int
    block_traces: list = field(default_factory=list)  # [iteration][block]
    latents: list = field(default_factory=list)  # optional per-iteration x_t


# Provider maps (iteration_index, block_index) -> Executors or None.
ExecutorProvider = Callable[[int, int], Optional[Executors]]


class DiffusionPipeline:
    """Runs the reverse denoising process of paper Fig. 2.

    Only inference is implemented; the paper's optimizations target the
    inference phase exclusively (Section II-A).
    """

    def __init__(
        self,
        network: DiffusionNetwork,
        scheduler,
        num_inference_steps: int,
        conditioning: Optional[ConditioningEncoder] = None,
    ) -> None:
        if not isinstance(scheduler, _BaseScheduler):
            raise TypeError("scheduler must derive from the base scheduler")
        self.network = network
        self.scheduler = scheduler
        self.num_inference_steps = num_inference_steps
        self.conditioning = conditioning

    def embed_prompt(
        self, prompt: Optional[str] = None, class_label: Optional[int] = None
    ) -> Optional[np.ndarray]:
        """Encode the conditional input once, as the paper's Fig. 2 shows."""
        if self.conditioning is None:
            return None
        if class_label is not None:
            return self.conditioning.encode_class(class_label)
        if prompt is not None:
            return self.conditioning.encode(prompt)
        return self.conditioning.encode("")

    def generate(
        self,
        seed: int = 0,
        prompt: Optional[str] = None,
        class_label: Optional[int] = None,
        executor_provider: Optional[ExecutorProvider] = None,
        iteration_start_hook: Optional[Callable[[int, int], None]] = None,
        collect_traces: bool = False,
        collect_latents: bool = False,
    ) -> DiffusionResult:
        """Generate one sample from noise.

        ``executor_provider(iteration, block)`` lets EXION substitute
        sparsity-aware execution per block per iteration;
        ``iteration_start_hook(iteration, timestep)`` fires before each
        network call (used by FFN-Reuse to flip dense/sparse phases).
        """
        rng = np.random.default_rng(seed)
        if hasattr(self.scheduler, "reset"):
            self.scheduler.reset()  # stateful multistep solvers
        x = rng.standard_normal((self.network.tokens, self.network.dim))
        context = self.embed_prompt(prompt, class_label)
        timesteps = self.scheduler.timesteps(self.num_inference_steps)

        result = DiffusionResult(sample=x, iterations=len(timesteps))
        for i, t in enumerate(timesteps):
            if iteration_start_hook is not None:
                iteration_start_hook(i, int(t))
            executors = None
            if executor_provider is not None:
                executors = _bind_iteration(executor_provider, i)
            eps, traces = self.network(x, int(t), context=context, executors=executors)
            prev_t = int(timesteps[i + 1]) if i + 1 < len(timesteps) else -1
            x = self.scheduler.step(eps, int(t), x, prev_t=prev_t, rng=rng)
            if collect_traces:
                result.block_traces.append(traces)
            if collect_latents:
                result.latents.append(x.copy())
        result.sample = x
        return result


def _bind_iteration(
    provider: ExecutorProvider, iteration: int
) -> Callable[[int], Optional[Executors]]:
    def per_block(block_index: int) -> Optional[Executors]:
        return provider(iteration, block_index)

    return per_block
