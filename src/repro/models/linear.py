"""Dense linear layer over numpy arrays."""

from __future__ import annotations

import numpy as np


class Linear:
    """Affine map ``y = x @ W + b`` with Xavier-uniform weights.

    Weights are stored as ``(in_features, out_features)`` so that activations
    of shape ``(tokens, in_features)`` multiply directly, matching the
    MMUL orientation the paper's hardware tiles over (rows = tokens,
    columns = output features).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear dimensions must be positive")
        bound = float(np.sqrt(6.0 / (in_features + out_features)))
        self.in_features = in_features
        self.out_features = out_features
        self.weight = rng.uniform(-bound, bound, size=(in_features, out_features))
        self.bias = np.zeros(out_features) if bias else None

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected last dim {self.in_features}, got {x.shape[-1]}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    @property
    def num_params(self) -> int:
        """Total parameter count (weights plus bias)."""
        count = self.weight.size
        if self.bias is not None:
            count += self.bias.size
        return count

    def macs(self, tokens: int) -> int:
        """Multiply-accumulate count for a ``(tokens, in)`` input."""
        return tokens * self.in_features * self.out_features
