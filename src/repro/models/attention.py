"""Multi-head attention with an injectable execution strategy.

The exact path computes QKV projection, scaled dot-product attention and the
output projection densely. EXION's eager-prediction algorithm replaces the
inner computation via the ``executor`` hook without the layer itself knowing
about sparsity (paper Fig. 3 (b), Section II-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.models.activations import softmax
from repro.models.linear import Linear


@dataclass
class AttentionTrace:
    """Intermediate tensors and skip statistics captured from one layer call.

    Skip statistics are zero for the exact path and populated by the
    eager-prediction executor.
    """

    scores: np.ndarray
    probs: np.ndarray
    output_sparsity: float = 0.0
    skipped_score_elements: int = 0
    total_score_elements: int = 0
    q_rows_skipped: int = 0
    q_rows_total: int = 0
    kv_cols_skipped: int = 0
    kv_cols_total: int = 0
    head_traces: list = field(default_factory=list)


# An executor receives the layer plus activations and returns
# (output, AttentionTrace). It owns the whole attention computation.
AttentionExecutor = Callable[["MultiHeadAttention", np.ndarray, Optional[np.ndarray]], tuple]


class MultiHeadAttention:
    """Multi-head (self or cross) attention.

    Parameters
    ----------
    dim:
        Model width; also the output width.
    num_heads:
        Head count; ``dim`` must be divisible by it.
    rng:
        Source of weight initialization randomness.
    context_dim:
        Width of the cross-attention context. ``None`` means self-attention.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        rng: np.random.Generator,
        context_dim: Optional[int] = None,
    ) -> None:
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.context_dim = context_dim if context_dim is not None else dim
        self.scale = 1.0 / float(np.sqrt(self.head_dim))

        self.wq = Linear(dim, dim, rng)
        self.wk = Linear(self.context_dim, dim, rng)
        self.wv = Linear(self.context_dim, dim, rng)
        self.wo = Linear(dim, dim, rng)

    @property
    def is_cross_attention(self) -> bool:
        return self.context_dim != self.dim

    def split_heads(self, x: np.ndarray) -> np.ndarray:
        """Reshape ``(tokens, dim)`` into ``(heads, tokens, head_dim)``."""
        tokens = x.shape[0]
        return x.reshape(tokens, self.num_heads, self.head_dim).transpose(1, 0, 2)

    def merge_heads(self, x: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`split_heads`."""
        heads, tokens, head_dim = x.shape
        return x.transpose(1, 0, 2).reshape(tokens, heads * head_dim)

    def __call__(
        self,
        x: np.ndarray,
        context: Optional[np.ndarray] = None,
        executor: Optional[AttentionExecutor] = None,
    ) -> tuple[np.ndarray, AttentionTrace]:
        """Run the layer, optionally through a sparsity-aware executor."""
        if executor is not None:
            return executor(self, x, context)
        return self.forward_exact(x, context)

    def forward_exact(
        self, x: np.ndarray, context: Optional[np.ndarray] = None
    ) -> tuple[np.ndarray, AttentionTrace]:
        """Dense reference attention (the paper's "vanilla" path)."""
        kv_input = x if context is None else context
        q = self.split_heads(self.wq(x))
        k = self.split_heads(self.wk(kv_input))
        v = self.split_heads(self.wv(kv_input))

        scores = np.einsum("htd,hsd->hts", q, k) * self.scale
        probs = softmax(scores, axis=-1)
        attended = np.einsum("hts,hsd->htd", probs, v)
        out = self.wo(self.merge_heads(attended))

        trace = AttentionTrace(
            scores=scores,
            probs=probs,
            total_score_elements=int(scores.size),
            q_rows_total=x.shape[0] * self.num_heads,
            kv_cols_total=kv_input.shape[0] * self.num_heads,
        )
        return out, trace

    def macs(self, tokens: int, context_tokens: Optional[int] = None) -> dict:
        """Analytic MAC counts split the way the paper's Fig. 4 reports them."""
        ctx = tokens if context_tokens is None else context_tokens
        qkv = self.wq.macs(tokens) + self.wk.macs(ctx) + self.wv.macs(ctx)
        attention = 2 * tokens * ctx * self.dim  # QK^T plus probs @ V
        out_proj = self.wo.macs(tokens)
        return {"qkv_projection": qkv, "attention": attention + out_proj}
