"""Activation functions used by the diffusion substrate.

The FFN-Reuse algorithm (paper Section III-A) keys off the output of the
non-linear layer between the two FFN linears, which in the benchmark models
is GELU or GEGLU. Both are implemented here along with the other
non-linearities the networks need.
"""

from __future__ import annotations

import numpy as np

_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian Error Linear Unit (tanh approximation).

    The tanh form is what the benchmark diffusion models ship with and is
    numerically close enough to the erf form that the FFN-Reuse bitmask is
    unaffected.
    """
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + np.tanh(_SQRT_2_OVER_PI * (x + 0.044715 * x**3)))


def geglu(x: np.ndarray, gate: np.ndarray) -> np.ndarray:
    """GEGLU variant: ``x * gelu(gate)`` (Shazeer, 2020).

    Stable Diffusion's transformer blocks use GEGLU in place of plain GELU;
    the first FFN linear produces both ``x`` and ``gate`` halves.
    """
    return np.asarray(x, dtype=np.float64) * gelu(gate)


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish, used inside ResBlocks."""
    x = np.asarray(x, dtype=np.float64)
    return x / (1.0 + np.exp(-x))


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x, dtype=np.float64), 0.0)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)
