"""Diffusion denoising networks (the three types of paper Fig. 3 (a)).

Type 1 is a UNet-shaped stack of transformer blocks without ResBlocks
(e.g. MLD), Type 2 interleaves convolutional ResBlocks with transformer
blocks (e.g. Stable Diffusion), and Type 3 is a plain transformer stack
(e.g. DiT, MDM). All three consume a latent of shape ``(tokens, dim)`` and
predict the noise at timestep ``t``.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.models.activations import silu
from repro.models.linear import Linear
from repro.models.norm import LayerNorm
from repro.models.resblock import ResBlock
from repro.models.transformer import BlockTrace, Executors, TransformerBlock


class NetworkType(enum.Enum):
    """The three diffusion-network topologies of paper Fig. 3 (a)."""

    TRANSFORMER_UNET = 1  # UNet without ResBlocks
    RESBLOCK_UNET = 2  # UNet with ResBlocks
    TRANSFORMER_ONLY = 3  # plain transformer stack


ExecutorProvider = Union[Sequence[Executors], Callable[[int], Optional[Executors]]]


def timestep_embedding(t: int, dim: int, max_period: float = 10000.0) -> np.ndarray:
    """Sinusoidal timestep embedding as in DDPM/DiT."""
    half = dim // 2
    freqs = np.exp(-np.log(max_period) * np.arange(half) / half)
    args = float(t) * freqs
    embed = np.concatenate([np.cos(args), np.sin(args)])
    if dim % 2 == 1:
        embed = np.concatenate([embed, np.zeros(1)])
    return embed


class DiffusionNetwork:
    """Noise-prediction network over a ``(tokens, dim)`` latent.

    Parameters mirror the benchmark model specs; ``use_adaln`` enables
    DiT-style timestep modulation of each block.
    """

    def __init__(
        self,
        network_type: NetworkType,
        tokens: int,
        dim: int,
        num_heads: int,
        depth: int,
        ffn_mult: int,
        rng: np.random.Generator,
        activation: str = "gelu",
        context_dim: Optional[int] = None,
        timestep_dim: int = 64,
        use_adaln: bool = False,
    ) -> None:
        if tokens < 2:
            raise ValueError("need at least 2 tokens")
        if network_type is NetworkType.RESBLOCK_UNET:
            side = int(round(np.sqrt(tokens)))
            if side * side != tokens:
                raise ValueError(
                    "RESBLOCK_UNET needs a square token count for its 2D latent"
                )
            self._side = side
        self.network_type = network_type
        self.tokens = tokens
        self.dim = dim
        self.depth = depth
        self.context_dim = context_dim
        self.timestep_dim = timestep_dim

        self.time_mlp1 = Linear(timestep_dim, timestep_dim, rng)
        self.time_mlp2 = Linear(timestep_dim, timestep_dim, rng)

        def make_block() -> TransformerBlock:
            return TransformerBlock(
                dim,
                num_heads,
                ffn_mult,
                rng,
                activation=activation,
                context_dim=context_dim,
                timestep_dim=timestep_dim if use_adaln else None,
            )

        self.blocks = [make_block() for _ in range(depth)]
        self.resblocks: list[ResBlock] = []
        if network_type is NetworkType.RESBLOCK_UNET:
            self.resblocks = [ResBlock(dim, timestep_dim, rng) for _ in range(depth)]

        self._is_unet = network_type in (
            NetworkType.TRANSFORMER_UNET,
            NetworkType.RESBLOCK_UNET,
        )
        if self._is_unet:
            # Token-axis down/up-sampling for the UNet shape.
            self.down_proj = Linear(dim, dim, rng)
            self.up_proj = Linear(dim, dim, rng)

        self.final_norm = LayerNorm(dim)
        self.out_proj = Linear(dim, dim, rng)

    # ------------------------------------------------------------------
    # forward
    # ------------------------------------------------------------------
    @property
    def num_transformer_blocks(self) -> int:
        return len(self.blocks)

    def _resolve_executors(
        self, provider: Optional[ExecutorProvider], index: int
    ) -> Optional[Executors]:
        if provider is None:
            return None
        if callable(provider):
            return provider(index)
        return provider[index]

    def _embed_timestep(self, t: int) -> np.ndarray:
        embed = timestep_embedding(t, self.timestep_dim)
        return self.time_mlp2(silu(self.time_mlp1(embed)))

    def __call__(
        self,
        x: np.ndarray,
        t: int,
        context: Optional[np.ndarray] = None,
        executors: Optional[ExecutorProvider] = None,
    ) -> tuple[np.ndarray, list[BlockTrace]]:
        """Predict noise for latent ``x`` at timestep ``t``.

        Returns the prediction and the per-transformer-block traces.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.tokens, self.dim):
            raise ValueError(
                f"expected latent shape {(self.tokens, self.dim)}, got {x.shape}"
            )
        t_embed = self._embed_timestep(t)
        traces: list[BlockTrace] = []

        if self.network_type is NetworkType.TRANSFORMER_ONLY:
            h = x
            for i, block in enumerate(self.blocks):
                h, trace = block(
                    h,
                    context=context,
                    t_embed=t_embed,
                    executors=self._resolve_executors(executors, i),
                )
                traces.append(trace)
            return self.out_proj(self.final_norm(h)), traces

        # UNet shape: encoder half at full resolution, decoder half at
        # half resolution, residual path across the downsample.
        half = max(1, self.depth // 2)
        h = x
        for i in range(half):
            h = self._stage(i, h, t_embed, context, executors, traces)
        skip = h
        h = self._downsample(h)
        for i in range(half, self.depth):
            h = self._stage(i, h, t_embed, context, executors, traces)
        h = self._upsample(h, self.tokens) + skip
        return self.out_proj(self.final_norm(h)), traces

    def _stage(
        self,
        index: int,
        h: np.ndarray,
        t_embed: np.ndarray,
        context: Optional[np.ndarray],
        executors: Optional[ExecutorProvider],
        traces: list[BlockTrace],
    ) -> np.ndarray:
        if self.resblocks:
            h = self._apply_resblock(self.resblocks[index], h, t_embed)
        h, trace = self.blocks[index](
            h,
            context=context,
            t_embed=t_embed,
            executors=self._resolve_executors(executors, index),
        )
        traces.append(trace)
        return h

    def _apply_resblock(
        self, resblock: ResBlock, h: np.ndarray, t_embed: np.ndarray
    ) -> np.ndarray:
        tokens = h.shape[0]
        side = int(round(np.sqrt(tokens)))
        if side * side != tokens:
            # Downsampled token counts may not be square; ResBlocks then run
            # on the nearest square crop with a pass-through remainder.
            side = int(np.floor(np.sqrt(tokens)))
        square = side * side
        grid = h[:square].T.reshape(self.dim, side, side)
        out = resblock(grid, t_embed).reshape(self.dim, square).T
        return np.concatenate([out, h[square:]], axis=0)

    def _downsample(self, h: np.ndarray) -> np.ndarray:
        tokens = h.shape[0]
        if tokens % 2 == 1:
            h = np.concatenate([h, h[-1:]], axis=0)
        pooled = 0.5 * (h[0::2] + h[1::2])
        return self.down_proj(pooled)

    def _upsample(self, h: np.ndarray, target_tokens: int) -> np.ndarray:
        up = np.repeat(h, 2, axis=0)[:target_tokens]
        if up.shape[0] < target_tokens:
            pad = np.repeat(up[-1:], target_tokens - up.shape[0], axis=0)
            up = np.concatenate([up, pad], axis=0)
        return self.up_proj(up)

    # ------------------------------------------------------------------
    # analytics
    # ------------------------------------------------------------------
    def macs_per_call(self, context_tokens: Optional[int] = None) -> dict:
        """Analytic MAC breakdown for one network call (Fig. 4 categories)."""
        half = max(1, self.depth // 2)
        counts = {"qkv_projection": 0, "attention": 0, "ffn": 0, "etc": 0}
        for i, block in enumerate(self.blocks):
            if self._is_unet and i >= half:
                tokens = (self.tokens + 1) // 2
            else:
                tokens = self.tokens
            block_counts = block.macs(tokens, context_tokens)
            counts["qkv_projection"] += block_counts["qkv_projection"]
            counts["attention"] += block_counts["attention"]
            counts["ffn"] += block_counts["ffn"]
            if self.resblocks:
                side = int(np.floor(np.sqrt(tokens)))
                counts["etc"] += self.resblocks[i].macs(side, side)
        counts["etc"] += self.out_proj.macs(self.tokens)
        if self._is_unet:
            counts["etc"] += self.down_proj.macs((self.tokens + 1) // 2)
            counts["etc"] += self.up_proj.macs(self.tokens)
        return counts
