"""Transformer block of the paper's Fig. 3 (b).

Pre-norm design: self-attention, optional cross-attention on a conditioning
context, then the FFN, each with a residual add. DiT-style models additionally
modulate the block with adaptive layer-norm driven by the timestep embedding,
which is the mechanism that makes activations drift smoothly across denoising
iterations (the redundancy FFN-Reuse exploits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.models.attention import AttentionExecutor, AttentionTrace, MultiHeadAttention
from repro.models.ffn import FeedForward, FFNExecutor, FFNTrace
from repro.models.norm import AdaLNModulation, LayerNorm


@dataclass
class Executors:
    """Per-block bundle of optional sparsity-aware executors."""

    self_attention: Optional[AttentionExecutor] = None
    cross_attention: Optional[AttentionExecutor] = None
    ffn: Optional[FFNExecutor] = None


@dataclass
class BlockTrace:
    """Traces from one transformer-block invocation."""

    self_attention: AttentionTrace
    ffn: FFNTrace
    cross_attention: Optional[AttentionTrace] = None


class TransformerBlock:
    """One transformer block over ``(tokens, dim)`` activations."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        ffn_mult: int,
        rng: np.random.Generator,
        activation: str = "gelu",
        context_dim: Optional[int] = None,
        timestep_dim: Optional[int] = None,
    ) -> None:
        self.dim = dim
        self.norm1 = LayerNorm(dim)
        self.self_attn = MultiHeadAttention(dim, num_heads, rng)
        self.cross_attn: Optional[MultiHeadAttention] = None
        self.norm_cross: Optional[LayerNorm] = None
        if context_dim is not None:
            self.norm_cross = LayerNorm(dim)
            self.cross_attn = MultiHeadAttention(
                dim, num_heads, rng, context_dim=context_dim
            )
        self.norm2 = LayerNorm(dim)
        self.ffn = FeedForward(dim, ffn_mult * dim, rng, activation=activation)
        self.adaln: Optional[AdaLNModulation] = None
        if timestep_dim is not None:
            self.adaln = AdaLNModulation(timestep_dim, dim, rng)

    def __call__(
        self,
        x: np.ndarray,
        context: Optional[np.ndarray] = None,
        t_embed: Optional[np.ndarray] = None,
        executors: Optional[Executors] = None,
    ) -> tuple[np.ndarray, BlockTrace]:
        ex = executors or Executors()

        h = self.norm1(x)
        if self.adaln is not None and t_embed is not None:
            shift, scale, gate = self.adaln(t_embed)
            h = h * (1.0 + scale) + shift
        else:
            gate = 1.0
        attn_out, attn_trace = self.self_attn(h, executor=ex.self_attention)
        x = x + gate * attn_out

        cross_trace: Optional[AttentionTrace] = None
        if self.cross_attn is not None and context is not None:
            assert self.norm_cross is not None
            cross_out, cross_trace = self.cross_attn(
                self.norm_cross(x), context=context, executor=ex.cross_attention
            )
            x = x + cross_out

        ffn_out, ffn_trace = self.ffn(self.norm2(x), executor=ex.ffn)
        x = x + ffn_out

        return x, BlockTrace(
            self_attention=attn_trace, ffn=ffn_trace, cross_attention=cross_trace
        )

    def macs(self, tokens: int, context_tokens: Optional[int] = None) -> dict:
        """Per-call MAC counts grouped as in the paper's Fig. 4."""
        counts = self.self_attn.macs(tokens)
        if self.cross_attn is not None and context_tokens is not None:
            cross = self.cross_attn.macs(tokens, context_tokens)
            counts = {
                "qkv_projection": counts["qkv_projection"] + cross["qkv_projection"],
                "attention": counts["attention"] + cross["attention"],
            }
        counts["ffn"] = self.ffn.macs(tokens)
        return counts
