"""Feed-forward network with an injectable execution strategy.

The FFN is the dominant compute in diffusion transformer blocks (paper
Fig. 4, up to 67% of operations), and the FFN-Reuse algorithm replaces its
execution across iterations via the ``executor`` hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.models.activations import geglu, gelu
from repro.models.linear import Linear


@dataclass
class FFNTrace:
    """Intermediate tensors and skip statistics from one FFN call."""

    hidden: np.ndarray  # output of the non-linearity, the FFN-Reuse signal
    output_sparsity: float = 0.0
    skipped_hidden_elements: int = 0
    total_hidden_elements: int = 0
    reused_from_dense: bool = False


FFNExecutor = Callable[["FeedForward", np.ndarray], tuple]


class FeedForward:
    """Two-linear FFN with GELU or GEGLU in between.

    For ``activation="geglu"`` the first linear produces ``2 * hidden_dim``
    features (value and gate halves), matching Stable Diffusion's blocks.
    """

    def __init__(
        self,
        dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        activation: str = "gelu",
    ) -> None:
        if activation not in ("gelu", "geglu"):
            raise ValueError(f"unsupported FFN activation: {activation!r}")
        self.dim = dim
        self.hidden_dim = hidden_dim
        self.activation = activation
        first_out = 2 * hidden_dim if activation == "geglu" else hidden_dim
        self.linear1 = Linear(dim, first_out, rng)
        self.linear2 = Linear(hidden_dim, dim, rng)

    def __call__(
        self, x: np.ndarray, executor: Optional[FFNExecutor] = None
    ) -> tuple[np.ndarray, FFNTrace]:
        if executor is not None:
            return executor(self, x)
        return self.forward_exact(x)

    def nonlinear(self, pre: np.ndarray) -> np.ndarray:
        """Apply the configured non-linearity to the first linear's output."""
        if self.activation == "geglu":
            value, gate = np.split(pre, 2, axis=-1)
            return geglu(value, gate)
        return gelu(pre)

    def forward_exact(self, x: np.ndarray) -> tuple[np.ndarray, FFNTrace]:
        """Dense reference FFN."""
        hidden = self.nonlinear(self.linear1(x))
        out = self.linear2(hidden)
        trace = FFNTrace(hidden=hidden, total_hidden_elements=int(hidden.size))
        return out, trace

    def macs(self, tokens: int) -> int:
        """Analytic MAC count for a ``(tokens, dim)`` input."""
        return self.linear1.macs(tokens) + self.linear2.macs(tokens)
