"""Convolutional ResBlock for Type-2 (UNet-with-ResBlock) networks.

Stable Diffusion, Make-an-Audio and VideoCrafter2 interleave ResBlocks with
transformer blocks. EXION applies no sparsity optimization to them (paper
Section V-C notes the resulting efficiency drop), so the reproduction needs
them both for correctness of the substrate and for the Fig. 18/19 shapes.
"""

from __future__ import annotations

import numpy as np

from repro.models.activations import silu


class Conv2d:
    """3x3 same-padding convolution via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator,
        kernel_size: int = 3,
    ) -> None:
        if kernel_size % 2 != 1:
            raise ValueError("kernel_size must be odd for same padding")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        fan_in = in_channels * kernel_size * kernel_size
        bound = float(np.sqrt(6.0 / (fan_in + out_channels)))
        self.weight = rng.uniform(
            -bound, bound, size=(out_channels, in_channels, kernel_size, kernel_size)
        )
        self.bias = np.zeros(out_channels)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Apply to ``(channels, height, width)`` input."""
        c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        k = self.kernel_size
        pad = k // 2
        padded = np.pad(x, ((0, 0), (pad, pad), (pad, pad)))
        # im2col: (c*k*k, h*w)
        cols = np.empty((c * k * k, h * w))
        idx = 0
        for dy in range(k):
            for dx in range(k):
                patch = padded[:, dy : dy + h, dx : dx + w]
                cols[idx * c : (idx + 1) * c] = patch.reshape(c, h * w)
                idx += 1
        # weight reshaped to match the (dy, dx, c) layout of cols
        w_mat = self.weight.transpose(2, 3, 1, 0).reshape(c * k * k, self.out_channels)
        out = (w_mat.T @ cols) + self.bias[:, None]
        return out.reshape(self.out_channels, h, w)

    def macs(self, height: int, width: int) -> int:
        """MAC count for one call on a ``height x width`` map."""
        return (
            height
            * width
            * self.out_channels
            * self.in_channels
            * self.kernel_size
            * self.kernel_size
        )


class GroupNorm:
    """Group normalization over channel groups of a ``(c, h, w)`` map."""

    def __init__(self, channels: int, groups: int = 8, eps: float = 1e-5) -> None:
        if channels % groups != 0:
            groups = 1
        self.channels = channels
        self.groups = groups
        self.eps = eps
        self.gamma = np.ones(channels)
        self.beta = np.zeros(channels)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        c, h, w = x.shape
        grouped = x.reshape(self.groups, c // self.groups, h, w)
        mean = grouped.mean(axis=(1, 2, 3), keepdims=True)
        var = grouped.var(axis=(1, 2, 3), keepdims=True)
        normed = ((grouped - mean) / np.sqrt(var + self.eps)).reshape(c, h, w)
        return normed * self.gamma[:, None, None] + self.beta[:, None, None]


class ResBlock:
    """GroupNorm -> SiLU -> Conv, timestep injection, second conv, skip."""

    def __init__(
        self, channels: int, timestep_dim: int, rng: np.random.Generator
    ) -> None:
        self.channels = channels
        self.norm1 = GroupNorm(channels)
        self.conv1 = Conv2d(channels, channels, rng)
        bound = float(np.sqrt(6.0 / (timestep_dim + channels)))
        self.time_proj = rng.uniform(-bound, bound, size=(timestep_dim, channels))
        self.norm2 = GroupNorm(channels)
        self.conv2 = Conv2d(channels, channels, rng)

    def __call__(self, x: np.ndarray, t_embed: np.ndarray) -> np.ndarray:
        h = self.conv1(silu(self.norm1(x)))
        h = h + (t_embed @ self.time_proj)[:, None, None]
        h = self.conv2(silu(self.norm2(h)))
        return x + h

    def macs(self, height: int, width: int) -> int:
        return self.conv1.macs(height, width) + self.conv2.macs(height, width)
