"""Normalization layers."""

from __future__ import annotations

import numpy as np


class LayerNorm:
    """Layer normalization over the last axis with learned scale/shift."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        if dim <= 0:
            raise ValueError("LayerNorm dim must be positive")
        self.dim = dim
        self.eps = eps
        self.gamma = np.ones(dim)
        self.beta = np.zeros(dim)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.dim:
            raise ValueError(f"expected last dim {self.dim}, got {x.shape[-1]}")
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        return self.gamma * (x - mean) / np.sqrt(var + self.eps) + self.beta


class AdaLNModulation:
    """DiT-style adaptive layer-norm modulation.

    Produces per-block ``(shift, scale, gate)`` from the timestep embedding,
    which is how DiT conditions its transformer blocks on the iteration
    index. Modelled because the EXION paper's inter-iteration redundancy
    analysis (Fig. 7) is run on DiT, whose activations drift with ``t``
    through exactly this path.
    """

    def __init__(self, embed_dim: int, dim: int, rng: np.random.Generator) -> None:
        bound = float(np.sqrt(6.0 / (embed_dim + 3 * dim)))
        self.dim = dim
        self.weight = rng.uniform(-bound, bound, size=(embed_dim, 3 * dim))

    def __call__(self, t_embed: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        raw = np.asarray(t_embed, dtype=np.float64) @ self.weight
        shift = raw[..., : self.dim]
        scale = raw[..., self.dim : 2 * self.dim]
        gate = raw[..., 2 * self.dim :]
        return shift, np.tanh(scale), 1.0 + 0.1 * np.tanh(gate)
