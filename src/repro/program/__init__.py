"""Unified iteration-program IR: one lowering, every backend.

The paper's headline numbers all derive from a single conceptual object
— the per-iteration work schedule under FFN-Reuse phases and output
sparsity. This package makes that object explicit and **single-sourced**:

- :mod:`repro.program.ir` — the typed IR
  (:class:`Op`/:class:`IterationProgram`/:class:`PhasePlan`);
- :mod:`repro.program.lower` — the one model-structure traversal
  (:func:`lower_program`, :func:`lower_plan`, :func:`block_ops`);
- :mod:`repro.program.encode` — canonical byte-stable JSON
  serialization with lossless round-trips.

Every backend consumes the IR instead of re-walking the model: the EXION
hardware simulator prices a :class:`PhasePlan`, the GPU roofline and
Cambricon-D baselines price an :class:`IterationProgram`, Delta-DiT
accounts block MACs from :func:`block_ops`, and the explore/cluster
layers lower once and hand the plan to the accelerator. Registering a
new :class:`~repro.workloads.specs.ModelSpec` therefore lights up every
backend with zero backend-specific code.

Quickstart::

    from repro.program import lower_plan, plan_json
    from repro.workloads.specs import get_spec

    plan = lower_plan(get_spec("dit"))
    print(plan.iterations, plan.dense_iterations)
    print(plan_json(plan))           # canonical, byte-stable

or from the command line: ``python -m repro program --model dit --json``.
"""

from repro.program.cache import (
    PlanCache,
    compiled_plan_for,
    fresh_plan_cache,
    get_plan_cache,
    plan_for,
    reset_plan_cache,
    set_plan_cache,
)
from repro.program.compiled import (
    CompiledPlan,
    CompiledStep,
    PhaseSegment,
    TILE_ROWS,
    TILE_WIDTH,
    compile_plan,
)
from repro.program.encode import (
    canonical_json,
    op_from_dict,
    op_to_dict,
    plan_digest,
    plan_from_dict,
    plan_json,
    plan_to_dict,
    program_from_dict,
    program_to_dict,
)
from repro.program.ir import (
    IterationProgram,
    MMUL_BYTES_PER_ELEMENT,
    Op,
    OpKind,
    PhasePlan,
    PhaseStep,
    WEIGHT_BYTES_PER_ELEMENT,
)
from repro.program.lower import (
    SIM_CONTEXT_TOKENS,
    block_ops,
    lower_plan,
    lower_program,
    schedule_phases,
    spec_block_ops,
)

__all__ = [
    "CompiledPlan",
    "CompiledStep",
    "IterationProgram",
    "MMUL_BYTES_PER_ELEMENT",
    "Op",
    "OpKind",
    "PhasePlan",
    "PhaseSegment",
    "PhaseStep",
    "PlanCache",
    "SIM_CONTEXT_TOKENS",
    "TILE_ROWS",
    "TILE_WIDTH",
    "WEIGHT_BYTES_PER_ELEMENT",
    "block_ops",
    "canonical_json",
    "compile_plan",
    "compiled_plan_for",
    "fresh_plan_cache",
    "get_plan_cache",
    "lower_plan",
    "lower_program",
    "op_from_dict",
    "op_to_dict",
    "plan_digest",
    "plan_from_dict",
    "plan_json",
    "plan_to_dict",
    "program_from_dict",
    "program_to_dict",
    "schedule_phases",
    "spec_block_ops",
]
