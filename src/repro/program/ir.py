"""Typed intermediate representation of one denoising iteration.

The IR is the repo's single description of *what work a diffusion model
does per iteration* — every backend (the EXION hardware simulator, the
GPU roofline, Cambricon-D, Delta-DiT's compute accounting, the explore
objectives and the cluster service-time model) prices these objects
instead of re-walking the model structure itself:

- :class:`Op` — one MMUL of shape ``(r, k) @ (k, c)`` repeated ``count``
  times, tagged with an :class:`OpKind` (the paper Fig. 4 category) that
  backends dispatch on;
- :class:`IterationProgram` — the ordered ops of one iteration plus the
  model dimensions backends need for auxiliary (non-MMUL) work;
- :class:`PhasePlan` — the full per-iteration schedule of one
  generation under the FFN-Reuse dense/sparse phases, annotated with the
  ablation configuration and weight-residency hints.

Lowering (model spec -> IR) lives in :mod:`repro.program.lower`;
canonical serialization in :mod:`repro.program.encode`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

#: Activation operand width on the SDUE datapath (INT12 padded to 16 bit
#: for bank alignment).
MMUL_BYTES_PER_ELEMENT = 2

#: Weight storage width: INT12 packed densely in DRAM/GSC (1.5 bytes).
WEIGHT_BYTES_PER_ELEMENT = 1.5


class OpKind(str, enum.Enum):
    """Operation category an :class:`Op` belongs to (paper Fig. 4).

    Values are plain strings (``"qkv"``, ``"attention"``, ...), so
    backends may compare against literals; the enum exists to make the
    category set closed and typo-proof.
    """

    QKV = "qkv"
    ATTENTION = "attention"
    FFN1 = "ffn1"
    FFN2 = "ffn2"
    ETC = "etc"


@dataclass(frozen=True)
class Op:
    """One MMUL of shape ``(r, k) @ (k, c)`` repeated ``count`` times."""

    name: str
    kind: OpKind
    r: int
    k: int
    c: int
    count: int = 1
    #: False for activation-by-activation MMULs (QK^T, probs @ V), which
    #: fetch no weights from DRAM.
    has_weights: bool = True

    def __post_init__(self) -> None:
        if min(self.r, self.k, self.c) <= 0 or self.count <= 0:
            raise ValueError("workload dimensions must be positive")
        object.__setattr__(self, "kind", OpKind(self.kind))

    @property
    def macs(self) -> int:
        return self.r * self.k * self.c * self.count

    @property
    def weight_bytes(self) -> int:
        """Weight footprint per execution (INT12-packed)."""
        if not self.has_weights:
            return 0
        return int(self.k * self.c * WEIGHT_BYTES_PER_ELEMENT * self.count)


@dataclass(frozen=True)
class IterationProgram:
    """Ordered ops of one denoising iteration plus the model dimensions.

    ``tokens``/``dim``/``heads``/``depth``/``ffn_mult`` are the dims the
    ops were lowered from (paper scale or sim scale per ``scale``);
    backends use them for auxiliary non-MMUL work (softmax/norm elements,
    CAU classification, activation spill) without touching the model.
    """

    model: str
    scale: str  # "paper" or "sim"
    tokens: int
    dim: int
    heads: int
    depth: int
    ffn_mult: int
    activation: str
    context_tokens: Optional[int]
    temporal_frames: Optional[int]
    ops: tuple = ()

    def __post_init__(self) -> None:
        if self.scale not in ("paper", "sim"):
            raise ValueError(f"scale must be 'paper' or 'sim', got {self.scale!r}")
        object.__setattr__(self, "ops", tuple(self.ops))

    @property
    def hidden(self) -> int:
        """FFN hidden width at this program's scale."""
        return self.ffn_mult * self.dim

    @property
    def total_macs(self) -> int:
        return sum(op.macs for op in self.ops)

    @property
    def weight_bytes(self) -> int:
        """Dense per-iteration weight footprint (INT12-packed)."""
        return sum(op.weight_bytes for op in self.ops)

    def macs_by_kind(self) -> dict:
        """MAC totals per Fig. 4 category (``ffn1``/``ffn2`` fold into
        ``ffn``)."""
        totals = {"qkv": 0, "attention": 0, "ffn": 0, "etc": 0}
        for op in self.ops:
            kind = op.kind.value
            if kind in ("ffn1", "ffn2"):
                kind = "ffn"
            totals[kind] += op.macs
        return totals


@dataclass(frozen=True)
class PhaseStep:
    """One iteration of a :class:`PhasePlan`.

    ``weight_fetch`` annotates GSC residency: ``"cold"`` iterations
    stream the full dense weight footprint from DRAM; ``"resident"``
    iterations re-read the GSC-cached fraction on chip and stream only
    the remainder (diffusion reuses identical weights every iteration).
    """

    index: int
    is_dense: bool
    weight_fetch: str  # "cold" or "resident"

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("index must be >= 0")
        if self.weight_fetch not in ("cold", "resident"):
            raise ValueError(
                f"weight_fetch must be 'cold' or 'resident', "
                f"got {self.weight_fetch!r}"
            )


@dataclass(frozen=True)
class PhasePlan:
    """The full per-iteration work schedule of one generation.

    One :class:`IterationProgram` (the per-iteration ops) plus the
    dense/sparse phase of every iteration under FFN-Reuse, the ablation
    configuration that shaped the schedule, and the sparsity annotations
    backends price against.
    """

    program: IterationProgram
    steps: tuple = ()
    enable_ffn_reuse: bool = True
    enable_eager_prediction: bool = True
    batch: int = 1
    # Ablation annotations (paper Table I knobs the plan was lowered for).
    sparse_iters_n: int = 0
    ffn_target_sparsity: float = 0.0
    intra_sparsity_target: float = 0.0
    top_k_ratio: float = 1.0
    q_threshold: float = 0.0
    prediction_bits: int = 12

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        object.__setattr__(self, "steps", tuple(self.steps))

    @property
    def iterations(self) -> int:
        return len(self.steps)

    @property
    def dense_iterations(self) -> int:
        return sum(1 for step in self.steps if step.is_dense)

    @property
    def sparse_iterations(self) -> int:
        return self.iterations - self.dense_iterations

    @property
    def dense_equivalent_macs(self) -> int:
        """Total dense-equivalent MACs of the whole generation (skipped
        work counts as done, matching the simulator's crediting)."""
        return self.program.total_macs * self.batch * self.iterations


__all__ = [
    "IterationProgram",
    "MMUL_BYTES_PER_ELEMENT",
    "Op",
    "OpKind",
    "PhasePlan",
    "PhaseStep",
    "WEIGHT_BYTES_PER_ELEMENT",
]
