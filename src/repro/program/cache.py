"""Process-wide, content-addressed plan cache: compile once, price once.

Every layer of the stack used to independently re-run the same pure
pipeline — :func:`~repro.program.lower.lower_plan` →
:func:`~repro.program.compiled.compile_plan` →
:meth:`~repro.hw.accelerator.ExionAccelerator.simulate_plan` — for
identical ``(spec, config, ablation flags, scale)`` keys: every executor
re-lowered on construction, every cluster replica re-priced the same
plans, every explore point paid full cold compilation even when only
fleet knobs changed. The :class:`PlanCache` interns those artifacts once
per process:

- **plan** — lowered :class:`~repro.program.ir.PhasePlan` objects;
- **compiled** — :class:`~repro.program.compiled.CompiledPlan`
  schedules (structural, derived purely from the plan);
- **pricing** — :class:`~repro.hw.accelerator.AcceleratorReport`
  results of ``simulate_plan`` keyed by the accelerator + sparsity
  profile fingerprints and the plan itself;
- **profile** — :func:`~repro.hw.profile.estimate_profile` synthesis
  (the dominant cold-path cost: ConMerge passes over sampled tiles).

Keys are content-addressed — the same canonical key material as
:func:`~repro.program.encode.plan_digest` (spec document + config
document + ablation flags + schedule shape + scale) — so equal inputs
share one artifact no matter which layer asks, and knob-modified specs
(the explore path) never collide with their base model.

An optional **disk tier** (``cache_dir=...`` or the
``REPRO_PLAN_CACHE_DIR`` environment variable for the global cache)
persists plans, pricings and profiles across processes using the same
idiom as the explore runner cache: entries live at
``cache_dir/<sha256[:2]>/<sha256>.json``, writes are atomic
(temp file + ``os.replace``), and corrupt or torn entries are treated
as misses and transparently rewritten. Compiled schedules are memory
only — recompiling from an interned plan is cheap and pure.

Everything returned is either immutable (plans, compiled plans) or a
defensive copy (reports, profiles), so cached and cold paths stay
byte-identical. Hit/miss counters per tier can be published into a
:class:`repro.obs.metrics.MetricsRegistry` via
:meth:`PlanCache.publish_metrics`; publication is explicit (never
auto-attached to scenario observers) so process-global cache state can
never leak into deterministic run artifacts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Optional

from repro.program.compiled import CompiledPlan, compile_plan
from repro.program.encode import plan_from_dict, plan_to_dict
from repro.program.ir import PhasePlan
from repro.program.lower import lower_plan
from repro.workloads.specs import ModelSpec

#: Tier names, in lookup-cost order (also the metrics label vocabulary).
TIERS = ("plan", "compiled", "pricing", "profile")

#: Environment variable enabling the global cache's disk tier.
CACHE_DIR_ENV = "REPRO_PLAN_CACHE_DIR"


def _doc(value) -> object:
    """JSON-safe document of one key component (dataclasses included)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__name__,
            **dataclasses.asdict(value),
        }
    if isinstance(value, (list, tuple)):
        return [_doc(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _doc(v) for k, v in sorted(value.items())}
    raise TypeError(f"unsupported cache key component: {value!r}")


def _digest(doc: dict) -> str:
    """SHA-256 of the canonical JSON encoding of a key document."""
    payload = json.dumps(
        doc, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _accelerator_doc(accelerator) -> dict:
    """Content fingerprint of an accelerator configuration.

    Covers everything :meth:`simulate_plan` reads: the DSC count, clock,
    GSC capacity and the full DRAM model (bandwidth, per-bit energy,
    burst latency). Duck-typed so this module never imports ``repro.hw``
    at module scope.
    """
    return {
        "name": accelerator.name,
        "num_dscs": accelerator.num_dscs,
        "clock_hz": accelerator.clock_hz,
        "gsc_bytes": accelerator.gsc_bytes,
        "dram": _doc(accelerator.dram),
    }


def _freeze(doc) -> object:
    """Hashable mirror of a JSON-safe key document."""
    if isinstance(doc, dict):
        return tuple((k, _freeze(v)) for k, v in sorted(doc.items()))
    if isinstance(doc, (list, tuple)):
        return tuple(_freeze(v) for v in doc)
    return doc


class PlanCache:
    """Interns lowered plans, compiled schedules, pricings and profiles."""

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self._lock = threading.RLock()
        self._plans: dict = {}
        self._compiled: dict = {}
        self._pricing: dict = {}
        self._profiles: dict = {}
        self.tier_hits = {tier: 0 for tier in TIERS}
        self.tier_misses = {tier: 0 for tier in TIERS}
        self.disk_hits = 0
        self.disk_misses = 0
        # Per-registry published counts: publish_metrics increments each
        # registry by the delta since its last publication, so repeated
        # publications never double-count.
        self._published: dict = {}

    # ------------------------------------------------------------------
    # plan tier
    # ------------------------------------------------------------------
    def _plan_key(
        self,
        spec: ModelSpec,
        config,
        enable_ffn_reuse: bool,
        enable_eager_prediction: bool,
        iterations: Optional[int],
        batch: int,
        scale: str,
    ) -> dict:
        return {
            "kind": "plan",
            "spec": _doc(spec),
            "config": _doc(config),
            "ablation": {
                "enable_ffn_reuse": enable_ffn_reuse,
                "enable_eager_prediction": enable_eager_prediction,
            },
            "iterations": iterations,
            "batch": batch,
            "scale": scale,
        }

    def plan(
        self,
        spec: ModelSpec,
        config=None,
        enable_ffn_reuse: bool = True,
        enable_eager_prediction: bool = True,
        iterations: Optional[int] = None,
        batch: int = 1,
        scale: str = "paper",
    ) -> PhasePlan:
        """Memoized :func:`~repro.program.lower.lower_plan`."""
        doc = self._plan_key(
            spec, config, enable_ffn_reuse, enable_eager_prediction,
            iterations, batch, scale,
        )
        key = _freeze(doc)
        with self._lock:
            cached = self._plans.get(key)
        if cached is not None:
            self._record("plan", True)
            return cached
        self._record("plan", False)
        plan = None
        stored = self._disk_load(doc)
        if stored is not None:
            try:
                plan = plan_from_dict(stored)
            except (KeyError, TypeError, ValueError):
                plan = None  # corrupt entry: recompute and rewrite
        if plan is None:
            plan = lower_plan(
                spec,
                config=config,
                enable_ffn_reuse=enable_ffn_reuse,
                enable_eager_prediction=enable_eager_prediction,
                iterations=iterations,
                batch=batch,
                scale=scale,
            )
            self._disk_store(doc, plan_to_dict(plan))
        with self._lock:
            self._plans.setdefault(key, plan)
            return self._plans[key]

    # ------------------------------------------------------------------
    # compiled tier (memory only: pure + cheap from an interned plan)
    # ------------------------------------------------------------------
    def compiled(
        self,
        spec: ModelSpec,
        config=None,
        enable_ffn_reuse: bool = True,
        enable_eager_prediction: bool = True,
        iterations: Optional[int] = None,
        batch: int = 1,
        scale: str = "sim",
    ) -> CompiledPlan:
        """Memoized ``compile_plan(lower_plan(...))``.

        The returned :class:`~repro.program.compiled.CompiledPlan` is
        frozen and shared: every executor bound to the same
        ``(spec, config, schedule, scale)`` reuses one schedule object.
        """
        doc = self._plan_key(
            spec, config, enable_ffn_reuse, enable_eager_prediction,
            iterations, batch, scale,
        )
        key = _freeze(doc)
        with self._lock:
            cached = self._compiled.get(key)
        if cached is not None:
            self._record("compiled", True)
            return cached
        self._record("compiled", False)
        compiled = compile_plan(self.plan(
            spec,
            config=config,
            enable_ffn_reuse=enable_ffn_reuse,
            enable_eager_prediction=enable_eager_prediction,
            iterations=iterations,
            batch=batch,
            scale=scale,
        ))
        with self._lock:
            self._compiled.setdefault(key, compiled)
            return self._compiled[key]

    # ------------------------------------------------------------------
    # pricing tier
    # ------------------------------------------------------------------
    def price(self, accelerator, plan: PhasePlan, profile):
        """Memoized ``accelerator.simulate_plan(plan, profile)``.

        Keyed by the accelerator fingerprint, the plan content and the
        profile field values; returns a defensive copy each call (the
        report is a mutable dataclass carrying breakdown dicts).
        """
        acc_doc = _accelerator_doc(accelerator)
        profile_doc = _doc(profile)
        key = (_freeze(acc_doc), plan, _freeze(profile_doc))
        with self._lock:
            cached = self._pricing.get(key)
        if cached is not None:
            self._record("pricing", True)
            return self._copy_report(cached)
        self._record("pricing", False)
        report = None
        doc = None
        if self.cache_dir is not None:
            from repro.program.encode import plan_digest

            doc = {
                "kind": "pricing",
                "accelerator": acc_doc,
                "profile": profile_doc,
                "plan_digest": plan_digest(plan),
            }
            stored = self._disk_load(doc)
            if stored is not None:
                try:
                    report = self._report_from_doc(stored)
                except (KeyError, TypeError, ValueError):
                    report = None
        if report is None:
            report = accelerator.simulate_plan(plan, profile)
            if doc is not None:
                self._disk_store(doc, self._report_doc(report))
        with self._lock:
            self._pricing.setdefault(key, report)
            report = self._pricing[key]
        return self._copy_report(report)

    @staticmethod
    def _report_doc(report) -> dict:
        return {
            field.name: getattr(report, field.name)
            for field in dataclasses.fields(report)
        }

    @staticmethod
    def _report_from_doc(doc: dict):
        from repro.hw.accelerator import AcceleratorReport

        fields = {f.name for f in dataclasses.fields(AcceleratorReport)}
        if set(doc) != fields:
            raise ValueError("pricing entry fields do not match the report")
        return AcceleratorReport(**doc)

    @staticmethod
    def _copy_report(report):
        return dataclasses.replace(
            report,
            energy_breakdown_j=dict(report.energy_breakdown_j),
            op_class_energy_j=dict(report.op_class_energy_j),
        )

    # ------------------------------------------------------------------
    # profile tier
    # ------------------------------------------------------------------
    def profile(self, spec: ModelSpec, seed: int = 0, **kwargs):
        """Memoized :func:`~repro.hw.profile.estimate_profile`.

        The synthesis (mask generation + real ConMerge passes) dominates
        cold fleet setup, so equal ``(spec fields, seed, sampling
        knobs)`` share one estimate across every replica and explore
        point. Returns a copy: :class:`~repro.hw.profile.SparsityProfile`
        is a mutable dataclass and callers may adjust theirs.
        """
        doc = {
            "kind": "profile",
            "spec": _doc(spec),
            "seed": seed,
            "kwargs": _doc(kwargs),
        }
        key = _freeze(doc)
        with self._lock:
            cached = self._profiles.get(key)
        if cached is not None:
            self._record("profile", True)
            return dataclasses.replace(cached)
        self._record("profile", False)
        from repro.hw.profile import SparsityProfile, estimate_profile

        profile = None
        stored = self._disk_load(doc)
        if stored is not None:
            try:
                profile = SparsityProfile(**stored)
            except (TypeError, ValueError):
                profile = None
        if profile is None:
            profile = estimate_profile(spec, seed=seed, **kwargs)
            self._disk_store(doc, dataclasses.asdict(profile))
        with self._lock:
            self._profiles.setdefault(key, profile)
            profile = self._profiles[key]
        return dataclasses.replace(profile)

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------
    def _entry_path(self, doc: dict) -> Path:
        key = _digest(doc)
        return self.cache_dir / key[:2] / f"{key}.json"

    def _disk_load(self, doc: dict) -> Optional[dict]:
        if self.cache_dir is None:
            return None
        path = self._entry_path(doc)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            # Missing, unreadable, or a torn write from a crashed run:
            # treat as a miss; the recompute rewrites the entry.
            self.disk_misses += 1
            return None
        payload = data.get("payload") if isinstance(data, dict) else None
        if not isinstance(payload, dict):
            self.disk_misses += 1
            return None
        self.disk_hits += 1
        return payload

    def _disk_store(self, doc: dict, payload: dict) -> None:
        if self.cache_dir is None:
            return
        path = self._entry_path(doc)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            body = json.dumps(
                {"key": doc, "payload": payload},
                sort_keys=True, separators=(",", ":"), allow_nan=False,
            )
            tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
            tmp.write_text(body + "\n", encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            pass  # a read-only or full disk degrades to memory-only

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def _record(self, tier: str, hit: bool) -> None:
        with self._lock:
            if hit:
                self.tier_hits[tier] += 1
            else:
                self.tier_misses[tier] += 1

    @property
    def hits(self) -> int:
        return sum(self.tier_hits.values())

    @property
    def misses(self) -> int:
        return sum(self.tier_misses.values())

    def stats(self) -> dict:
        """Occupancy and hit statistics, keys sorted for stable diffs."""
        with self._lock:
            info = {
                "plans": len(self._plans),
                "compiled": len(self._compiled),
                "pricings": len(self._pricing),
                "profiles": len(self._profiles),
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "disk_misses": self.disk_misses,
            }
            for tier in TIERS:
                info[f"{tier}_hits"] = self.tier_hits[tier]
                info[f"{tier}_misses"] = self.tier_misses[tier]
        return dict(sorted(info.items()))

    def publish_metrics(self, registry) -> None:
        """Publish counters/gauges into an obs metrics registry.

        ``repro_plan_cache_lookups_total{tier,outcome}`` counters and
        ``repro_plan_cache_entries{tier}`` gauges. Incremental per
        registry: repeated publications add only the delta since the
        last call, so periodic scraping never double-counts. Publication
        is explicit — the cache never attaches itself to an observer, so
        scenario artifacts stay independent of process-global state.
        """
        lookups = registry.counter(
            "repro_plan_cache_lookups_total",
            "PlanCache lookups by tier and outcome",
            labels=("tier", "outcome"),
        )
        entries = registry.gauge(
            "repro_plan_cache_entries",
            "Interned artifacts per PlanCache tier",
            labels=("tier",),
        )
        with self._lock:
            seen = self._published.setdefault(id(registry), {})
            counts = {
                "hit": dict(self.tier_hits),
                "miss": dict(self.tier_misses),
            }
            counts["hit"]["disk"] = self.disk_hits
            counts["miss"]["disk"] = self.disk_misses
            sizes = {
                "plan": len(self._plans),
                "compiled": len(self._compiled),
                "pricing": len(self._pricing),
                "profile": len(self._profiles),
            }
        for outcome, per_tier in sorted(counts.items()):
            for tier, count in sorted(per_tier.items()):
                delta = count - seen.get((tier, outcome), 0)
                if delta > 0:
                    lookups.inc(delta, tier=tier, outcome=outcome)
                seen[(tier, outcome)] = count
        for tier, size in sorted(sizes.items()):
            entries.set(size, tier=tier)

    def clear(self) -> None:
        """Drop every interned artifact (counters are kept)."""
        with self._lock:
            self._plans.clear()
            self._compiled.clear()
            self._pricing.clear()
            self._profiles.clear()


# ----------------------------------------------------------------------
# the process-global cache
# ----------------------------------------------------------------------
_global_cache: Optional[PlanCache] = None
_global_lock = threading.Lock()


def get_plan_cache() -> PlanCache:
    """The process-wide cache every construction site shares.

    Created lazily; the ``REPRO_PLAN_CACHE_DIR`` environment variable
    (read at first use) enables its disk tier.
    """
    global _global_cache
    with _global_lock:
        if _global_cache is None:
            _global_cache = PlanCache(
                cache_dir=os.environ.get(CACHE_DIR_ENV) or None
            )
        return _global_cache


def set_plan_cache(cache: PlanCache) -> PlanCache:
    """Install ``cache`` as the process-global cache; returns the old one."""
    global _global_cache
    with _global_lock:
        old, _global_cache = _global_cache, cache
    return old if old is not None else cache


def reset_plan_cache(cache_dir: Optional[str] = None) -> PlanCache:
    """Replace the global cache with a fresh (empty) one."""
    cache = PlanCache(cache_dir=cache_dir)
    set_plan_cache(cache)
    return cache


@contextmanager
def fresh_plan_cache(cache_dir: Optional[str] = None):
    """Temporarily swap in an empty global cache (bench/test isolation)."""
    global _global_cache
    with _global_lock:
        previous = _global_cache
        _global_cache = PlanCache(cache_dir=cache_dir)
        cache = _global_cache
    try:
        yield cache
    finally:
        with _global_lock:
            _global_cache = previous


# ----------------------------------------------------------------------
# shared construction helpers (the deduplicated executor fallback)
# ----------------------------------------------------------------------
def plan_for(
    spec: ModelSpec,
    config=None,
    iterations: Optional[int] = None,
    batch: int = 1,
    scale: str = "sim",
) -> PhasePlan:
    """Lower (or reuse) a plan through the global cache."""
    return get_plan_cache().plan(
        spec, config=config, iterations=iterations, batch=batch, scale=scale
    )


def compiled_plan_for(
    spec: ModelSpec,
    config=None,
    iterations: Optional[int] = None,
    scale: str = "sim",
) -> CompiledPlan:
    """The one shared executor fallback: a cached compiled sim-scale plan.

    Replaces the ``compile_plan(lower_plan(...))`` blocks that every
    executor (and the dry-run continuous server) used to duplicate.
    """
    return get_plan_cache().compiled(
        spec, config=config, iterations=iterations, scale=scale
    )


__all__ = [
    "CACHE_DIR_ENV",
    "PlanCache",
    "TIERS",
    "compiled_plan_for",
    "fresh_plan_cache",
    "get_plan_cache",
    "plan_for",
    "reset_plan_cache",
    "set_plan_cache",
]
