"""Plan compilation: :class:`PhasePlan` → :class:`CompiledPlan`.

A :class:`~repro.program.ir.PhasePlan` says *what* work each iteration
does; a :class:`CompiledPlan` fixes *how* the compiled executor
(:mod:`repro.exec`) will run it, with every schedule decision taken once
up front:

- the step table is regrouped into **phases** — one dense iteration plus
  the sparse iterations that reuse its bitmask — so the executor's inner
  loop is a flat replay with zero per-step branching;
- the SDUE **tile geometry** the per-phase bitmask→gather conversions and
  ConMerge layouts will use is pinned;
- the **expected index-set sizes** (from the plan's sparsity targets) are
  derivable without running the model, which is what
  ``python -m repro program --compile`` prints.

The compilation is purely structural: no weights, activations or RNG are
touched, so the same :class:`CompiledPlan` drives any seed. The per-phase
*numeric* artifacts (gather indices, partial sums, log-domain operands)
are produced at run time by :mod:`repro.exec`, once per phase, exactly
where this plan schedules them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.program.ir import PhasePlan

#: SDUE tile extent (paper Section III-B: 16x16 tile blocks).
TILE_ROWS = 16
TILE_WIDTH = 16


@dataclass(frozen=True)
class CompiledStep:
    """One executor iteration: its phase and its role within it."""

    index: int
    is_dense: bool
    phase: int

    def __post_init__(self) -> None:
        if self.index < 0 or self.phase < 0:
            raise ValueError("step index and phase must be >= 0")


@dataclass(frozen=True)
class PhaseSegment:
    """One dense iteration plus the sparse iterations amortizing it."""

    index: int
    dense_step: int
    sparse_steps: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "sparse_steps", tuple(self.sparse_steps))

    @property
    def length(self) -> int:
        return 1 + len(self.sparse_steps)


@dataclass(frozen=True)
class CompiledPlan:
    """A :class:`PhasePlan` frozen into executor order.

    ``steps`` replays one :class:`CompiledStep` per iteration; ``phases``
    gives the same schedule grouped by dense phase. ``tile_rows`` /
    ``tile_width`` pin the SDUE tile geometry of every bitmask→gather and
    ConMerge conversion the executor performs at phase boundaries.
    """

    plan: PhasePlan
    steps: tuple = ()
    phases: tuple = ()
    tile_rows: int = TILE_ROWS
    tile_width: int = TILE_WIDTH

    def __post_init__(self) -> None:
        if self.tile_rows <= 0 or self.tile_width <= 0:
            raise ValueError("tile geometry must be positive")
        object.__setattr__(self, "steps", tuple(self.steps))
        object.__setattr__(self, "phases", tuple(self.phases))

    # ------------------------------------------------------------------
    # schedule views
    # ------------------------------------------------------------------
    @property
    def iterations(self) -> int:
        return len(self.steps)

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def dense_steps(self) -> tuple:
        return tuple(s.index for s in self.steps if s.is_dense)

    @property
    def max_phase_length(self) -> int:
        return max((p.length for p in self.phases), default=0)

    # ------------------------------------------------------------------
    # continuous-batching boundary predicates
    # ------------------------------------------------------------------
    @property
    def dense_flags(self) -> tuple:
        """``is_dense`` per step — the whole schedule as one bit pattern."""
        return tuple(s.is_dense for s in self.steps)

    def is_boundary(self, cursor: int) -> bool:
        """Whether a request whose *next* step is ``cursor`` sits at a
        dense-phase boundary.

        At a boundary the request either recompiles its FFN state on the
        coming dense step or has finished — in both cases it carries no
        sparse-phase state forward, so batch membership may change around
        it. ``cursor == iterations`` (the request just finished) counts.
        """
        if cursor < 0 or cursor > self.iterations:
            raise ValueError(f"cursor {cursor} outside [0, {self.iterations}]")
        return cursor == self.iterations or self.steps[cursor].is_dense

    def cursors_aligned(self, cursors) -> bool:
        """Whether requests at ``cursors`` can run the rest of the plan in
        lockstep: every pair must agree on dense/sparse for the steps they
        will share. A fresh join is ``cursors_aligned(active + [0])``.

        For the strictly periodic schedules :func:`schedule_phases`
        produces, requests admitted at dense boundaries stay congruent
        modulo the phase length forever — this predicate is how the
        scheduler *proves* that instead of assuming it.
        """
        flags = self.dense_flags
        total = len(flags)
        done = [c for c in cursors if not 0 <= c <= total]
        if done:
            raise ValueError(f"cursors {done} outside [0, {total}]")
        live = sorted(c for c in cursors if c < total)
        for a, b in zip(live, live[1:]):
            overlap = total - b
            if flags[a:a + overlap] != flags[b:]:
                return False
        return True

    # ------------------------------------------------------------------
    # expected index-set statistics (CLI --compile report)
    # ------------------------------------------------------------------
    def index_set_stats(self) -> dict:
        """Expected per-phase index-set sizes from the plan's targets.

        Everything here is computable without running the model: mask
        shapes come from the program dimensions, expected gather sizes
        from the sparsity targets the schedule was lowered for. The
        run-time sets differ per seed but match these in expectation —
        the report is for sizing, not for parity.
        """
        program = self.plan.program
        tokens = program.tokens
        hidden = program.hidden
        heads = program.heads
        stats: dict = {
            "model": program.model,
            "scale": program.scale,
            "iterations": self.iterations,
            "phases": self.num_phases,
            "max_phase_length": self.max_phase_length,
            "tile_rows": self.tile_rows,
            "tile_width": self.tile_width,
        }
        if self.plan.enable_ffn_reuse:
            mask_elems = tokens * hidden
            expected_nnz = int(
                round((1.0 - self.plan.ffn_target_sparsity) * mask_elems)
            )
            stats["ffn"] = {
                "mask_shape": [tokens, hidden],
                "masks_per_phase": program.depth,
                "expected_gather_size": expected_nnz,
                "expected_sparsity": self.plan.ffn_target_sparsity,
                "tiles_per_mask": (
                    math.ceil(tokens / self.tile_rows)
                    * math.ceil(hidden / self.tile_width)
                ),
                "sparse_steps_amortizing": max(
                    (len(p.sparse_steps) for p in self.phases), default=0
                ),
            }
        if self.plan.enable_eager_prediction:
            tk = tokens
            keep_per_row = max(1, math.ceil(self.plan.top_k_ratio * tk))
            stats["attention"] = {
                "score_shape": [heads, tokens, tk],
                "keep_per_row": keep_per_row,
                "expected_keep_size": heads * tokens * keep_per_row,
                "cached_weight_operands": 2 * program.depth,
            }
        return stats


@dataclass
class _PhaseBuilder:
    dense_step: int
    sparse_steps: list = field(default_factory=list)


def compile_plan(plan: PhasePlan) -> CompiledPlan:
    """Freeze a lowered :class:`PhasePlan` into executor order.

    Dense steps open a new phase; each following sparse step joins the
    open phase (the same grouping :class:`repro.core.ffn_reuse.FFNReuse`
    derives step by step at run time, taken here once). A plan whose
    first step is sparse is rejected — the run-time managers would fall
    back to a dense run there, so such a plan was lowered inconsistently.
    """
    builders: list[_PhaseBuilder] = []
    steps: list[CompiledStep] = []
    for step in plan.steps:
        if step.is_dense:
            builders.append(_PhaseBuilder(dense_step=step.index))
        else:
            if not builders:
                raise ValueError(
                    "phase plan starts with a sparse step; cannot compile"
                )
            builders[-1].sparse_steps.append(step.index)
        steps.append(
            CompiledStep(
                index=step.index,
                is_dense=step.is_dense,
                phase=max(0, len(builders) - 1),
            )
        )
    phases = tuple(
        PhaseSegment(
            index=i, dense_step=b.dense_step, sparse_steps=tuple(b.sparse_steps)
        )
        for i, b in enumerate(builders)
    )
    return CompiledPlan(plan=plan, steps=tuple(steps), phases=phases)


__all__ = [
    "CompiledPlan",
    "CompiledStep",
    "PhaseSegment",
    "TILE_ROWS",
    "TILE_WIDTH",
    "compile_plan",
]
