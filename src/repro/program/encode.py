"""Canonical serialization of iteration programs and phase plans.

Programs and plans are pure data, so they serialize to plain JSON
documents and round-trip losslessly. Serialization is *canonical* —
key-sorted, fixed separators, trailing newline — which makes the bytes
of a lowered plan a determinism fingerprint: the same spec + ablation
config must encode to the same bytes on every run, machine and Python
version (the ``program_lowering`` bench and ``tests/program`` gate
this).
"""

from __future__ import annotations

import hashlib
import json

from repro.program.ir import IterationProgram, Op, PhasePlan, PhaseStep


def op_to_dict(op: Op) -> dict:
    """Plain-JSON document of one op."""
    return {
        "name": op.name,
        "kind": op.kind.value,
        "r": op.r,
        "k": op.k,
        "c": op.c,
        "count": op.count,
        "has_weights": op.has_weights,
    }


def op_from_dict(doc: dict) -> Op:
    """Inverse of :func:`op_to_dict`."""
    return Op(
        name=doc["name"],
        kind=doc["kind"],
        r=doc["r"],
        k=doc["k"],
        c=doc["c"],
        count=doc["count"],
        has_weights=doc["has_weights"],
    )


def program_to_dict(program: IterationProgram) -> dict:
    """Plain-JSON document of one iteration program."""
    return {
        "model": program.model,
        "scale": program.scale,
        "tokens": program.tokens,
        "dim": program.dim,
        "heads": program.heads,
        "depth": program.depth,
        "ffn_mult": program.ffn_mult,
        "activation": program.activation,
        "context_tokens": program.context_tokens,
        "temporal_frames": program.temporal_frames,
        "ops": [op_to_dict(op) for op in program.ops],
        "totals": {
            "macs": program.total_macs,
            "weight_bytes": program.weight_bytes,
            "macs_by_kind": program.macs_by_kind(),
        },
    }


def program_from_dict(doc: dict) -> IterationProgram:
    """Inverse of :func:`program_to_dict` (totals are re-derived)."""
    return IterationProgram(
        model=doc["model"],
        scale=doc["scale"],
        tokens=doc["tokens"],
        dim=doc["dim"],
        heads=doc["heads"],
        depth=doc["depth"],
        ffn_mult=doc["ffn_mult"],
        activation=doc["activation"],
        context_tokens=doc["context_tokens"],
        temporal_frames=doc["temporal_frames"],
        ops=tuple(op_from_dict(op) for op in doc["ops"]),
    )


def plan_to_dict(plan: PhasePlan) -> dict:
    """Plain-JSON document of one phase plan.

    Every step is encoded explicitly as ``[index, is_dense,
    weight_fetch]`` — deliberately redundant with the schedule
    parameters, so a digest change pins down *which* iterations moved,
    and a hand-edited document with an inconsistent schedule still
    round-trips to exactly what it says.
    """
    return {
        "program": program_to_dict(plan.program),
        "steps": [
            [step.index, step.is_dense, step.weight_fetch]
            for step in plan.steps
        ],
        "enable_ffn_reuse": plan.enable_ffn_reuse,
        "enable_eager_prediction": plan.enable_eager_prediction,
        "batch": plan.batch,
        "sparse_iters_n": plan.sparse_iters_n,
        "ffn_target_sparsity": plan.ffn_target_sparsity,
        "intra_sparsity_target": plan.intra_sparsity_target,
        "top_k_ratio": plan.top_k_ratio,
        "q_threshold": plan.q_threshold,
        "prediction_bits": plan.prediction_bits,
        "totals": {
            "iterations": plan.iterations,
            "dense_iterations": plan.dense_iterations,
            "dense_equivalent_macs": plan.dense_equivalent_macs,
        },
    }


def plan_from_dict(doc: dict) -> PhasePlan:
    """Inverse of :func:`plan_to_dict` (totals are re-derived)."""
    return PhasePlan(
        program=program_from_dict(doc["program"]),
        steps=tuple(
            PhaseStep(index=index, is_dense=is_dense, weight_fetch=fetch)
            for index, is_dense, fetch in doc["steps"]
        ),
        enable_ffn_reuse=doc["enable_ffn_reuse"],
        enable_eager_prediction=doc["enable_eager_prediction"],
        batch=doc["batch"],
        sparse_iters_n=doc["sparse_iters_n"],
        ffn_target_sparsity=doc["ffn_target_sparsity"],
        intra_sparsity_target=doc["intra_sparsity_target"],
        top_k_ratio=doc["top_k_ratio"],
        q_threshold=doc["q_threshold"],
        prediction_bits=doc["prediction_bits"],
    )


def canonical_json(doc: dict) -> str:
    """Canonical JSON: key-sorted, fixed separators, trailing newline."""
    return (
        json.dumps(doc, sort_keys=True, separators=(",", ":"),
                   allow_nan=False)
        + "\n"
    )


def plan_json(plan: PhasePlan) -> str:
    """Canonical JSON bytes of one plan (the determinism fingerprint)."""
    return canonical_json(plan_to_dict(plan))


def plan_digest(plan: PhasePlan) -> str:
    """SHA-256 hex digest of the canonical plan encoding."""
    return hashlib.sha256(plan_json(plan).encode("utf-8")).hexdigest()


__all__ = [
    "canonical_json",
    "op_from_dict",
    "op_to_dict",
    "plan_digest",
    "plan_from_dict",
    "plan_json",
    "plan_to_dict",
    "program_from_dict",
    "program_to_dict",
]
