"""Lowering: model spec + ablation config -> IR.

This module is the repository's **only** model-structure traversal. A
:class:`~repro.workloads.specs.ModelSpec` is lowered once into an
:class:`~repro.program.ir.IterationProgram` (the ordered MMUL ops of one
denoising iteration) and, with an ablation configuration, into a
:class:`~repro.program.ir.PhasePlan` (the dense/sparse phase of every
iteration under FFN-Reuse plus residency/sparsity annotations). Every
backend — the EXION simulator, GPU roofline, Cambricon-D, Delta-DiT
accounting, explore objectives, cluster service-time pricing — consumes
these objects; none walks the model itself.

Paper-scale programs use the published model dimensions (``paper_*``
spec fields) so tile counts and DRAM traffic match the scale the paper
evaluates; sim-scale programs use the runnable numpy dimensions and
back the software baselines' compute accounting.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from typing import Optional

from repro.core.ffn_reuse import schedule_phases
from repro.program.ir import IterationProgram, Op, PhasePlan, PhaseStep
from repro.workloads.specs import ModelSpec

#: Context length of the sim-scale conditioning encoder
#: (:class:`repro.models.conditioning.ConditioningEncoder` ``max_tokens``).
SIM_CONTEXT_TOKENS = 16


def block_ops(
    tokens: int,
    dim: int,
    heads: int,
    ffn_mult: int,
    activation: str = "gelu",
    context_tokens: Optional[int] = None,
    temporal_frames: Optional[int] = None,
) -> list:
    """MMUL ops of one transformer block at the given dimensions.

    ``context_tokens`` adds a cross-attention group; ``temporal_frames``
    factorizes self-attention into per-frame spatial attention plus a
    temporal-attention group attending across frames at each spatial
    location (video-DiT-style blocks). All emitted ops carry standard
    :class:`~repro.program.ir.OpKind` categories, so backends price
    temporal attention with zero special-casing.
    """
    if dim % heads != 0:
        raise ValueError(f"dim {dim} must divide into {heads} heads")
    head_dim = dim // heads
    hidden = ffn_mult * dim
    ffn1_cols = 2 * hidden if activation == "geglu" else hidden

    ops = [
        Op("q_proj", "qkv", tokens, dim, dim),
        Op("k_proj", "qkv", tokens, dim, dim),
        Op("v_proj", "qkv", tokens, dim, dim),
    ]
    if temporal_frames:
        if tokens % temporal_frames != 0:
            raise ValueError(
                f"temporal attention needs tokens ({tokens}) divisible by "
                f"frames ({temporal_frames})"
            )
        spatial = tokens // temporal_frames
        if spatial < 2 or temporal_frames < 2:
            raise ValueError(
                "temporal attention needs >= 2 frames and >= 2 spatial "
                "tokens per frame"
            )
        # Spatial attention runs per frame; temporal attention attends
        # across frames at each spatial location with its own projections.
        ops.extend(
            [
                Op("attn_score", "attention", spatial, head_dim, spatial,
                   count=heads * temporal_frames, has_weights=False),
                Op("attn_av", "attention", spatial, spatial, head_dim,
                   count=heads * temporal_frames, has_weights=False),
                Op("out_proj", "attention", tokens, dim, dim),
                Op("temporal_q_proj", "qkv", tokens, dim, dim),
                Op("temporal_k_proj", "qkv", tokens, dim, dim),
                Op("temporal_v_proj", "qkv", tokens, dim, dim),
                Op("temporal_attn_score", "attention", temporal_frames,
                   head_dim, temporal_frames, count=heads * spatial,
                   has_weights=False),
                Op("temporal_attn_av", "attention", temporal_frames,
                   temporal_frames, head_dim, count=heads * spatial,
                   has_weights=False),
                Op("temporal_out_proj", "attention", tokens, dim, dim),
            ]
        )
    else:
        ops.extend(
            [
                Op("attn_score", "attention", tokens, head_dim, tokens,
                   count=heads, has_weights=False),
                Op("attn_av", "attention", tokens, tokens, head_dim,
                   count=heads, has_weights=False),
                Op("out_proj", "attention", tokens, dim, dim),
            ]
        )
    ops.extend(
        [
            Op("ffn_linear1", "ffn1", tokens, dim, ffn1_cols),
            Op("ffn_linear2", "ffn2", tokens, hidden, dim),
        ]
    )
    if context_tokens:
        ops.extend(
            [
                Op("xattn_q_proj", "qkv", tokens, dim, dim),
                Op("xattn_k_proj", "qkv", context_tokens, dim, dim),
                Op("xattn_v_proj", "qkv", context_tokens, dim, dim),
                Op("xattn_score", "attention", tokens, head_dim,
                   context_tokens, count=heads, has_weights=False),
                Op("xattn_av", "attention", tokens, context_tokens,
                   head_dim, count=heads, has_weights=False),
                Op("xattn_out_proj", "attention", tokens, dim, dim),
            ]
        )
    return ops


def spec_block_ops(spec: ModelSpec, scale: str = "paper") -> list:
    """One transformer block's ops lowered from a model spec."""
    if scale == "paper":
        return block_ops(
            spec.paper_tokens,
            spec.paper_dim,
            spec.paper_heads,
            spec.paper_ffn_mult,
            activation=spec.activation,
            context_tokens=spec.paper_context_tokens,
            temporal_frames=spec.paper_temporal_frames,
        )
    if scale == "sim":
        return block_ops(
            spec.tokens,
            spec.dim,
            spec.num_heads,
            spec.ffn_mult,
            activation=spec.activation,
            context_tokens=SIM_CONTEXT_TOKENS if spec.context_dim else None,
            temporal_frames=None,
        )
    raise ValueError(f"scale must be 'paper' or 'sim', got {scale!r}")


@lru_cache(maxsize=256)
def lower_program(spec: ModelSpec, scale: str = "paper") -> IterationProgram:
    """Lower one denoising iteration of ``spec`` into an IR program.

    Transformer blocks repeat ``depth`` times (encoded as op ``count``);
    at paper scale the non-transformer remainder (ResBlocks, projections,
    VAE/conditioning amortized per iteration) is one dense ``etc`` op
    sized from the spec's transformer share — matching Fig. 4's "Etc."
    category, which EXION executes densely.
    """
    if scale == "paper":
        tokens, dim = spec.paper_tokens, spec.paper_dim
        heads, depth = spec.paper_heads, spec.paper_depth
        ffn_mult = spec.paper_ffn_mult
        context = spec.paper_context_tokens
        frames = spec.paper_temporal_frames
    elif scale == "sim":
        tokens, dim = spec.tokens, spec.dim
        heads, depth = spec.num_heads, spec.depth
        ffn_mult = spec.ffn_mult
        context = SIM_CONTEXT_TOKENS if spec.context_dim else None
        frames = None
    else:
        raise ValueError(f"scale must be 'paper' or 'sim', got {scale!r}")

    ops = [
        replace(op, count=op.count * depth)
        for op in spec_block_ops(spec, scale)
    ]
    if scale == "paper":
        transformer_macs = sum(op.macs for op in ops)
        share = spec.paper_transformer_share
        if share < 1.0:
            etc_macs = transformer_macs * (1.0 - share) / share
            # Shape the remainder as square-ish MMUL tiles at model width.
            r = max(1, int(round(etc_macs / (dim * dim))))
            ops.append(Op("non_transformer", "etc", r, dim, dim))
    return IterationProgram(
        model=spec.name,
        scale=scale,
        tokens=tokens,
        dim=dim,
        heads=heads,
        depth=depth,
        ffn_mult=ffn_mult,
        activation=spec.activation,
        context_tokens=context,
        temporal_frames=frames,
        ops=tuple(ops),
    )


def lower_plan(
    spec: ModelSpec,
    config=None,
    enable_ffn_reuse: bool = True,
    enable_eager_prediction: bool = True,
    iterations: Optional[int] = None,
    batch: int = 1,
    scale: str = "paper",
) -> PhasePlan:
    """Lower a full generation of ``spec`` into a phase plan.

    ``config`` (an :class:`~repro.core.config.ExionConfig`) supplies the
    ablation enable flags *and* the schedule-shaping knobs when given —
    the FFN-Reuse period ``sparse_iters_n``, sparsity targets, top-k and
    log-domain bits all come from the config, exactly as the runnable
    pipeline would execute them; otherwise the two explicit flags apply
    and the spec's Table I knobs shape and annotate the plan. The
    dense/sparse cadence comes from
    :func:`repro.core.ffn_reuse.schedule_phases` — the same phase math
    the runnable FFN-Reuse manager uses, so priced and executed
    schedules cannot drift.
    """
    if config is not None:
        enable_ffn_reuse = config.enable_ffn_reuse
        enable_eager_prediction = config.enable_eager_prediction
        sparse_iters_n = config.sparse_iters_n
        ffn_target_sparsity = config.ffn_target_sparsity
        top_k_ratio = config.top_k_ratio
        q_threshold = config.q_threshold
        prediction_bits = config.prediction_bits
    else:
        sparse_iters_n = spec.sparse_iters_n
        ffn_target_sparsity = spec.target_inter_sparsity
        top_k_ratio = spec.top_k_ratio
        q_threshold = spec.q_threshold
        prediction_bits = 12
    total = iterations if iterations is not None else spec.total_iterations
    if enable_ffn_reuse:
        phases = schedule_phases(total, sparse_iters_n)
    else:
        phases = [True] * total
    steps = tuple(
        PhaseStep(
            index=index,
            is_dense=is_dense,
            weight_fetch="cold" if index == 0 else "resident",
        )
        for index, is_dense in enumerate(phases)
    )
    return PhasePlan(
        program=lower_program(spec, scale),
        steps=steps,
        enable_ffn_reuse=enable_ffn_reuse,
        enable_eager_prediction=enable_eager_prediction,
        batch=batch,
        sparse_iters_n=sparse_iters_n,
        ffn_target_sparsity=ffn_target_sparsity,
        intra_sparsity_target=spec.target_intra_sparsity,
        top_k_ratio=top_k_ratio,
        q_threshold=q_threshold,
        prediction_bits=prediction_bits,
    )


__all__ = [
    "SIM_CONTEXT_TOKENS",
    "block_ops",
    "lower_plan",
    "lower_program",
    "schedule_phases",
    "spec_block_ops",
]
