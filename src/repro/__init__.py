"""Reproduction of EXION (HPCA 2025).

EXION is a software-hardware co-designed accelerator for diffusion-model
inference. This package reimplements, in pure Python/numpy:

- the diffusion-model substrate the paper evaluates on (``repro.models``),
- the paper's primary contribution: the FFN-Reuse and eager-prediction
  sparsity algorithms plus the ConMerge data-compaction mechanism
  (``repro.core``),
- post-training quantization matching the hardware datapath (``repro.quant``),
- a cycle-level simulator of the EXION hardware (``repro.hw``),
- GPU and Cambricon-D baselines (``repro.baselines``),
- benchmark workloads and analysis helpers (``repro.workloads``,
  ``repro.analysis``),
- a batched multi-request serving layer that coalesces concurrent
  generation requests into vectorized micro-batches with cross-request
  model/threshold caching (``repro.serve``),
- a trace-driven multi-accelerator fleet simulator layering open-loop
  traffic, routing policies and SLO accounting over the serving and
  hardware layers (``repro.cluster``),
- a parallel design-space exploration engine searching hardware,
  ablation and fleet-scenario knobs with Pareto-frontier reporting
  (``repro.explore``),
- the unified iteration-program IR: one lowering from model spec +
  ablation config to the per-iteration work schedule that every backend
  above prices (``repro.program``).

Quickstart::

    from repro import build_model, ExionPipeline, ExionConfig

    model = build_model("dit", seed=0)
    pipeline = ExionPipeline(model, ExionConfig.for_model("dit"))
    result = pipeline.generate(seed=1)
    print(result.stats.ffn_output_sparsity)

Serving quickstart::

    from repro import BatchingPolicy, ExionServer

    server = ExionServer("dit", policy=BatchingPolicy(max_batch_size=8))
    ids = [server.submit(seed=s, class_label=207) for s in range(8)]
    results = server.run_until_drained()

Fleet quickstart (see ``repro.cluster`` for the full tour)::

    from repro.cluster import (
        PoissonProcess, build_replicas, make_router, simulate_cluster,
        synthesize_trace,
    )

    trace = synthesize_trace(PoissonProcess(rate_rps=200.0), 64, rng=0)
    report = simulate_cluster(trace, replicas=build_replicas(4),
                              router=make_router("jsq"))
"""

from repro._version import __version__
from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline, GenerationResult
from repro.models.zoo import BENCHMARK_MODELS, build_model
from repro.serve import BatchedPipeline, BatchingPolicy, ExionServer

__all__ = [
    "BENCHMARK_MODELS",
    "BatchedPipeline",
    "BatchingPolicy",
    "ExionConfig",
    "ExionPipeline",
    "ExionServer",
    "GenerationResult",
    "__version__",
    "build_model",
]
