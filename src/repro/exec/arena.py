"""Reusable scratch buffers for the compiled executors' step loops.

The compiled step kernels allocate the same handful of dense scratch
arrays every denoising iteration — the scatter target overlaying the
dense hidden state, the masked-update operand, the EP attention
probability/attended tensors, the continuous executor's per-tick latent
and membership restack buffers. Their shapes are fixed per
``(plan, batch shape)``, so an :class:`ExecArena` hands the same buffer
back on every iteration instead of paying an allocation + page-fault per
step.

The reuse invariant: **arena buffers are transient within one kernel
call** — each buffer is fully overwritten before it is read (``copyto``,
``out=``, ``fill``) and nothing the kernel returns aliases it — except
the continuous executor's membership-restack buffers, which stay valid
until the *next* index-set edit and are never stack sources themselves
(per-run FFN slices always view the dense compile's arrays, never a
restack output). Under that invariant the arithmetic is
expression-for-expression identical to the allocating path, so samples,
:class:`~repro.core.sparsity.RunStats` and reports stay byte-identical
(the differential parity suites enforce this).

Every kernel takes ``arena=None`` and falls back to plain allocation —
the same nil-by-default pattern as the obs layer — so library callers of
the kernels are unaffected.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class ExecArena:
    """Named, shape-keyed scratch buffers reused across iterations."""

    def __init__(self) -> None:
        self._buffers: dict = {}
        self.allocations = 0
        self.reuses = 0

    def take(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """A buffer of ``shape`` — reused when the key was seen before.

        Contents are unspecified: the caller must fully overwrite the
        buffer before reading it.
        """
        key = (name, tuple(shape), np.dtype(dtype).str)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[key] = buffer
            self.allocations += 1
        else:
            self.reuses += 1
        return buffer

    def zeros(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """A zero-filled reusable buffer (bit-equal to ``np.zeros``)."""
        buffer = self.take(name, shape, dtype=dtype)
        buffer.fill(0)
        return buffer

    def stats(self) -> dict:
        """Occupancy and reuse counters, keys sorted for stable diffs."""
        return {
            "allocations": self.allocations,
            "buffers": len(self._buffers),
            "bytes": int(sum(b.nbytes for b in self._buffers.values())),
            "reuses": self.reuses,
        }

    def clear(self) -> None:
        self._buffers.clear()


def arena_take(
    arena: Optional[ExecArena], name: str, shape, dtype=np.float64
) -> np.ndarray:
    """``arena.take`` or a plain allocation when no arena is attached."""
    if arena is None:
        return np.empty(shape, dtype=dtype)
    return arena.take(name, shape, dtype=dtype)


def arena_zeros(
    arena: Optional[ExecArena], name: str, shape, dtype=np.float64
) -> np.ndarray:
    """``arena.zeros`` or ``np.zeros`` when no arena is attached."""
    if arena is None:
        return np.zeros(shape, dtype=dtype)
    return arena.zeros(name, shape, dtype=dtype)


__all__ = ["ExecArena", "arena_take", "arena_zeros"]
