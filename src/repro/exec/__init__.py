"""Compiled execution of the generation hot path.

The interpreted pipeline (:class:`repro.core.pipeline.ExionPipeline` with
its executor hooks) re-derives per-step work every iteration: it
re-quantizes constant weight matrices for the log-domain prediction,
re-walks bitmasks, re-embeds deterministic timesteps and allocates trace
objects nobody reads. :mod:`repro.exec` splits that work along the
plan-time / step-time boundary the
:class:`~repro.program.compiled.CompiledPlan` fixes:

==============================  ========================================
plan time (once)                step time (per iteration)
==============================  ========================================
timestep embeddings + adaLN     pure gather/scatter + GEMMs
log-domain weight operands      shared activation quantization
dense/sparse phase schedule     phase-state replay
------------------------------  ----------------------------------------
phase time (once per phase)
------------------------------
bitmask → gather conversion
2nd-layer partial sums
cross-attention K/V constants
==============================  ========================================

:class:`CompiledExecutor` runs one generation;
:class:`CompiledBatchedExecutor` runs a micro-batch. Both are
**bit-identical** to their interpreted counterparts — the interpreted
path stays in the tree as the reference oracle, and the differential
parity suite in ``tests/exec/`` holds samples and
:class:`~repro.core.sparsity.RunStats` byte-for-byte equal across every
model, ablation and seed it sweeps.
"""

from repro.exec.batched import CompiledBatchedExecutor
from repro.exec.continuous import (
    ContinuousExecutor,
    PhaseSyncError,
    RequestRun,
)
from repro.exec.executor import CompiledExecutor

__all__ = [
    "CompiledBatchedExecutor",
    "CompiledExecutor",
    "ContinuousExecutor",
    "PhaseSyncError",
    "RequestRun",
]
