"""Batched compiled executor: one precompiled loop, many requests.

Mirrors :class:`repro.serve.batched.BatchedPipeline` (itself the batched
mirror of the sequential interpreted pipeline) with the same plan-time
hoists as :class:`repro.exec.executor.CompiledExecutor`: timestep and
adaLN tables, cached log-domain weight operands, per-phase FFN gather
sets and per-batch cross-attention constants. Per-request results and
statistics stay byte-identical to the interpreted batched path — which
``tests/serve`` in turn holds byte-identical to sequential runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.bitmask import Bitmask
from repro.core.config import ExionConfig
from repro.core.eager_prediction import (
    CompiledPrediction,
    _merge_heads_batched,
    _split_heads_batched,
    ep_decide,
)
from repro.core.logdomain import approximate, quantize_symmetric_batched
from repro.core.pipeline import GenerationResult
from repro.core.sparsity import RunStats
from repro.core.thresholds import ThresholdTable
from repro.models.activations import gelu as gelu_kernel
from repro.models.activations import softmax
from repro.models.attention import MultiHeadAttention
from repro.models.ffn import FeedForward
from repro.models.network import NetworkType
from repro.models.pipeline import DiffusionResult
from repro.models.scheduler import DDPMScheduler
from repro.models.transformer import TransformerBlock
from repro.models.zoo import BenchmarkModel
from repro.program.cache import compiled_plan_for
from repro.program.compiled import CompiledPlan
from repro.serve.request import GenerationRequest

from repro.exec.arena import ExecArena, arena_zeros
from repro.exec.executor import build_prediction_tables, build_step_tables


def _fake_quantize_batched(x: np.ndarray, bits: int) -> np.ndarray:
    """Per-request activation fake-quantization (INT datapath emulation)."""
    ints, scales = quantize_symmetric_batched(x, bits)
    expand = (slice(None),) + (None,) * (x.ndim - 1)
    return ints.astype(np.float64) * scales[expand]


def _prepare_activation_batched(
    x: np.ndarray, mode: str, bits: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-request quantize + LOD-approximate, as
    :func:`repro.core.logdomain.log_domain_matmul_batched` does for its
    activation operand."""
    ints, scales = quantize_symmetric_batched(x, bits)
    return approximate(ints, mode).astype(np.float64), scales


def _predict_prepared(
    a_approx: np.ndarray, a_scales: np.ndarray, weight
) -> np.ndarray:
    """Batched log-domain matmul against a cached weight operand."""
    return (a_approx @ weight.approx) * (a_scales[:, None, None] * weight.scale)


@dataclass
class _BatchedFFNPhaseState:
    """Compiled per-(phase, block) FFN artifacts for a whole micro-batch.

    The gather/scatter index sets live in the batch-wide flat index space
    of the ``(batch, tokens, hidden)`` mask, so one gather serves every
    request regardless of each request's own nnz.
    """

    hidden_dense: np.ndarray
    mask: np.ndarray
    gather_indices: np.ndarray
    partial_sums: np.ndarray
    nnz_per_request: np.ndarray
    value_indices: Optional[np.ndarray] = None
    gate_indices: Optional[np.ndarray] = None


@dataclass
class _BatchState:
    """Mutable per-run_batch state threaded through the step loop."""

    stats: list
    ffn_states: list
    is_dense: bool = True
    phase: int = 0
    context: Optional[np.ndarray] = None
    cross_kv: dict = field(default_factory=dict)
    cross_exact_kv: dict = field(default_factory=dict)


class CompiledBatchedExecutor:
    """Runs micro-batches of requests through a precompiled plan."""

    def __init__(
        self,
        model: BenchmarkModel,
        config: ExionConfig,
        threshold_table: Optional[ThresholdTable] = None,
        activation_bits: Optional[int] = None,
        collect_masks: bool = False,
        compiled_plan: Optional[CompiledPlan] = None,
    ) -> None:
        self.model = model
        self.config = config
        self.threshold_table = threshold_table
        self.activation_bits = activation_bits
        self.collect_masks = collect_masks
        if compiled_plan is None:
            compiled_plan = compiled_plan_for(model.spec, config)
        self.compiled_plan = compiled_plan
        self._timesteps, self._t_embeds, self._adaln_tables = (
            build_step_tables(model)
        )
        self._preds = build_prediction_tables(model.network, config)
        # Per-iteration scratch reused across steps (see repro.exec.arena).
        self._arena = ExecArena()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run_batch(
        self, requests: Sequence[GenerationRequest]
    ) -> list[GenerationResult]:
        """One sample per request, bit-identical to
        ``BatchedPipeline.run_batch()``."""
        requests = list(requests)
        if not requests:
            raise ValueError("need at least one request")
        batch = len(requests)
        network = self.model.network
        scheduler = self.model.scheduler
        pipeline = self.model.make_pipeline()
        if hasattr(scheduler, "reset"):
            scheduler.reset()

        rngs = [np.random.default_rng(r.seed) for r in requests]
        x = np.stack(
            [rng.standard_normal((network.tokens, network.dim)) for rng in rngs]
        )
        embeddings: dict = {}
        contexts = []
        for r in requests:
            key = (r.prompt, r.class_label)
            if key not in embeddings:
                embeddings[key] = pipeline.embed_prompt(r.prompt, r.class_label)
            contexts.append(embeddings[key])
        context = None
        if any(c is not None for c in contexts):
            context = np.stack(contexts)

        state = _BatchState(
            stats=[RunStats() for _ in requests],
            ffn_states=[None] * network.num_transformer_blocks,
        )
        if context is not None and self.activation_bits is not None:
            state.context = _fake_quantize_batched(
                context, self.activation_bits
            )
        else:
            state.context = context

        count_iterations = self.config.enable_ffn_reuse
        timesteps = self._timesteps
        for step in self.compiled_plan.steps:
            state.phase = step.phase
            state.is_dense = step.is_dense
            if count_iterations:
                for stats in state.stats:
                    if step.is_dense:
                        stats.dense_iterations += 1
                    else:
                        stats.sparse_iterations += 1
            eps = self._forward(x, step.index, context, state)
            i = step.index
            t = int(timesteps[i])
            prev_t = int(timesteps[i + 1]) if i + 1 < len(timesteps) else -1
            if isinstance(scheduler, DDPMScheduler):
                x = np.stack([
                    scheduler.step(eps[b], t, x[b], prev_t=prev_t, rng=rngs[b])
                    for b in range(batch)
                ])
            else:
                x = scheduler.step(eps, t, x, prev_t=prev_t, rng=None)

        return [
            GenerationResult(
                sample=x[b].copy(),
                stats=state.stats[b],
                diffusion=DiffusionResult(
                    sample=x[b].copy(), iterations=len(timesteps)
                ),
            )
            for b in range(batch)
        ]

    # ------------------------------------------------------------------
    # network forward (mirrors BatchedPipeline._forward)
    # ------------------------------------------------------------------
    def _forward(
        self,
        x: np.ndarray,
        step_index: int,
        raw_context: Optional[np.ndarray],
        state: _BatchState,
    ) -> np.ndarray:
        network = self.model.network
        if network.network_type is NetworkType.TRANSFORMER_ONLY:
            h = x
            for i, block in enumerate(network.blocks):
                h = self._block(block, h, raw_context, step_index, i, state)
            return network.out_proj(network.final_norm(h))

        half = max(1, network.depth // 2)
        t_embed = self._t_embeds[step_index]
        h = x
        for i in range(half):
            h = self._stage(i, h, t_embed, raw_context, step_index, state)
        skip = h
        h = self._downsample(h)
        for i in range(half, network.depth):
            h = self._stage(i, h, t_embed, raw_context, step_index, state)
        h = self._upsample(h, network.tokens) + skip
        return network.out_proj(network.final_norm(h))

    def _stage(
        self,
        index: int,
        h: np.ndarray,
        t_embed: np.ndarray,
        raw_context: Optional[np.ndarray],
        step_index: int,
        state: _BatchState,
    ) -> np.ndarray:
        network = self.model.network
        if network.resblocks:
            resblock = network.resblocks[index]
            h = np.stack([
                network._apply_resblock(resblock, h[b], t_embed)
                for b in range(h.shape[0])
            ])
        return self._block(
            network.blocks[index], h, raw_context, step_index, index, state
        )

    def _downsample(self, h: np.ndarray) -> np.ndarray:
        network = self.model.network
        tokens = h.shape[1]
        if tokens % 2 == 1:
            h = np.concatenate([h, h[:, -1:]], axis=1)
        pooled = 0.5 * (h[:, 0::2] + h[:, 1::2])
        return network.down_proj(pooled)

    def _upsample(self, h: np.ndarray, target_tokens: int) -> np.ndarray:
        network = self.model.network
        up = np.repeat(h, 2, axis=1)[:, :target_tokens]
        if up.shape[1] < target_tokens:
            pad = np.repeat(up[:, -1:], target_tokens - up.shape[1], axis=1)
            up = np.concatenate([up, pad], axis=1)
        return network.up_proj(up)

    def _block(
        self,
        block: TransformerBlock,
        x: np.ndarray,
        raw_context: Optional[np.ndarray],
        step_index: int,
        block_index: int,
        state: _BatchState,
    ) -> np.ndarray:
        h = block.norm1(x)
        table = self._adaln_tables[block_index]
        if table is not None:
            shift, scale, gate = table[step_index]
            h = h * (1.0 + scale) + shift
        else:
            gate = 1.0
        x = x + gate * self._attention(block.self_attn, h, None, block_index,
                                       state)
        if block.cross_attn is not None and raw_context is not None:
            assert block.norm_cross is not None
            x = x + self._attention(
                block.cross_attn, block.norm_cross(x), state.context,
                block_index, state,
            )
        x = x + self._ffn(block.ffn, block.norm2(x), block_index, state)
        return x

    # ------------------------------------------------------------------
    # attention
    # ------------------------------------------------------------------
    def _attention(
        self,
        layer: MultiHeadAttention,
        x: np.ndarray,
        context: Optional[np.ndarray],
        block_index: int,
        state: _BatchState,
    ) -> np.ndarray:
        if self.activation_bits is not None:
            x = _fake_quantize_batched(x, self.activation_bits)
        if not self._preds:
            if context is None:
                return _attention_exact_batched(layer, x, x)
            cached = state.cross_exact_kv.get(block_index)
            if cached is None:
                cached = (
                    _split_heads_batched(layer.wk(context), layer.num_heads),
                    _split_heads_batched(layer.wv(context), layer.num_heads),
                )
                state.cross_exact_kv[block_index] = cached
            return _attention_exact_batched(layer, x, context, kv=cached)
        which = "self" if context is None else "cross"
        pred = self._preds[block_index][which]
        kv = None
        if context is not None:
            kv = state.cross_kv.get(block_index)
            if kv is None:
                kv = _ep_cross_kv_batched(layer, context, pred, self.config)
                state.cross_kv[block_index] = kv
        return _ep_attention_step_batched(
            layer, x, context, pred, self.config, state.stats,
            collect_keepmasks=self.collect_masks, kv=kv, arena=self._arena,
        )

    # ------------------------------------------------------------------
    # FFN
    # ------------------------------------------------------------------
    def _ffn(
        self,
        layer: FeedForward,
        x: np.ndarray,
        block_index: int,
        state: _BatchState,
    ) -> np.ndarray:
        if self.activation_bits is not None:
            x = _fake_quantize_batched(x, self.activation_bits)
        if not self.config.enable_ffn_reuse:
            return layer.linear2(layer.nonlinear(layer.linear1(x)))
        tokens = x.shape[1]
        if state.is_dense or state.ffn_states[block_index] is None:
            out, phase_state = self._ffn_dense_compile(
                layer, x, block_index, state.phase
            )
            state.ffn_states[block_index] = phase_state
            full_l1 = layer.linear1.macs(tokens)
            full_l2 = layer.linear2.macs(tokens)
            for b, stats in enumerate(state.stats):
                stats.ffn_layer1.add(full_l1, full_l1)
                stats.ffn_layer2.add(full_l2, full_l2)
                if self.collect_masks:
                    stats.ffn_bitmasks.append(Bitmask(phase_state.mask[b]))
            return out
        phase_state = state.ffn_states[block_index]
        out = _ffn_sparse_step_batched(
            layer, x, phase_state, arena=self._arena
        )
        elements = phase_state.mask.shape[1] * phase_state.mask.shape[2]
        l1_cols_per_hidden = layer.linear1.out_features // layer.hidden_dim
        full_l1 = layer.linear1.macs(tokens)
        full_l2 = layer.linear2.macs(tokens)
        for b, stats in enumerate(state.stats):
            nnz_b = int(phase_state.nnz_per_request[b])
            stats.ffn_layer1.add(full_l1, nnz_b * layer.dim * l1_cols_per_hidden)
            stats.ffn_layer2.add(full_l2, nnz_b * layer.dim)
            stats.ffn_sparsities.append(1.0 - nnz_b / elements)
        return out

    def _resolve_thresholds(
        self, hidden: np.ndarray, block: int, dense_index: int
    ) -> np.ndarray:
        """Mirror of :meth:`BatchedFFNReuse._resolve_thresholds`."""
        batch = hidden.shape[0]
        return resolve_thresholds_batched(
            hidden, block, np.full(batch, dense_index),
            self.config, self.threshold_table,
        )

    def _ffn_dense_compile(
        self, layer: FeedForward, x: np.ndarray, block: int, phase: int
    ) -> tuple[np.ndarray, _BatchedFFNPhaseState]:
        """Batched :func:`repro.core.ffn_reuse.ffn_dense_compile`."""
        return ffn_dense_compile_batched(
            layer, x, block, np.full(x.shape[0], phase),
            self.config, self.threshold_table,
        )


def resolve_thresholds_batched(
    hidden: np.ndarray,
    block: int,
    dense_indices: np.ndarray,
    config: ExionConfig,
    threshold_table: Optional[ThresholdTable],
) -> np.ndarray:
    """Per-request FFN-Reuse thresholds, one dense-phase index per request.

    A drained micro-batch has every request in the same phase; a
    continuous batch (:mod:`repro.exec.continuous`) mixes requests whose
    dense compiles fall on different calibrated phases — so the table
    lookup is per request. Each request's resolution is identical to what
    :meth:`BatchedFFNReuse._resolve_thresholds` computes for it alone.
    """
    batch = hidden.shape[0]
    if config.ffn_threshold is not None:
        return np.full(batch, config.ffn_threshold)
    thresholds = np.empty(batch)
    pending = []
    for b in range(batch):
        stored = (
            threshold_table.get(int(dense_indices[b]), block)
            if threshold_table is not None
            else None
        )
        if stored is None:
            pending.append(b)
        else:
            thresholds[b] = stored
    if pending:
        mags = np.abs(hidden[pending].reshape(len(pending), -1)
                      .astype(np.float64))
        thresholds[pending] = np.quantile(
            mags, config.ffn_target_sparsity, axis=1
        )
    return thresholds


def ffn_dense_compile_batched(
    layer: FeedForward,
    x: np.ndarray,
    block: int,
    dense_indices: np.ndarray,
    config: ExionConfig,
    threshold_table: Optional[ThresholdTable],
) -> tuple[np.ndarray, _BatchedFFNPhaseState]:
    """Batched :func:`repro.core.ffn_reuse.ffn_dense_compile` with a
    per-request dense-phase index (see :func:`resolve_thresholds_batched`)."""
    batch = x.shape[0]
    hidden = layer.nonlinear(layer.linear1(x))
    out = layer.linear2(hidden)

    thresholds = resolve_thresholds_batched(
        hidden, block, dense_indices, config, threshold_table
    )
    mask = np.abs(hidden) > thresholds[:, None, None]
    reused = hidden * ~mask
    partial = reused @ layer.linear2.weight
    if layer.linear2.bias is not None:
        partial = partial + layer.linear2.bias

    state = _BatchedFFNPhaseState(
        hidden_dense=hidden,
        mask=mask,
        gather_indices=np.flatnonzero(mask.ravel()),
        partial_sums=partial,
        nnz_per_request=mask.reshape(batch, -1).sum(axis=1),
    )
    _attach_geglu_indices(layer, state)
    return out, state


def _attach_geglu_indices(
    layer: FeedForward, state: _BatchedFFNPhaseState
) -> None:
    """Derive the GEGLU value/gate gather sets from the flat mask gather.

    Shared by the dense compile and the continuous executor's index-set
    edits: whenever ``gather_indices`` is rebuilt (new mask, or same masks
    restacked under new batch membership), the paired pre-activation
    indices follow from pure index arithmetic.
    """
    if layer.activation != "geglu":
        state.value_indices = state.gate_indices = None
        return
    mask = state.mask
    gather = state.gather_indices
    per_request = mask.shape[1] * mask.shape[2]
    b_idx = gather // per_request
    rem = gather % per_request
    rows = rem // layer.hidden_dim
    cols = rem % layer.hidden_dim
    width = layer.linear1.out_features
    state.value_indices = (b_idx * mask.shape[1] + rows) * width + cols
    state.gate_indices = state.value_indices + layer.hidden_dim


def _ffn_sparse_step_batched(
    layer: FeedForward,
    x: np.ndarray,
    state: _BatchedFFNPhaseState,
    arena: Optional[ExecArena] = None,
) -> np.ndarray:
    """Batched :func:`repro.core.ffn_reuse.ffn_sparse_step`: one flat
    gather/scatter over the whole micro-batch.

    With an ``arena`` the scatter target, masked operand and update GEMM
    output are reused across iterations; each buffer is fully
    overwritten before use and none escapes this call, so the arithmetic
    (and the BLAS operand shapes) is identical to the allocating path.
    """
    pre = layer.linear1(x)
    flat = pre.ravel()
    if layer.activation == "geglu":
        recomputed = flat[state.value_indices] * gelu_kernel(
            flat[state.gate_indices]
        )
    else:
        recomputed = gelu_kernel(flat[state.gather_indices])
    if arena is None:
        hidden = state.hidden_dense.copy()
        hidden.ravel()[state.gather_indices] = recomputed
        updates = (hidden * state.mask) @ layer.linear2.weight
    else:
        hidden = arena.take("ffn_hidden", state.hidden_dense.shape)
        np.copyto(hidden, state.hidden_dense)
        hidden.ravel()[state.gather_indices] = recomputed
        masked = np.multiply(
            hidden, state.mask,
            out=arena.take("ffn_masked", hidden.shape),
        )
        updates = np.matmul(
            masked, layer.linear2.weight,
            out=arena.take(
                "ffn_updates",
                hidden.shape[:-1] + (layer.linear2.weight.shape[1],),
            ),
        )
    return state.partial_sums + updates


def _attention_exact_batched(
    layer: MultiHeadAttention,
    x: np.ndarray,
    kv_input: np.ndarray,
    kv: Optional[tuple] = None,
) -> np.ndarray:
    """Dense batched attention with optional cross-attention K/V cache."""
    q = _split_heads_batched(layer.wq(x), layer.num_heads)
    if kv is not None:
        k, v = kv
    else:
        k = _split_heads_batched(layer.wk(kv_input), layer.num_heads)
        v = _split_heads_batched(layer.wv(kv_input), layer.num_heads)
    scores = np.einsum("bhtd,bhsd->bhts", q, k) * layer.scale
    probs = softmax(scores, axis=-1)
    attended = np.einsum("bhts,bhsd->bhtd", probs, v)
    return layer.wo(_merge_heads_batched(attended))


def _ep_cross_kv_batched(
    layer: MultiHeadAttention,
    context: np.ndarray,
    pred: CompiledPrediction,
    config: ExionConfig,
) -> tuple:
    """Per-batch cross-attention constants for the batched EP step."""
    c_approx, c_scales = _prepare_activation_batched(
        context, config.lod_mode, config.prediction_bits
    )
    k_pred = _predict_prepared(c_approx, c_scales, pred.wk_operand)
    if layer.wk.bias is not None:
        k_pred = k_pred + layer.wk.bias
    return (
        _split_heads_batched(k_pred, layer.num_heads),
        _split_heads_batched(layer.wk(context), layer.num_heads),
        _split_heads_batched(layer.wv(context), layer.num_heads),
    )


def _ep_attention_step_batched(
    layer: MultiHeadAttention,
    x: np.ndarray,
    context: Optional[np.ndarray],
    pred: CompiledPrediction,
    config: ExionConfig,
    batch_stats: list,
    collect_keepmasks: bool = False,
    kv: Optional[tuple] = None,
    arena: Optional[ExecArena] = None,
) -> np.ndarray:
    """Batched EP attention step, bit-identical to
    :meth:`BatchedEagerPredictor.run` with cached weight operands.

    ``arena`` reuses the probability/attended scratch tensors across
    iterations (zero-filled each call, bit-equal to ``np.zeros``;
    neither escapes — the merged heads feed a fresh projection)."""
    kv_input = x if context is None else context
    batch, tq, _ = x.shape
    tk = kv_input.shape[1]
    heads = layer.num_heads
    mode, bits = config.lod_mode, config.prediction_bits

    a_approx, a_scales = _prepare_activation_batched(x, mode, bits)
    q_pred = _predict_prepared(a_approx, a_scales, pred.wq_operand)
    if layer.wq.bias is not None:
        q_pred = q_pred + layer.wq.bias
    qh = _split_heads_batched(q_pred, heads)

    if kv is not None:
        kh, k, v = kv
    else:
        # Self-attention: both predictions quantize the same x, so the
        # prepared operand is shared (the interpreted path re-derives the
        # identical quantization).
        k_pred = _predict_prepared(a_approx, a_scales, pred.wk_operand)
        if layer.wk.bias is not None:
            k_pred = k_pred + layer.wk.bias
        kh = _split_heads_batched(k_pred, heads)
        k = _split_heads_batched(layer.wk(kv_input), heads)
        v = _split_heads_batched(layer.wv(kv_input), heads)

    predicted = np.einsum("bhtd,bhsd->bhts", qh, kh) * layer.scale
    keep, one_hot_rows, one_hot_cols = ep_decide(
        predicted, config.top_k_ratio, config.q_threshold
    )

    q = _split_heads_batched(layer.wq(x), heads)
    exact = np.einsum("bhtd,bhsd->bhts", q, k) * layer.scale
    masked = np.where(keep, exact, -np.inf)

    has_keep = keep.any(axis=-1)
    oh_rows = one_hot_rows | ~has_keep
    normal_rows = ~oh_rows
    probs = arena_zeros(arena, "ep_probs", (batch, heads, tq, tk))
    if np.any(normal_rows):
        probs[normal_rows] = softmax(masked[normal_rows], axis=-1)

    bb, hh, rr = np.nonzero(oh_rows)
    cc = one_hot_cols[bb, hh, rr]
    probs[bb, hh, rr, cc] = 1.0
    attended = arena_zeros(
        arena, "ep_attended", (batch, heads, tq, layer.head_dim)
    )
    attended[bb, hh, rr] = v[bb, hh, cc]
    # Row-subset GEMMs preserved per (request, head): BLAS kernel choice
    # depends on the row count, and with it the last ULP.
    for b in range(batch):
        for h in range(heads):
            nr = np.flatnonzero(normal_rows[b, h])
            if nr.size:
                attended[b, h, nr] = probs[b, h, nr] @ v[b, h]

    out = layer.wo(_merge_heads_batched(attended))

    # Statistics: same arithmetic as BatchedEagerPredictor._record_stats.
    total_scores = heads * tq * tk
    head_dim = layer.head_dim
    dim_in = layer.wq.in_features
    kept = keep.reshape(batch, -1).sum(axis=1)
    q_rows_needed = (~one_hot_rows).any(axis=1).sum(axis=1)
    kv_needed = keep.any(axis=(1, 2))
    bb, hh, rr = np.nonzero(one_hot_rows)
    kv_needed[bb, one_hot_cols[bb, hh, rr]] = True
    kv_cols_needed = kv_needed.sum(axis=1)

    for b, stats in enumerate(batch_stats):
        skipped = total_scores - int(kept[b])
        stats.attention_scores.add(
            total_scores * head_dim, (total_scores - skipped) * head_dim
        )
        stats.q_projection.add(
            tq * dim_in * layer.dim,
            int(q_rows_needed[b]) * dim_in * layer.dim,
        )
        stats.kv_projection.add(
            2 * tk * layer.wk.in_features * layer.dim,
            2 * int(kv_cols_needed[b]) * layer.wk.in_features * layer.dim,
        )
        sparsity = skipped / total_scores if total_scores else 0.0
        stats.attention_sparsities.append(sparsity)
        stats.prediction_overhead_macs += (
            (tq + tk) * dim_in * layer.dim + total_scores * head_dim
        )
        if collect_keepmasks:
            stats.attention_keepmasks.append(keep[b].copy())
    return out
