"""Single-stream compiled executor (the generation hot path).

Mirrors the interpreted stack
(:class:`~repro.models.pipeline.DiffusionPipeline` →
:class:`~repro.models.network.DiffusionNetwork` →
:class:`~repro.models.transformer.TransformerBlock` with the EXION
executor hooks) with the plan-time work hoisted out of the loop. Any
arithmetic here must stay expression-for-expression identical to the
interpreted path — including GEMM operand shapes, which select BLAS
kernels and therefore the last ULP. The differential-parity suite in
``tests/exec/`` enforces this byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.config import ExionConfig
from repro.core.eager_prediction import (
    CompiledPrediction,
    ep_attention_step,
    ep_cross_kv,
)
from repro.core.ffn_reuse import (
    FFNPhaseState,
    ffn_dense_compile,
    ffn_sparse_step,
)
from repro.core.pipeline import GenerationResult, _fake_quantize
from repro.core.sparsity import RunStats
from repro.core.thresholds import ThresholdTable, quantile_threshold
from repro.models.activations import softmax
from repro.models.attention import MultiHeadAttention
from repro.models.ffn import FeedForward
from repro.models.network import NetworkType
from repro.models.pipeline import DiffusionResult
from repro.models.transformer import TransformerBlock
from repro.models.zoo import BenchmarkModel
from repro.program.cache import compiled_plan_for
from repro.program.compiled import CompiledPlan

from repro.exec.arena import ExecArena


def build_step_tables(model: BenchmarkModel) -> tuple:
    """Plan-time per-step constants of a model's generation loop.

    Timesteps are a pure function of the step count; the timestep
    embedding and each block's adaLN modulation are pure functions of the
    timestep — so all of them are tables, not per-step work. Returns
    ``(timesteps, t_embeds, adaln_tables)`` with ``adaln_tables[block]``
    either ``None`` or a per-step list of ``(shift, scale, gate)``.
    """
    network = model.network
    timesteps = model.scheduler.timesteps(model.spec.total_iterations)
    t_embeds = [network._embed_timestep(int(t)) for t in timesteps]
    adaln_tables: list = []
    for block in network.blocks:
        if block.adaln is None:
            adaln_tables.append(None)
        else:
            adaln_tables.append([block.adaln(te) for te in t_embeds])
    return timesteps, t_embeds, adaln_tables


def build_prediction_tables(network, config: ExionConfig) -> list:
    """Per-block cached log-domain weight operands (empty when EP is off)."""
    if not config.enable_eager_prediction:
        return []
    mode, bits = config.lod_mode, config.prediction_bits
    preds = []
    for block in network.blocks:
        entry = {
            "self": CompiledPrediction.for_layer(block.self_attn, mode, bits)
        }
        if block.cross_attn is not None:
            entry["cross"] = CompiledPrediction.for_layer(
                block.cross_attn, mode, bits
            )
        preds.append(entry)
    return preds


@dataclass
class _GenState:
    """Mutable per-generation state threaded through the step loop."""

    stats: RunStats
    ffn_states: list  # per-block FFNPhaseState | None
    phase: int = 0
    is_dense: bool = True
    context: Optional[np.ndarray] = None  # (possibly quantized) conditioning
    cross_kv: dict = field(default_factory=dict)  # block -> EP (kh, k, v)
    cross_exact_kv: dict = field(default_factory=dict)  # block -> (k, v)


class CompiledExecutor:
    """Runs generations through a precompiled plan.

    Construction performs all plan-time work — schedule compilation,
    timestep-embedding and adaLN tables, log-domain weight operands — so
    repeated :meth:`generate` calls pay only step-time cost. One executor
    instance is bound to one ``(model, config)`` pair, exactly like the
    interpreted managers it replaces.
    """

    def __init__(
        self,
        model: BenchmarkModel,
        config: ExionConfig,
        threshold_table: Optional[ThresholdTable] = None,
        activation_bits: Optional[int] = None,
        collect_masks: bool = False,
        compiled_plan: Optional[CompiledPlan] = None,
    ) -> None:
        self.model = model
        self.config = config
        self.threshold_table = threshold_table
        self.activation_bits = activation_bits
        self.collect_masks = collect_masks

        if compiled_plan is None:
            compiled_plan = compiled_plan_for(model.spec, config)
        self.compiled_plan = compiled_plan

        self._timesteps, self._t_embeds, self._adaln_tables = (
            build_step_tables(model)
        )
        self._preds = build_prediction_tables(model.network, config)
        # Per-iteration scratch reused across steps (see repro.exec.arena).
        self._arena = ExecArena()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def generate(
        self,
        seed: int = 0,
        prompt: Optional[str] = None,
        class_label: Optional[int] = None,
    ) -> GenerationResult:
        """One sample, bit-identical to ``ExionPipeline.generate()``."""
        model = self.model
        network = model.network
        scheduler = model.scheduler
        pipeline = model.make_pipeline()
        if hasattr(scheduler, "reset"):
            scheduler.reset()

        rng = np.random.default_rng(seed)
        x = rng.standard_normal((network.tokens, network.dim))
        context = pipeline.embed_prompt(prompt, class_label)

        state = _GenState(
            stats=RunStats(),
            ffn_states=[None] * network.num_transformer_blocks,
        )
        if context is not None and self.activation_bits is not None:
            # The interpreted quantizing wrapper re-quantizes the constant
            # context every layer call; one conversion serves them all.
            state.context = _fake_quantize(context, self.activation_bits)
        else:
            state.context = context

        count_iterations = self.config.enable_ffn_reuse
        timesteps = self._timesteps
        for step in self.compiled_plan.steps:
            state.phase = step.phase
            state.is_dense = step.is_dense
            if count_iterations:
                if step.is_dense:
                    state.stats.dense_iterations += 1
                else:
                    state.stats.sparse_iterations += 1
            eps = self._forward(x, step.index, context, state)
            i = step.index
            prev_t = int(timesteps[i + 1]) if i + 1 < len(timesteps) else -1
            x = scheduler.step(eps, int(timesteps[i]), x, prev_t=prev_t,
                               rng=rng)

        return GenerationResult(
            sample=x,
            stats=state.stats,
            diffusion=DiffusionResult(sample=x, iterations=len(timesteps)),
        )

    # ------------------------------------------------------------------
    # network forward (mirrors DiffusionNetwork.__call__)
    #
    # Any topology change in models/network.py or models/transformer.py
    # must be reflected here; tests/exec/ fails on any divergence.
    # ------------------------------------------------------------------
    def _forward(
        self,
        x: np.ndarray,
        step_index: int,
        raw_context: Optional[np.ndarray],
        state: _GenState,
    ) -> np.ndarray:
        network = self.model.network
        if network.network_type is NetworkType.TRANSFORMER_ONLY:
            h = x
            for i, block in enumerate(network.blocks):
                h = self._block(block, h, raw_context, step_index, i, state)
            return network.out_proj(network.final_norm(h))

        half = max(1, network.depth // 2)
        t_embed = self._t_embeds[step_index]
        h = x
        for i in range(half):
            h = self._stage(i, h, t_embed, raw_context, step_index, state)
        skip = h
        h = network._downsample(h)
        for i in range(half, network.depth):
            h = self._stage(i, h, t_embed, raw_context, step_index, state)
        h = network._upsample(h, network.tokens) + skip
        return network.out_proj(network.final_norm(h))

    def _stage(
        self,
        index: int,
        h: np.ndarray,
        t_embed: np.ndarray,
        raw_context: Optional[np.ndarray],
        step_index: int,
        state: _GenState,
    ) -> np.ndarray:
        network = self.model.network
        if network.resblocks:
            h = network._apply_resblock(network.resblocks[index], h, t_embed)
        return self._block(
            network.blocks[index], h, raw_context, step_index, index, state
        )

    def _block(
        self,
        block: TransformerBlock,
        x: np.ndarray,
        raw_context: Optional[np.ndarray],
        step_index: int,
        block_index: int,
        state: _GenState,
    ) -> np.ndarray:
        h = block.norm1(x)
        table = self._adaln_tables[block_index]
        if table is not None:
            shift, scale, gate = table[step_index]
            h = h * (1.0 + scale) + shift
        else:
            gate = 1.0
        x = x + gate * self._self_attention(block, h, block_index, state)

        if block.cross_attn is not None and raw_context is not None:
            assert block.norm_cross is not None
            x = x + self._cross_attention(
                block, block.norm_cross(x), block_index, state
            )

        x = x + self._ffn(block.ffn, block.norm2(x), block_index, state)
        return x

    # ------------------------------------------------------------------
    # attention
    # ------------------------------------------------------------------
    def _self_attention(
        self,
        block: TransformerBlock,
        x: np.ndarray,
        block_index: int,
        state: _GenState,
    ) -> np.ndarray:
        layer = block.self_attn
        if self.activation_bits is not None:
            x = _fake_quantize(x, self.activation_bits)
        if self._preds:
            return ep_attention_step(
                layer, x, None, self._preds[block_index]["self"],
                self.config, state.stats,
                collect_keepmasks=self.collect_masks,
            )
        return _attention_exact(layer, x, x)

    def _cross_attention(
        self,
        block: TransformerBlock,
        x: np.ndarray,
        block_index: int,
        state: _GenState,
    ) -> np.ndarray:
        layer = block.cross_attn
        assert layer is not None
        context = state.context
        assert context is not None
        if self.activation_bits is not None:
            x = _fake_quantize(x, self.activation_bits)
        if self._preds:
            kv = state.cross_kv.get(block_index)
            if kv is None:
                kv = ep_cross_kv(
                    layer, context, self._preds[block_index]["cross"],
                    self.config,
                )
                state.cross_kv[block_index] = kv
            return ep_attention_step(
                layer, x, context, self._preds[block_index]["cross"],
                self.config, state.stats,
                collect_keepmasks=self.collect_masks, kv=kv,
            )
        cached = state.cross_exact_kv.get(block_index)
        if cached is None:
            cached = (
                layer.split_heads(layer.wk(context)),
                layer.split_heads(layer.wv(context)),
            )
            state.cross_exact_kv[block_index] = cached
        return _attention_exact(layer, x, context, kv=cached)

    # ------------------------------------------------------------------
    # FFN
    # ------------------------------------------------------------------
    def _ffn(
        self,
        layer: FeedForward,
        x: np.ndarray,
        block_index: int,
        state: _GenState,
    ) -> np.ndarray:
        if self.activation_bits is not None:
            x = _fake_quantize(x, self.activation_bits)
        if not self.config.enable_ffn_reuse:
            return layer.linear2(layer.nonlinear(layer.linear1(x)))
        tokens = x.shape[0]
        stats = state.stats
        if state.is_dense or state.ffn_states[block_index] is None:
            out, phase_state = ffn_dense_compile(
                layer, x, self._threshold_resolver(block_index, state.phase)
            )
            state.ffn_states[block_index] = phase_state
            full_l1 = layer.linear1.macs(tokens)
            full_l2 = layer.linear2.macs(tokens)
            stats.ffn_layer1.add(full_l1, full_l1)
            stats.ffn_layer2.add(full_l2, full_l2)
            if self.collect_masks:
                stats.ffn_bitmasks.append(phase_state.bitmask)
            return out
        phase_state: FFNPhaseState = state.ffn_states[block_index]
        out = ffn_sparse_step(layer, x, phase_state, arena=self._arena)
        nnz = phase_state.nnz
        l1_cols_per_hidden = layer.linear1.out_features // layer.hidden_dim
        full_l1 = layer.linear1.macs(tokens)
        full_l2 = layer.linear2.macs(tokens)
        stats.ffn_layer1.add(full_l1, nnz * layer.dim * l1_cols_per_hidden)
        stats.ffn_layer2.add(full_l2, nnz * layer.dim)
        stats.ffn_sparsities.append(phase_state.sparsity)
        return out

    def _threshold_resolver(self, block: int, dense_index: int):
        """Mirror of :meth:`FFNReuse._resolve_threshold` for one phase."""
        config = self.config
        table = self.threshold_table

        def resolve(hidden: np.ndarray) -> float:
            if config.ffn_threshold is not None:
                return config.ffn_threshold
            if table is not None:
                stored = table.get(dense_index, block)
                if stored is not None:
                    return stored
            return quantile_threshold(hidden, config.ffn_target_sparsity)

        return resolve


def _attention_exact(
    layer: MultiHeadAttention,
    x: np.ndarray,
    kv_input: np.ndarray,
    kv: Optional[tuple] = None,
) -> np.ndarray:
    """Dense attention, op-for-op :meth:`MultiHeadAttention.forward_exact`
    without the trace; ``kv`` carries per-generation cross-attention
    constants."""
    q = layer.split_heads(layer.wq(x))
    if kv is not None:
        k, v = kv
    else:
        k = layer.split_heads(layer.wk(kv_input))
        v = layer.split_heads(layer.wv(kv_input))
    scores = np.einsum("htd,hsd->hts", q, k) * layer.scale
    probs = softmax(scores, axis=-1)
    attended = np.einsum("hts,hsd->htd", probs, v)
    return layer.wo(layer.merge_heads(attended))
