"""Iteration-level continuous batching over the compiled plan.

:class:`~repro.exec.batched.CompiledBatchedExecutor` runs a *drained*
micro-batch: every request enters at step 0 and leaves at the last step
together. :class:`ContinuousExecutor` relaxes exactly that: it advances a
set of :class:`RequestRun` cursors one plan step per :meth:`run_tick`,
and the set may change **between** ticks — requests join, finish, or are
evicted while the others keep denoising.

The FFN-Reuse schedule constrains *when* membership may change:

- a request may only **join** when its first step is a dense compile and
  every active member is at a dense step too (otherwise the joiner would
  need a sparse gather set no dense iteration ever compiled for it);
- members may **leave at any tick** — completion and eviction drop rows,
  they never require new per-request state.

Both facts fall out of keeping all per-phase FFN state *per run*
(:class:`_RunFFNState`) and treating the batch-wide arrays the kernels
consume as a disposable cache: whenever membership changes, the flat
gather/scatter sets are rebuilt by **index-set edits** — restacking the
surviving per-run masks and recomputing flat indices — with zero model
re-tracing (no new thresholds, no new dense compile, no re-quantization).

Every kernel is the exact batched kernel from
:mod:`repro.exec.batched`, whose per-request rows are proven independent
of batch composition by the serve parity suite — so a request served
continuously produces **byte-identical** samples and
:class:`~repro.core.sparsity.RunStats` to its own solo sequential run,
regardless of who shared its ticks. ``tests/serve/test_continuous_*``
enforces this differentially against the interpreted oracle.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.config import ExionConfig
from repro.core.pipeline import GenerationResult, _fake_quantize
from repro.core.sparsity import RunStats
from repro.core.thresholds import ThresholdTable
from repro.models.ffn import FeedForward
from repro.models.network import NetworkType
from repro.models.pipeline import DiffusionResult
from repro.models.scheduler import DDPMScheduler
from repro.models.zoo import BenchmarkModel
from repro.program.cache import compiled_plan_for
from repro.program.compiled import CompiledPlan
from repro.serve.request import GenerationRequest

from repro.exec.arena import ExecArena
from repro.exec.batched import (
    _BatchedFFNPhaseState,
    _attach_geglu_indices,
    _attention_exact_batched,
    _ep_attention_step_batched,
    _ep_cross_kv_batched,
    _fake_quantize_batched,
    _ffn_sparse_step_batched,
    ffn_dense_compile_batched,
)
from repro.core.eager_prediction import _split_heads_batched
from repro.exec.executor import build_prediction_tables, build_step_tables


class PhaseSyncError(RuntimeError):
    """Batch membership violates the dense-phase lockstep invariant."""


@dataclass
class _RunFFNState:
    """One request's slice of a compiled FFN phase (per block).

    ``hidden_dense``/``mask``/``partial_sums`` are the request's own rows
    of the batch-wide dense compile; restacking them under any later
    batch membership reproduces the exact arrays the drained batched
    kernel would have built, which is what keeps membership changes pure
    index-set edits.
    """

    hidden_dense: np.ndarray  # (tokens, hidden)
    mask: np.ndarray  # (tokens, hidden) bool
    partial_sums: np.ndarray  # (tokens, dim)
    nnz: int


class RequestRun:
    """One in-flight request: latent, cursor, RNG and per-phase state."""

    def __init__(
        self,
        request: GenerationRequest,
        x: np.ndarray,
        rng: np.random.Generator,
        scheduler,
        context: Optional[np.ndarray],
        num_blocks: int,
    ) -> None:
        self.request = request
        self.x = x
        self.rng = rng
        self.scheduler = scheduler
        self.context = context
        self.cursor = 0
        self.stats = RunStats()
        self.ffn: list = [None] * num_blocks

    @property
    def request_id(self) -> int:
        return self.request.request_id


class ContinuousExecutor:
    """Advances a mutable set of :class:`RequestRun` in plan lockstep."""

    def __init__(
        self,
        model: BenchmarkModel,
        config: ExionConfig,
        threshold_table: Optional[ThresholdTable] = None,
        activation_bits: Optional[int] = None,
        compiled_plan: Optional[CompiledPlan] = None,
    ) -> None:
        self.model = model
        self.config = config
        self.threshold_table = threshold_table
        self.activation_bits = activation_bits
        if compiled_plan is None:
            compiled_plan = compiled_plan_for(model.spec, config)
        self.compiled_plan = compiled_plan
        self._timesteps, self._t_embeds, self._adaln_tables = (
            build_step_tables(model)
        )
        self._preds = build_prediction_tables(model.network, config)
        self._pipeline = model.make_pipeline()
        #: Optional :class:`repro.obs.observer.Observer`; the owning
        #: server stamps ``observer.now`` before each tick (the executor
        #: has no clock of its own).
        self.observer = None
        # Per-tick scratch reused across iterations and membership edits
        # (see repro.exec.arena); the restack buffers below are keyed per
        # block because every block's batch state is alive at once.
        self._arena = ExecArena()
        # Batch-wide caches, valid only for one membership signature.
        self._membership: tuple = ()
        self._ffn_batch: dict = {}  # block -> _BatchedFFNPhaseState
        self._cross_kv: dict = {}  # block -> EP (kh, k, v)
        self._cross_exact_kv: dict = {}  # block -> (k, v)

    # ------------------------------------------------------------------
    # run lifecycle
    # ------------------------------------------------------------------
    @property
    def iterations(self) -> int:
        return self.compiled_plan.iterations

    def start_run(self, request: GenerationRequest) -> RequestRun:
        """Materialize a request's initial state (cursor 0, own RNG)."""
        network = self.model.network
        rng = np.random.default_rng(request.seed)
        x = rng.standard_normal((network.tokens, network.dim))
        context = self._pipeline.embed_prompt(
            request.prompt, request.class_label
        )
        if context is not None and self.activation_bits is not None:
            context = _fake_quantize(context, self.activation_bits)
        scheduler = self.model.scheduler
        if hasattr(scheduler, "reset"):
            # Multistep solvers carry per-trajectory state; each run gets
            # its own fresh copy. Stateless schedulers are shared.
            scheduler = copy.deepcopy(scheduler)
            scheduler.reset()
        return RequestRun(
            request=request,
            x=x,
            rng=rng,
            scheduler=scheduler,
            context=context,
            num_blocks=network.num_transformer_blocks,
        )

    def finish_run(self, run: RequestRun) -> GenerationResult:
        """Package a completed run exactly like the batched executor."""
        if run.cursor != self.iterations:
            raise PhaseSyncError(
                f"run {run.request_id} finished at cursor {run.cursor}, "
                f"expected {self.iterations}"
            )
        return GenerationResult(
            sample=run.x.copy(),
            stats=run.stats,
            diffusion=DiffusionResult(
                sample=run.x.copy(), iterations=len(self._timesteps)
            ),
        )

    # ------------------------------------------------------------------
    # one lockstep tick
    # ------------------------------------------------------------------
    def run_tick(self, runs: Sequence[RequestRun]) -> list:
        """Advance every run one plan step; returns the runs that finished.

        All runs must sit at steps of the same density (the scheduler's
        job — joins only at dense boundaries keep this invariant). The
        caller removes returned (finished) runs from its active set; the
        next tick's membership change is absorbed here as an index-set
        edit.
        """
        runs = list(runs)
        if not runs:
            raise ValueError("need at least one active run")
        plan = self.compiled_plan
        densities = set()
        for run in runs:
            if not 0 <= run.cursor < plan.iterations:
                raise PhaseSyncError(
                    f"run {run.request_id} cursor {run.cursor} outside plan"
                )
            densities.add(plan.steps[run.cursor].is_dense)
        if len(densities) != 1:
            raise PhaseSyncError(
                "mixed dense/sparse cursors in one tick: "
                + str([(r.request_id, r.cursor) for r in runs])
            )
        self._tick_dense = densities.pop()

        membership = tuple(id(r) for r in runs)
        if membership != self._membership:
            # Index-set edit: the batch-wide caches die with the old
            # membership; FFN stacks are rebuilt lazily from per-run
            # state, K/V stacks from per-run contexts. No re-trace.
            if self.observer is not None:
                self.observer.on_index_set_edit(
                    len(self._membership), len(membership),
                    rebuilt=bool(self._membership),
                )
            self._membership = membership
            self._ffn_batch = {}
            self._cross_kv = {}
            self._cross_exact_kv = {}

        # Per-tick latent/context stacks land in reusable arena buffers:
        # the stack sources are always fresh per-run arrays (scheduler
        # outputs, embeddings), never views of a previous tick's buffer.
        x = np.stack(
            [r.x for r in runs],
            out=self._arena.take(
                "tick_x", (len(runs),) + runs[0].x.shape
            ),
        )
        context = None
        if any(r.context is not None for r in runs):
            if any(r.context is None for r in runs):
                raise PhaseSyncError(
                    "conditioned and unconditioned runs in one batch"
                )
            context = np.stack(
                [r.context for r in runs],
                out=self._arena.take(
                    "tick_context", (len(runs),) + runs[0].context.shape
                ),
            )

        count_iterations = self.config.enable_ffn_reuse
        eps = self._forward(x, runs, context)

        finished = []
        timesteps = self._timesteps
        for b, run in enumerate(runs):
            i = run.cursor
            if count_iterations:
                if self._tick_dense:
                    run.stats.dense_iterations += 1
                else:
                    run.stats.sparse_iterations += 1
            t = int(timesteps[i])
            prev_t = int(timesteps[i + 1]) if i + 1 < len(timesteps) else -1
            if isinstance(run.scheduler, DDPMScheduler):
                run.x = run.scheduler.step(
                    eps[b], t, run.x, prev_t=prev_t, rng=run.rng
                )
            else:
                run.x = run.scheduler.step(
                    eps[b], t, run.x, prev_t=prev_t, rng=None
                )
            run.cursor += 1
            if run.cursor == plan.iterations:
                finished.append(run)
        return finished

    # ------------------------------------------------------------------
    # network forward (mirrors CompiledBatchedExecutor, per-run cursors)
    # ------------------------------------------------------------------
    def _forward(
        self,
        x: np.ndarray,
        runs: list,
        raw_context: Optional[np.ndarray],
    ) -> np.ndarray:
        network = self.model.network
        if network.network_type is NetworkType.TRANSFORMER_ONLY:
            h = x
            for i, block in enumerate(network.blocks):
                h = self._block(block, h, raw_context, runs, i)
            return network.out_proj(network.final_norm(h))

        half = max(1, network.depth // 2)
        h = x
        for i in range(half):
            h = self._stage(i, h, raw_context, runs)
        skip = h
        h = self._downsample(h)
        for i in range(half, network.depth):
            h = self._stage(i, h, raw_context, runs)
        h = self._upsample(h, network.tokens) + skip
        return network.out_proj(network.final_norm(h))

    def _stage(
        self,
        index: int,
        h: np.ndarray,
        raw_context: Optional[np.ndarray],
        runs: list,
    ) -> np.ndarray:
        network = self.model.network
        if network.resblocks:
            resblock = network.resblocks[index]
            h = np.stack([
                network._apply_resblock(
                    resblock, h[b], self._t_embeds[run.cursor]
                )
                for b, run in enumerate(runs)
            ])
        return self._block(network.blocks[index], h, raw_context, runs, index)

    def _downsample(self, h: np.ndarray) -> np.ndarray:
        network = self.model.network
        tokens = h.shape[1]
        if tokens % 2 == 1:
            h = np.concatenate([h, h[:, -1:]], axis=1)
        pooled = 0.5 * (h[:, 0::2] + h[:, 1::2])
        return network.down_proj(pooled)

    def _upsample(self, h: np.ndarray, target_tokens: int) -> np.ndarray:
        network = self.model.network
        up = np.repeat(h, 2, axis=1)[:, :target_tokens]
        if up.shape[1] < target_tokens:
            pad = np.repeat(up[:, -1:], target_tokens - up.shape[1], axis=1)
            up = np.concatenate([up, pad], axis=1)
        return network.up_proj(up)

    def _block(
        self,
        block,
        x: np.ndarray,
        raw_context: Optional[np.ndarray],
        runs: list,
        block_index: int,
    ) -> np.ndarray:
        h = block.norm1(x)
        table = self._adaln_tables[block_index]
        if table is not None:
            # Per-run modulation rows, broadcast over tokens: identical
            # elementwise arithmetic to the per-step scalar broadcast of
            # the drained executor.
            entries = [table[run.cursor] for run in runs]
            shift = np.stack([e[0] for e in entries])[:, None, :]
            scale = np.stack([e[1] for e in entries])[:, None, :]
            gate = np.stack([e[2] for e in entries])[:, None, :]
            h = h * (1.0 + scale) + shift
        else:
            gate = 1.0
        x = x + gate * self._attention(
            block.self_attn, h, None, block_index, runs
        )
        if block.cross_attn is not None and raw_context is not None:
            assert block.norm_cross is not None
            x = x + self._attention(
                block.cross_attn, block.norm_cross(x), raw_context,
                block_index, runs,
            )
        x = x + self._ffn(block.ffn, block.norm2(x), block_index, runs)
        return x

    # ------------------------------------------------------------------
    # attention
    # ------------------------------------------------------------------
    def _attention(
        self,
        layer,
        x: np.ndarray,
        context: Optional[np.ndarray],
        block_index: int,
        runs: list,
    ) -> np.ndarray:
        if self.activation_bits is not None:
            x = _fake_quantize_batched(x, self.activation_bits)
        if not self._preds:
            if context is None:
                return _attention_exact_batched(layer, x, x)
            cached = self._cross_exact_kv.get(block_index)
            if cached is None:
                cached = (
                    _split_heads_batched(layer.wk(context), layer.num_heads),
                    _split_heads_batched(layer.wv(context), layer.num_heads),
                )
                self._cross_exact_kv[block_index] = cached
            return _attention_exact_batched(layer, x, context, kv=cached)
        which = "self" if context is None else "cross"
        pred = self._preds[block_index][which]
        kv = None
        if context is not None:
            kv = self._cross_kv.get(block_index)
            if kv is None:
                kv = _ep_cross_kv_batched(layer, context, pred, self.config)
                self._cross_kv[block_index] = kv
        return _ep_attention_step_batched(
            layer, x, context, pred, self.config,
            [run.stats for run in runs], kv=kv, arena=self._arena,
        )

    # ------------------------------------------------------------------
    # FFN
    # ------------------------------------------------------------------
    def _ffn(
        self,
        layer: FeedForward,
        x: np.ndarray,
        block_index: int,
        runs: list,
    ) -> np.ndarray:
        if self.activation_bits is not None:
            x = _fake_quantize_batched(x, self.activation_bits)
        if not self.config.enable_ffn_reuse:
            return layer.linear2(layer.nonlinear(layer.linear1(x)))
        tokens = x.shape[1]
        full_l1 = layer.linear1.macs(tokens)
        full_l2 = layer.linear2.macs(tokens)
        if self._tick_dense:
            dense_indices = np.array([
                self.compiled_plan.steps[run.cursor].phase for run in runs
            ])
            out, batch_state = ffn_dense_compile_batched(
                layer, x, block_index, dense_indices,
                self.config, self.threshold_table,
            )
            self._ffn_batch[block_index] = batch_state
            for b, run in enumerate(runs):
                run.ffn[block_index] = _RunFFNState(
                    hidden_dense=batch_state.hidden_dense[b],
                    mask=batch_state.mask[b],
                    partial_sums=batch_state.partial_sums[b],
                    nnz=int(batch_state.nnz_per_request[b]),
                )
                run.stats.ffn_layer1.add(full_l1, full_l1)
                run.stats.ffn_layer2.add(full_l2, full_l2)
            return out

        batch_state = self._ffn_batch.get(block_index)
        if batch_state is None:
            batch_state = self._rebuild_ffn_batch(layer, block_index, runs)
        out = _ffn_sparse_step_batched(
            layer, x, batch_state, arena=self._arena
        )
        elements = batch_state.mask.shape[1] * batch_state.mask.shape[2]
        l1_cols_per_hidden = layer.linear1.out_features // layer.hidden_dim
        for run in runs:
            nnz = run.ffn[block_index].nnz
            run.stats.ffn_layer1.add(
                full_l1, nnz * layer.dim * l1_cols_per_hidden
            )
            run.stats.ffn_layer2.add(full_l2, nnz * layer.dim)
            run.stats.ffn_sparsities.append(1.0 - nnz / elements)
        return out

    def _rebuild_ffn_batch(
        self, layer: FeedForward, block_index: int, runs: list
    ) -> _BatchedFFNPhaseState:
        """The index-set edit: restack surviving per-run phase state.

        No thresholds are resolved and no dense compile runs — the new
        batch-wide flat gather/scatter sets are pure index arithmetic
        over the per-run masks each request compiled at its own dense
        step.
        """
        missing = [
            run.request_id for run in runs if run.ffn[block_index] is None
        ]
        if missing:
            raise PhaseSyncError(
                f"runs {missing} reached a sparse step without compiled "
                f"FFN state for block {block_index} (join off a dense "
                "boundary?)"
            )
        states = [run.ffn[block_index] for run in runs]
        # Restack targets are arena buffers keyed per block (every
        # block's batch state is alive simultaneously); safe to reuse
        # across edits because per-run slices always view the *dense
        # compile's* arrays — never a previous restack output — so stack
        # sources cannot alias their destination.
        batch = len(states)
        mask = np.stack(
            [s.mask for s in states],
            out=self._arena.take(
                f"rebuild_mask[{block_index}]",
                (batch,) + states[0].mask.shape, dtype=bool,
            ),
        )
        batch_state = _BatchedFFNPhaseState(
            hidden_dense=np.stack(
                [s.hidden_dense for s in states],
                out=self._arena.take(
                    f"rebuild_hidden[{block_index}]",
                    (batch,) + states[0].hidden_dense.shape,
                ),
            ),
            mask=mask,
            gather_indices=np.flatnonzero(mask.ravel()),
            partial_sums=np.stack(
                [s.partial_sums for s in states],
                out=self._arena.take(
                    f"rebuild_partial[{block_index}]",
                    (batch,) + states[0].partial_sums.shape,
                ),
            ),
            nnz_per_request=np.array([s.nnz for s in states]),
        )
        _attach_geglu_indices(layer, batch_state)
        self._ffn_batch[block_index] = batch_state
        return batch_state


__all__ = [
    "ContinuousExecutor",
    "PhaseSyncError",
    "RequestRun",
]
