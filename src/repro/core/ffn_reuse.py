"""FFN-Reuse: inter-iteration output sparsity (paper Section III-A, Fig. 6).

The diffusion process removes noise progressively, so the FFN non-linearity
output at one iteration closely matches the next (Fig. 7). FFN-Reuse runs
one exact *dense iteration*, thresholds the non-linearity output into a
bitmask, and for the following ``N`` *sparse iterations*:

- 1st FFN layer: recomputes only above-threshold (bit ``1``) elements and
  reuses the dense iteration's values for the rest — the skipped elements
  *are* the inter-iteration output sparsity;
- 2nd FFN layer: keeps a partial sum of the reused elements' contribution
  (computed once at the dense iteration) and accumulates only the
  recomputed elements' products on top.

Two managers share the phase machinery: :class:`FFNReuse` runs one
generation (the accuracy-evaluation path), while :class:`BatchedFFNReuse`
carries per-request dense-iteration state along a leading batch axis for
the ``repro.serve`` multi-request serving layer. Per request, the batched
manager computes exactly what the sequential one would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.bitmask import Bitmask
from repro.core.config import ExionConfig
from repro.core.sparsity import RunStats
from repro.core.thresholds import ThresholdTable, quantile_threshold
from repro.models.activations import gelu as gelu_kernel
from repro.models.ffn import FeedForward, FFNTrace


@dataclass
class _BlockState:
    """Dense-iteration artifacts carried into the sparse iterations."""

    hidden_dense: np.ndarray  # non-linearity output at the dense iteration
    bitmask: Bitmask  # 1 = recompute, 0 = reuse
    partial_sums: np.ndarray  # reused elements' 2nd-layer contribution + bias
    threshold: float


class _PhaseControl:
    """Shared dense/sparse phase machinery of the FFN-Reuse managers."""

    config: ExionConfig
    _iteration: int

    @property
    def dense_period(self) -> int:
        return self.config.sparse_iters_n + 1

    @property
    def is_dense_iteration(self) -> bool:
        """Dense iterations recur every ``N + 1`` steps, starting at step 0."""
        return self._iteration % self.dense_period == 0

    @property
    def dense_index(self) -> int:
        return self._iteration // self.dense_period


class FFNReuse(_PhaseControl):
    """Stateful FFN-Reuse manager for one generation run.

    One instance spans all transformer blocks of the network; call
    :meth:`begin_iteration` at each denoising step and use
    :meth:`executor_for_block` as the FFN executor.
    """

    def __init__(
        self,
        config: ExionConfig,
        num_blocks: int,
        stats: Optional[RunStats] = None,
        threshold_table: Optional[ThresholdTable] = None,
        collect_bitmasks: bool = False,
    ) -> None:
        self.config = config
        self.num_blocks = num_blocks
        self.stats = stats if stats is not None else RunStats()
        self.threshold_table = threshold_table
        self.collect_bitmasks = collect_bitmasks
        self._states: list[Optional[_BlockState]] = [None] * num_blocks
        self._iteration = -1

    # ------------------------------------------------------------------
    # phase control
    # ------------------------------------------------------------------
    def begin_iteration(self, iteration: int) -> None:
        """Mark the start of denoising iteration ``iteration``."""
        if iteration < 0:
            raise ValueError("iteration must be >= 0")
        self._iteration = iteration
        if self.is_dense_iteration:
            self.stats.dense_iterations += 1
        else:
            self.stats.sparse_iterations += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def executor_for_block(self, block: int):
        """FFN executor bound to transformer block ``block``."""
        if not 0 <= block < self.num_blocks:
            raise IndexError(f"block {block} out of range [0, {self.num_blocks})")

        def run(layer: FeedForward, x: np.ndarray):
            if self._iteration < 0:
                raise RuntimeError("begin_iteration() was never called")
            if self.is_dense_iteration or self._states[block] is None:
                return self._run_dense(layer, x, block)
            return self._run_sparse(layer, x, block)

        return run

    def _resolve_threshold(self, hidden: np.ndarray, block: int) -> float:
        if self.config.ffn_threshold is not None:
            return self.config.ffn_threshold
        if self.threshold_table is not None:
            stored = self.threshold_table.get(self.dense_index, block)
            if stored is not None:
                return stored
        return quantile_threshold(hidden, self.config.ffn_target_sparsity)

    def _run_dense(self, layer: FeedForward, x: np.ndarray, block: int):
        tokens = x.shape[0]
        hidden = layer.nonlinear(layer.linear1(x))
        out = layer.linear2(hidden)

        threshold = self._resolve_threshold(hidden, block)
        bitmask = Bitmask.from_threshold(hidden, threshold)
        reused = hidden * ~bitmask.mask
        partial = reused @ layer.linear2.weight
        if layer.linear2.bias is not None:
            partial = partial + layer.linear2.bias
        self._states[block] = _BlockState(
            hidden_dense=hidden,
            bitmask=bitmask,
            partial_sums=partial,
            threshold=threshold,
        )

        full_l1 = layer.linear1.macs(tokens)
        full_l2 = layer.linear2.macs(tokens)
        self.stats.ffn_layer1.add(full_l1, full_l1)
        self.stats.ffn_layer2.add(full_l2, full_l2)
        if self.collect_bitmasks:
            self.stats.ffn_bitmasks.append(bitmask)

        trace = FFNTrace(hidden=hidden, total_hidden_elements=int(hidden.size))
        return out, trace

    def _run_sparse(self, layer: FeedForward, x: np.ndarray, block: int):
        state = self._states[block]
        assert state is not None
        tokens = x.shape[0]
        mask = state.bitmask.mask

        # 1st FFN layer: only bit-1 elements are recomputed; the numpy
        # computation is dense but the semantics (and op accounting) follow
        # the element-skipping hardware exactly.
        hidden_recomputed = layer.nonlinear(layer.linear1(x))
        hidden = np.where(mask, hidden_recomputed, state.hidden_dense)

        # 2nd FFN layer: accumulate recomputed elements onto the dense
        # iteration's partial sums (bias already included there).
        updates = (hidden * mask) @ layer.linear2.weight
        out = state.partial_sums + updates

        nnz = state.bitmask.nnz
        sparsity = state.bitmask.sparsity
        # Per recomputed hidden element the 1st layer runs a length-`dim`
        # dot product (x2 for GEGLU's value+gate pair).
        l1_cols_per_hidden = layer.linear1.out_features // layer.hidden_dim
        computed_l1 = nnz * layer.dim * l1_cols_per_hidden
        full_l1 = layer.linear1.macs(tokens)
        # 2nd layer: each recomputed element contributes to `dim` outputs.
        computed_l2 = nnz * layer.dim
        full_l2 = layer.linear2.macs(tokens)

        self.stats.ffn_layer1.add(full_l1, computed_l1)
        self.stats.ffn_layer2.add(full_l2, computed_l2)
        self.stats.ffn_sparsities.append(sparsity)

        trace = FFNTrace(
            hidden=hidden,
            output_sparsity=sparsity,
            skipped_hidden_elements=int(hidden.size) - nnz,
            total_hidden_elements=int(hidden.size),
            reused_from_dense=True,
        )
        return out, trace

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def state_for_block(self, block: int) -> Optional[_BlockState]:
        """Dense-iteration state of a block (None before the first dense)."""
        return self._states[block]


@dataclass
class _BatchedBlockState:
    """Per-block dense-iteration artifacts, batched over requests."""

    hidden_dense: np.ndarray  # (batch, tokens, hidden)
    mask: np.ndarray  # (batch, tokens, hidden) bool: 1 = recompute
    partial_sums: np.ndarray  # (batch, tokens, dim)
    thresholds: np.ndarray  # (batch,)


class BatchedFFNReuse(_PhaseControl):
    """FFN-Reuse over a ``(batch, tokens, dim)`` activation stack.

    One instance serves a whole micro-batch of generation requests: the
    dense-iteration hidden state, bitmask and partial sums carry a leading
    batch axis, and statistics are recorded into one :class:`RunStats` per
    request. Thresholds are resolved per request (each request's own
    magnitude quantile), so every request's outputs and statistics are
    identical to what a sequential :class:`FFNReuse` run would produce.
    """

    def __init__(
        self,
        config: ExionConfig,
        num_blocks: int,
        batch_stats: list,
        threshold_table: Optional[ThresholdTable] = None,
        collect_bitmasks: bool = False,
    ) -> None:
        if not batch_stats:
            raise ValueError("need at least one per-request RunStats")
        self.config = config
        self.num_blocks = num_blocks
        self.batch_stats = list(batch_stats)
        self.threshold_table = threshold_table
        self.collect_bitmasks = collect_bitmasks
        self._states: list[Optional[_BatchedBlockState]] = [None] * num_blocks
        self._iteration = -1

    @property
    def batch_size(self) -> int:
        return len(self.batch_stats)

    def begin_iteration(self, iteration: int) -> None:
        """Mark the start of denoising iteration ``iteration``."""
        if iteration < 0:
            raise ValueError("iteration must be >= 0")
        self._iteration = iteration
        for stats in self.batch_stats:
            if self.is_dense_iteration:
                stats.dense_iterations += 1
            else:
                stats.sparse_iterations += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, layer: FeedForward, x: np.ndarray, block: int) -> np.ndarray:
        """Run the FFN of ``block`` over the batched input ``x``."""
        if not 0 <= block < self.num_blocks:
            raise IndexError(f"block {block} out of range [0, {self.num_blocks})")
        if self._iteration < 0:
            raise RuntimeError("begin_iteration() was never called")
        if x.ndim != 3 or x.shape[0] != self.batch_size:
            raise ValueError(
                f"expected ({self.batch_size}, tokens, dim) input, got {x.shape}"
            )
        if self.is_dense_iteration or self._states[block] is None:
            return self._run_dense(layer, x, block)
        return self._run_sparse(layer, x, block)

    def _resolve_thresholds(self, hidden: np.ndarray, block: int) -> np.ndarray:
        batch = hidden.shape[0]
        if self.config.ffn_threshold is not None:
            return np.full(batch, self.config.ffn_threshold)
        if self.threshold_table is not None:
            stored = self.threshold_table.get(self.dense_index, block)
            if stored is not None:
                return np.full(batch, stored)
        # Per-request quantile: identical to quantile_threshold() on each
        # request's own hidden activations.
        mags = np.abs(hidden.reshape(batch, -1).astype(np.float64))
        return np.quantile(mags, self.config.ffn_target_sparsity, axis=1)

    def _run_dense(self, layer: FeedForward, x: np.ndarray, block: int) -> np.ndarray:
        tokens = x.shape[1]
        hidden = layer.nonlinear(layer.linear1(x))
        out = layer.linear2(hidden)

        thresholds = self._resolve_thresholds(hidden, block)
        mask = np.abs(hidden) > thresholds[:, None, None]
        reused = hidden * ~mask
        partial = reused @ layer.linear2.weight
        if layer.linear2.bias is not None:
            partial = partial + layer.linear2.bias
        self._states[block] = _BatchedBlockState(
            hidden_dense=hidden,
            mask=mask,
            partial_sums=partial,
            thresholds=thresholds,
        )

        full_l1 = layer.linear1.macs(tokens)
        full_l2 = layer.linear2.macs(tokens)
        for b, stats in enumerate(self.batch_stats):
            stats.ffn_layer1.add(full_l1, full_l1)
            stats.ffn_layer2.add(full_l2, full_l2)
            if self.collect_bitmasks:
                stats.ffn_bitmasks.append(Bitmask(mask[b]))
        return out

    def _run_sparse(self, layer: FeedForward, x: np.ndarray, block: int) -> np.ndarray:
        state = self._states[block]
        assert state is not None
        tokens = x.shape[1]
        mask = state.mask

        hidden_recomputed = layer.nonlinear(layer.linear1(x))
        hidden = np.where(mask, hidden_recomputed, state.hidden_dense)
        updates = (hidden * mask) @ layer.linear2.weight
        out = state.partial_sums + updates

        elements = mask.shape[1] * mask.shape[2]
        nnz = mask.reshape(self.batch_size, -1).sum(axis=1)
        l1_cols_per_hidden = layer.linear1.out_features // layer.hidden_dim
        full_l1 = layer.linear1.macs(tokens)
        full_l2 = layer.linear2.macs(tokens)
        for b, stats in enumerate(self.batch_stats):
            nnz_b = int(nnz[b])
            stats.ffn_layer1.add(full_l1, nnz_b * layer.dim * l1_cols_per_hidden)
            stats.ffn_layer2.add(full_l2, nnz_b * layer.dim)
            stats.ffn_sparsities.append(1.0 - nnz_b / elements)
        return out

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def state_for_block(self, block: int) -> Optional[_BatchedBlockState]:
        """Batched dense-iteration state (None before the first dense)."""
        return self._states[block]


@dataclass
class FFNPhaseState:
    """Compiled per-(phase, block) FFN-Reuse artifacts.

    Produced once at each dense iteration by :func:`ffn_dense_compile` and
    replayed by :func:`ffn_sparse_step` for the following ``N`` sparse
    iterations. Relative to the interpreted :class:`_BlockState`, the
    bitmask is additionally converted to flat gather indices
    (``Bitmask.to_gather_indices``) so the sparse step is pure
    gather/scatter with no per-step mask scanning; for GEGLU FFNs the
    value/gate element positions of the first linear's output are
    precomputed too.
    """

    hidden_dense: np.ndarray  # non-linearity output at the dense iteration
    mask: np.ndarray  # bool (tokens, hidden): 1 = recompute
    gather_indices: np.ndarray  # flat row-major indices of the 1-bits
    partial_sums: np.ndarray  # reused elements' 2nd-layer contribution + bias
    threshold: float
    nnz: int
    sparsity: float
    value_indices: Optional[np.ndarray] = None  # GEGLU: value half positions
    gate_indices: Optional[np.ndarray] = None  # GEGLU: gate half positions

    @property
    def bitmask(self) -> Bitmask:
        return Bitmask(self.mask)


def ffn_dense_compile(
    layer: FeedForward, x: np.ndarray, resolve_threshold
) -> tuple[np.ndarray, FFNPhaseState]:
    """Dense-iteration FFN plus phase-state compilation for one block.

    ``resolve_threshold`` maps the hidden activations to the bitmask
    threshold (mirroring :meth:`FFNReuse._resolve_threshold`, whose
    quantile fallback needs the activations). The arithmetic is
    element-for-element the interpreted :meth:`FFNReuse._run_dense` (the
    differential-parity suite holds the two byte-identical); on top of it
    the bitmask→gather conversion and GEGLU index maps are materialized
    once for the whole sparse phase.
    """
    hidden = layer.nonlinear(layer.linear1(x))
    out = layer.linear2(hidden)

    threshold = float(resolve_threshold(hidden))
    mask = np.abs(np.asarray(hidden, dtype=np.float64)) > threshold
    reused = hidden * ~mask
    partial = reused @ layer.linear2.weight
    if layer.linear2.bias is not None:
        partial = partial + layer.linear2.bias

    gather = np.flatnonzero(mask.ravel())
    value_idx = gate_idx = None
    if layer.activation == "geglu":
        # linear1 emits [value | gate] halves of width hidden_dim; map each
        # recomputed hidden element to its two source elements.
        rows = gather // layer.hidden_dim
        cols = gather % layer.hidden_dim
        width = layer.linear1.out_features
        value_idx = rows * width + cols
        gate_idx = value_idx + layer.hidden_dim
    nnz = int(mask.sum())
    return out, FFNPhaseState(
        hidden_dense=hidden,
        mask=mask,
        gather_indices=gather,
        partial_sums=partial,
        threshold=threshold,
        nnz=nnz,
        sparsity=1.0 - nnz / mask.size,
        value_indices=value_idx,
        gate_indices=gate_idx,
    )


def ffn_sparse_step(
    layer: FeedForward, x: np.ndarray, state: FFNPhaseState, arena=None
) -> np.ndarray:
    """Sparse-iteration FFN through the compiled phase state.

    Pure vectorized gather/scatter: the non-linearity runs only on the
    gathered recompute set (elementwise, so each element equals the
    interpreted full-matrix result bit for bit), the scatter overlays the
    dense iteration's hidden state, and the 2nd-layer update accumulates
    onto the precomputed partial sums.

    ``arena`` (an :class:`repro.exec.arena.ExecArena`, duck-typed so this
    module stays below the exec layer) reuses the scatter target, the
    masked operand and the update GEMM output across iterations. Every
    arena buffer is fully overwritten before use and none escapes this
    call, so the arithmetic — including GEMM operand shapes — is
    identical either way.
    """
    pre = layer.linear1(x)
    flat = pre.ravel()
    if layer.activation == "geglu":
        recomputed = flat[state.value_indices] * gelu_kernel(
            flat[state.gate_indices]
        )
    else:
        recomputed = gelu_kernel(flat[state.gather_indices])
    if arena is None:
        hidden = state.hidden_dense.copy()
        hidden.ravel()[state.gather_indices] = recomputed
        updates = (hidden * state.mask) @ layer.linear2.weight
    else:
        hidden = arena.take("ffn_hidden", state.hidden_dense.shape)
        np.copyto(hidden, state.hidden_dense)
        hidden.ravel()[state.gather_indices] = recomputed
        masked = np.multiply(
            hidden, state.mask,
            out=arena.take("ffn_masked", hidden.shape),
        )
        updates = np.matmul(
            masked, layer.linear2.weight,
            out=arena.take(
                "ffn_updates",
                hidden.shape[:-1] + (layer.linear2.weight.shape[1],),
            ),
        )
    return state.partial_sums + updates


def schedule_phases(total_iterations: int, sparse_n: int) -> list[bool]:
    """Dense/sparse phase per iteration: ``True`` marks a dense iteration.

    The paper's schedule: one dense iteration followed by ``N`` sparse
    iterations, repeated across the whole diffusion process.
    """
    if total_iterations < 0:
        raise ValueError("total_iterations must be >= 0")
    if sparse_n < 0:
        raise ValueError("sparse_n must be >= 0")
    period = sparse_n + 1
    return [i % period == 0 for i in range(total_iterations)]
